"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sort``        sort a generated dataset with a chosen system and print
                the phase breakdown and resource timeline.
``calibrate``   run the device microbenchmark suite on a profile.
``bench``       run one paper experiment (fig01 ... fig11, tab01, or an
                ablation) and print its table.
``profiles``    list the available device profiles.

Examples::

    python -m repro sort --records 200000 --system wiscsort --device pmem
    python -m repro calibrate --device bard-device
    python -m repro bench fig08 --scale 2000
    python -m repro profiles
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro import bench as bench_module
from repro.baselines import (
    ExternalMergeSort,
    ModifiedKeySort,
    PMSort,
    PMSortPlus,
    SampleSort,
)
from repro.calibrate import calibrate_device
from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.wiscsort import WiscSort
from repro.device.host import HostModel
from repro.device.profiles import PROFILE_FACTORIES
from repro.machine import Machine
from repro.metrics.timeline import render_timeline
from repro.perf import SelfPerfProfiler, render_report
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import fmt_bytes, fmt_seconds

#: name -> constructor(fmt, config) for the ``sort`` command.
SYSTEMS: Dict[str, Callable] = {
    "wiscsort": lambda fmt, config: WiscSort(fmt, config=config),
    "wiscsort-merge": lambda fmt, config: WiscSort(
        fmt, config=config, force_merge_pass=True
    ),
    "ems": lambda fmt, config: ExternalMergeSort(fmt, config=config),
    "pmsort": lambda fmt, config: PMSort(fmt, config=config),
    "pmsort+": lambda fmt, config: PMSortPlus(fmt, config=config),
    "sample-sort": lambda fmt, config: SampleSort(fmt),
    "modified-key-sort": lambda fmt, config: ModifiedKeySort(fmt, config=config),
}

#: Experiment registry for the ``bench`` command.
EXPERIMENTS: Dict[str, Callable] = {
    "tab01": bench_module.tab01_compliance,
    "fig01": bench_module.fig01_motivation,
    "fig04": bench_module.fig04_sortbenchmark,
    "fig05": bench_module.fig05_resources_onepass,
    "fig06": bench_module.fig06_resources_mergepass,
    "fig07": bench_module.fig07_concurrency,
    "fig08": bench_module.fig08_kv_split,
    "fig09": bench_module.fig09_strided_vs_seq,
    "fig10": bench_module.fig10_interference,
    "fig11": bench_module.fig11_future_devices,
    "ablation-write-pool": bench_module.ablation_write_pool,
    "ablation-pointer": bench_module.ablation_pointer_size,
    "ablation-dram": bench_module.ablation_dram_budget,
    "ablation-buffers": bench_module.ablation_buffer_size,
    "ablation-compression": bench_module.ablation_compression,
    "ablation-natural-runs": bench_module.ablation_natural_runs,
    "ablation-merge-fanin": bench_module.ablation_merge_fanin,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiscSort reproduction (PVLDB 16(9), 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="sort a generated dataset")
    p_sort.add_argument("--records", type=int, default=100_000)
    p_sort.add_argument("--key-size", type=int, default=10)
    p_sort.add_argument("--value-size", type=int, default=90)
    p_sort.add_argument("--system", choices=sorted(SYSTEMS), default="wiscsort")
    p_sort.add_argument(
        "--device", choices=sorted(PROFILE_FACTORIES), default="pmem"
    )
    p_sort.add_argument(
        "--concurrency",
        choices=[m.value for m in ConcurrencyModel],
        default=ConcurrencyModel.NO_IO_OVERLAP.value,
    )
    p_sort.add_argument("--seed", type=int, default=42)
    p_sort.add_argument("--dram-budget", type=int, default=None,
                        help="DRAM cap in bytes (forces MergePass when small)")
    p_sort.add_argument("--no-validate", action="store_true")
    p_sort.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault-injection spec, e.g. 'crash@50%%' or "
             "'transient@p:0.01,slow@t:0.002+0.01:x0.25,seed:7'; "
             "crash specs enable checkpointing and automatic recovery "
             "(wiscsort / ems only)")
    p_sort.add_argument("--sanitize", action="store_true",
                        help="install the runtime SimSanitizer: deadlock "
                             "diagnostics that name stuck coroutines, plus a "
                             "charge-accounting audit (exit 1 on drift)")
    p_sort.add_argument("--verify-determinism", action="store_true",
                        help="run the workload twice on fresh machines and "
                             "diff the full event traces; exit 1 on any "
                             "divergence")
    p_sort.add_argument("--timeline", action="store_true",
                        help="print the resource-usage sparkline plot")
    p_sort.add_argument("--selfperf", action="store_true",
                        help="print simulator self-performance counters "
                             "(wall-clock phases, event counts, cache hit rates)")
    p_sort.add_argument("--no-memoize", action="store_true",
                        help="debug: disable the rate-model memo cache "
                             "(results must be identical either way)")

    p_cal = sub.add_parser("calibrate", help="probe a device profile")
    p_cal.add_argument(
        "--device", choices=sorted(PROFILE_FACTORIES), default="pmem"
    )

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_bench.add_argument("--scale", type=int, default=1_000,
                         help="divide the paper's record counts by this")

    sub.add_parser("profiles", help="list available device profiles")
    return parser


def _run_sort(args, fmt, config, prof, sanitizer=None, validate=True):
    """Build a fresh machine, generate the dataset and run the sort.

    Shared between the normal ``sort`` path and ``--verify-determinism``
    (which calls it twice on fresh machines with tracing sanitizers).
    Returns ``(machine, data, result, fault_report)``.
    """
    machine = Machine(
        profile=PROFILE_FACTORIES[args.device](),
        dram_budget=args.dram_budget,
        memoize_rates=not args.no_memoize,
    )
    if sanitizer is not None:
        sanitizer.install(machine)
    with prof.phase("generate"):
        data = generate_dataset(
            machine, "input", args.records, fmt, seed=args.seed
        )
    system = SYSTEMS[args.system](fmt, config)
    fault_report = None
    if args.faults is not None:
        from repro.errors import ConfigError
        from repro.faults import parse_fault_spec, run_with_faults

        plan = parse_fault_spec(args.faults, seed=args.seed)
        if plan.has_crash:
            if not hasattr(system, "checkpoint"):
                raise ConfigError(
                    f"--faults with a crash needs a checkpointing system "
                    f"(wiscsort or ems), not {args.system!r}"
                )
            system.checkpoint = True
        if plan.needs_probe:
            with prof.phase("fault-probe"):
                plan = plan.resolve_fractions(
                    _probe_op_count(args, fmt, config, plan.has_crash)
                )
        machine.install_faults(plan)
        with prof.phase("sort"):
            result, fault_report = run_with_faults(
                system, machine, data, validate=validate
            )
    else:
        with prof.phase("sort"):
            result = system.run(machine, data, validate=validate)
    return machine, data, result, fault_report


def cmd_sort(args: argparse.Namespace) -> int:
    fmt = RecordFormat(key_size=args.key_size, value_size=args.value_size)
    config = SortConfig(concurrency=ConcurrencyModel(args.concurrency))
    prof = SelfPerfProfiler()
    if args.verify_determinism:
        from repro.analysis.sanitizer import verify_determinism

        def run_once(san):
            _run_sort(args, fmt, config, SelfPerfProfiler(), sanitizer=san,
                      validate=not args.no_validate)

        report = verify_determinism(run_once, runs=2)
        print(report.render())
        return 0 if report.ok else 1
    sanitizer = None
    if args.sanitize:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    machine, data, result, fault_report = _run_sort(
        args, fmt, config, prof, sanitizer=sanitizer,
        validate=not args.no_validate,
    )
    print(f"device : {machine.profile.describe()}")
    print(f"input  : {args.records} records x {fmt.record_size}B "
          f"({fmt_bytes(data.size)})")
    print(f"system : {result.system}")
    print(f"total  : {fmt_seconds(result.total_time)} (simulated)")
    for tag, busy in result.phases.items():
        print(f"  {tag:16s} {fmt_seconds(busy)}")
    print(f"reads  : {fmt_bytes(result.internal_read)} internal")
    print(f"writes : {fmt_bytes(result.internal_written)} internal")
    if not args.no_validate:
        print("output : validated (sorted permutation of the input)")
    if fault_report is not None:
        stats = fault_report.stats
        print(f"faults : {fault_report.summary()}")
        if stats:
            print(f"  {stats['faults_injected']} injected over "
                  f"{stats['ops_seen']} file ops; "
                  f"{stats['retries']} retries "
                  f"({fmt_seconds(stats['backoff_seconds'])} backoff), "
                  f"{stats['torn_writes']} torn writes")
            if fault_report.crashes:
                print(f"  recovery: {fmt_bytes(stats['salvaged_bytes'])} "
                      f"salvaged, {fmt_bytes(stats['redone_bytes'])} redone")
    if sanitizer is not None:
        from repro.errors import ChargeDriftError

        audit = sanitizer.audit_report()
        try:
            sanitizer.check()
        except ChargeDriftError as exc:
            print(f"sanitize: {exc}")
            return 1
        print(
            f"sanitize: zero drift -- "
            f"{fmt_bytes(audit['moved_read'])} read / "
            f"{fmt_bytes(audit['moved_write'])} written at the storage "
            f"layer, all charged to the device model"
        )
    if args.timeline:
        print()
        print(render_timeline(machine))
    if args.selfperf:
        print()
        print(render_report(machine, prof))
    return 0


def _probe_op_count(args, fmt, config, checkpoint: bool) -> int:
    """Fault-free probe run counting timed file ops (resolves crash@N%).

    The probe mirrors the real run exactly -- same dataset, system and
    (crucially) checkpoint setting, since checkpoint writes are part of
    the op stream the fractions index into.
    """
    from repro.faults import FaultPlan

    machine = Machine(
        profile=PROFILE_FACTORIES[args.device](),
        dram_budget=args.dram_budget,
        memoize_rates=not args.no_memoize,
    )
    data = generate_dataset(machine, "input", args.records, fmt, seed=args.seed)
    system = SYSTEMS[args.system](fmt, config)
    if checkpoint:
        system.checkpoint = True
    injector = machine.install_faults(FaultPlan(), count_only=True)
    system.run(machine, data, validate=False)
    return injector.op_index


def cmd_calibrate(args: argparse.Namespace) -> int:
    profile = PROFILE_FACTORIES[args.device]()
    result = calibrate_device(profile, HostModel(), use_cache=False)
    for line in result.table():
        print(line)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    fn = EXPERIMENTS[args.experiment]
    table = fn() if args.experiment == "tab01" else fn(scale=args.scale)
    print(table.render())
    return 0


def cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILE_FACTORIES):
        print(PROFILE_FACTORIES[name]().describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "sort": cmd_sort,
        "calibrate": cmd_calibrate,
        "bench": cmd_bench,
        "profiles": cmd_profiles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
