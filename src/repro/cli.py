"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``sort``        sort a generated dataset with a chosen system and print
                the phase breakdown and resource timeline.
``cluster``     run K concurrent sort jobs on an N-shard cluster behind
                the job scheduler and print queue/service/slowdown and
                per-shard device statistics.
``serve``       run the cluster as an open-loop sort *service*: seeded
                Poisson/bursty/trace arrivals, admission control with
                load shedding, latency percentiles and SLO verdicts.
``analyze``     run one sort with the critical-path analyzer armed and
                print the per-phase device-busy / queueing / DRAM-stall
                / net / cpu decomposition, blame tables and optional
                ``--what-if`` projections.
``trace-diff``  compare two schema-stamped report JSONs (analysis
                reports, selfperf baselines or service reports) and
                flag per-row regressions; exit 1 on any regression.
``calibrate``   run the device microbenchmark suite on a profile.
``trace-report``  summarize a Chrome/Perfetto trace JSON produced by
                ``--trace`` (span and device-class aggregates).
``bench``       run one paper experiment (fig01 ... fig11, tab01, an
                ablation, or cluster-scaleout) and print its table.
``profiles``    list the available device profiles.

Systems, experiments and profiles all resolve through
:mod:`repro.registry`; registering a new system makes it immediately
available to every command here without touching this module.

Examples::

    python -m repro sort --records 200000 --system wiscsort --device pmem
    python -m repro analyze --records 50000 --dram-budget 600000 \
        --what-if 'write_bw*2'
    python -m repro trace-diff baseline.json current.json --threshold 0.05
    python -m repro cluster --shards 4 --jobs 8 --policy fair
    python -m repro serve --rate 500 --horizon 0.1 --policy shed \
        --slo "latency:p99<0.01"
    python -m repro calibrate --device bard-device
    python -m repro bench fig08 --scale 2000
    python -m repro profiles
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api
from repro.calibrate import calibrate_device
from repro.core.base import ConcurrencyModel, SortConfig
from repro.device.host import HostModel
from repro.metrics.cluster_report import render_job_table, render_shard_table
from repro.metrics.timeline import render_timeline
from repro.perf import SelfPerfProfiler, render_report
from repro.records.format import RecordFormat
from repro.registry import RegistryView, get_experiment, get_profile
from repro.units import fmt_bytes, fmt_seconds

#: Read-only mapping views over the registry; kept under the historical
#: names so ``from repro.cli import SYSTEMS, EXPERIMENTS`` keeps working.
SYSTEMS = RegistryView("system")
EXPERIMENTS = RegistryView("experiment")
PROFILES = RegistryView("profile")
POLICIES = RegistryView("policy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WiscSort reproduction (PVLDB 16(9), 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sort = sub.add_parser("sort", help="sort a generated dataset")
    p_sort.add_argument("--records", type=int, default=100_000)
    p_sort.add_argument("--key-size", type=int, default=10)
    p_sort.add_argument("--value-size", type=int, default=90)
    p_sort.add_argument("--system", choices=sorted(SYSTEMS), default="wiscsort")
    p_sort.add_argument("--device", choices=sorted(PROFILES), default="pmem")
    p_sort.add_argument(
        "--concurrency",
        choices=[m.value for m in ConcurrencyModel],
        default=ConcurrencyModel.NO_IO_OVERLAP.value,
    )
    p_sort.add_argument("--seed", type=int, default=42)
    p_sort.add_argument("--dram-budget", type=int, default=None,
                        help="DRAM cap in bytes (forces MergePass when small)")
    p_sort.add_argument("--no-validate", action="store_true")
    p_sort.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault-injection spec, e.g. 'crash@50%%' or "
             "'transient@p:0.01,slow@t:0.002+0.01:x0.25,seed:7'; "
             "crash specs enable checkpointing and automatic recovery "
             "(wiscsort / ems only)")
    p_sort.add_argument("--sanitize", action="store_true",
                        help="install the runtime SimSanitizer: deadlock "
                             "diagnostics that name stuck coroutines, plus a "
                             "charge-accounting audit (exit 1 on drift)")
    p_sort.add_argument("--verify-determinism", action="store_true",
                        help="run the workload twice on fresh machines and "
                             "diff the full event traces; exit 1 on any "
                             "divergence")
    p_sort.add_argument("--timeline", action="store_true",
                        help="print the resource-usage sparkline plot")
    p_sort.add_argument("--selfperf", action="store_true",
                        help="print simulator self-performance counters "
                             "(wall-clock phases, event counts, cache hit rates)")
    p_sort.add_argument("--no-memoize", action="store_true",
                        help="debug: disable the rate-model memo cache "
                             "(results must be identical either way)")
    p_sort.add_argument("--trace", metavar="PATH", default=None,
                        help="record a sim-time trace and export it as "
                             "Chrome/Perfetto trace JSON (open in "
                             "ui.perfetto.dev); observe-only, results are "
                             "bit-identical with or without it")
    p_sort.add_argument("--trace-rollup", action="store_true",
                        help="with --trace: also print the text "
                             "phase/traffic rollup")
    p_sort.add_argument("--race-detect", action="store_true",
                        help="install the sim-time race detector (vector "
                             "clocks + per-file byte-range logs); "
                             "observe-only, exit 1 when conflicting "
                             "same-instant accesses have no happens-before "
                             "ordering")
    p_sort.add_argument("--schedule-fuzz", type=int, metavar="N", default=None,
                        help="run the FIFO baseline plus N seeded "
                             "permutations of same-instant scheduling ties "
                             "and compare output fingerprints; exit 1 on "
                             "any byte divergence")

    p_analyze = sub.add_parser(
        "analyze",
        help="sort with the critical-path analyzer armed: where did "
             "the simulated time go?",
    )
    p_analyze.add_argument("--records", type=int, default=100_000)
    p_analyze.add_argument("--key-size", type=int, default=10)
    p_analyze.add_argument("--value-size", type=int, default=90)
    p_analyze.add_argument("--system", choices=sorted(SYSTEMS),
                           default="wiscsort")
    p_analyze.add_argument("--device", choices=sorted(PROFILES),
                           default="pmem")
    p_analyze.add_argument(
        "--concurrency",
        choices=[m.value for m in ConcurrencyModel],
        default=ConcurrencyModel.NO_IO_OVERLAP.value,
    )
    p_analyze.add_argument("--seed", type=int, default=42)
    p_analyze.add_argument("--dram-budget", type=int, default=None,
                           help="DRAM cap in bytes (forces MergePass when "
                                "small)")
    p_analyze.add_argument("--no-validate", action="store_true")
    p_analyze.add_argument("--what-if", action="append", default=None,
                           metavar="EXPR",
                           help="project the critical path under a "
                                "hypothetical change, e.g. 'write_bw*2', "
                                "'braid.read_bw*1.5', 'net_bw*4' or "
                                "'dram+4GiB'; repeatable")
    p_analyze.add_argument("--blame-rows", type=int, default=6,
                           help="blame-table rows to print per phase")
    p_analyze.add_argument("--json", metavar="PATH", default=None,
                           help="also write the analysis report (canonical "
                                "byte-deterministic JSON) to PATH")
    p_analyze.add_argument("--trace", metavar="PATH", default=None,
                           help="also export the underlying Chrome/Perfetto "
                                "trace JSON to PATH")

    p_diff = sub.add_parser(
        "trace-diff",
        help="diff two schema-stamped report JSONs for regressions",
    )
    p_diff.add_argument("report_a", help="baseline report JSON")
    p_diff.add_argument("report_b", help="candidate report JSON")
    p_diff.add_argument("--threshold", type=float, default=0.05,
                        help="relative growth that counts as a regression "
                             "(default 0.05 = 5%%)")

    p_cluster = sub.add_parser(
        "cluster", help="run concurrent sort jobs on a multi-device cluster"
    )
    p_cluster.add_argument("--shards", type=int, default=4,
                           help="number of homogeneous device shards")
    p_cluster.add_argument(
        "--devices", default=None, metavar="NAME[,NAME...]",
        help="heterogeneous cluster: one profile name per shard, "
             "comma-separated (overrides --shards/--device)")
    p_cluster.add_argument("--device", choices=sorted(PROFILES), default="pmem")
    p_cluster.add_argument("--jobs", type=int, default=8,
                           help="number of sort jobs to submit")
    p_cluster.add_argument("--policy", choices=sorted(POLICIES),
                           default="fifo")
    p_cluster.add_argument("--tenants", type=int, default=2,
                           help="jobs are assigned round-robin to this many "
                                "tenants (fair-share accounting unit)")
    p_cluster.add_argument("--system", choices=sorted(SYSTEMS),
                           default="wiscsort")
    p_cluster.add_argument("--records-per-job", type=int, default=50_000)
    p_cluster.add_argument("--seed", type=int, default=42)
    p_cluster.add_argument("--dram-budget", type=int, default=None,
                           help="cluster-wide DRAM pool in bytes; admitted "
                                "jobs hold reservations against it")
    p_cluster.add_argument("--sanitize", action="store_true",
                           help="install the SimSanitizer across all shards "
                                "(exit 1 on charge-accounting drift)")
    p_cluster.add_argument("--verify-determinism", action="store_true",
                           help="run the whole cluster workload twice and "
                                "diff the event traces; exit 1 on divergence")
    p_cluster.add_argument("--trace", metavar="PATH", default=None,
                           help="record a sim-time trace across all shards "
                                "and the job scheduler; exported as "
                                "Chrome/Perfetto trace JSON")
    p_cluster.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="run ONE fault-tolerant sharded sort (instead of the job "
             "scheduler) under a fault plan; prefix events with a shard "
             "domain to target it (e.g. 'shard1:crash@t:5e-5' or "
             "'shard0:slow@t:3e-5+1e-3:x0.05'); --records-per-job is the "
             "total record count")
    p_cluster.add_argument("--selfperf", action="store_true",
                           help="print cluster simulator self-performance "
                                "counters (kernel, per-shard devices, "
                                "interconnect, recovery/speculation)")
    p_cluster.add_argument("--race-detect", action="store_true",
                           help="install the sim-time race detector across "
                                "all shards; observe-only, exit 1 on "
                                "unordered conflicting accesses")
    p_cluster.add_argument("--schedule-fuzz", type=int, metavar="N",
                           default=None,
                           help="with --faults: run the FIFO baseline plus "
                                "N seeded same-instant schedule permutations "
                                "of the fault-tolerant sharded sort and "
                                "compare merged-output fingerprints; exit 1 "
                                "on any byte divergence")

    p_serve = sub.add_parser(
        "serve", help="run the cluster as an open-loop sort service"
    )
    p_serve.add_argument("--arrivals", choices=["poisson", "bursty", "trace"],
                         default="poisson",
                         help="arrival process; 'trace' replays --trace-file")
    p_serve.add_argument("--rate", type=float, default=200.0,
                         help="offered load in jobs per simulated second "
                              "(poisson/bursty)")
    p_serve.add_argument("--horizon", type=float, default=0.25,
                         help="stop admitting arrivals after this many "
                              "simulated seconds")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         help="stop after this many arrivals (alternative "
                              "or additional bound to --horizon)")
    p_serve.add_argument("--policy", choices=sorted(POLICIES),
                         default="fifo")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="number of homogeneous device shards")
    p_serve.add_argument(
        "--devices", default=None, metavar="NAME[,NAME...]",
        help="heterogeneous cluster: one profile name per shard, "
             "comma-separated (overrides --shards/--device)")
    p_serve.add_argument("--device", choices=sorted(PROFILES), default="pmem")
    p_serve.add_argument("--system", choices=sorted(SYSTEMS),
                         default="wiscsort")
    p_serve.add_argument("--records", type=int, default=5_000,
                         help="records per job")
    p_serve.add_argument("--tenants", type=int, default=2,
                         help="arrivals round-robin across this many tenants")
    p_serve.add_argument("--seed", type=int, default=42,
                         help="seeds the arrival stream AND every job "
                              "dataset: one seed pins the whole workload")
    p_serve.add_argument("--dram-budget", type=int, default=None,
                         help="cluster-wide DRAM pool in bytes; the knob "
                              "that makes admission control bite")
    p_serve.add_argument("--queue-cap", type=int, default=None,
                         help="pending-queue bound for the 'shed' policy")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-job relative deadline in simulated "
                              "seconds (drives 'edf' and miss accounting)")
    p_serve.add_argument("--period", type=float, default=1.0,
                         help="bursty: diurnal period in simulated seconds")
    p_serve.add_argument("--amplitude", type=float, default=0.8,
                         help="bursty: modulation depth in [0, 1)")
    p_serve.add_argument("--trace-file", metavar="PATH", default=None,
                         help="JSONL arrival trace (one {\"t\": ...} object "
                              "per line) for --arrivals trace")
    p_serve.add_argument("--slo", action="append", default=None,
                         metavar="SPEC",
                         help="declare an SLO, e.g. 'latency:p99<0.01' or "
                              "'slowdown:p50<2'; repeatable; any FAIL "
                              "exits 1")
    p_serve.add_argument("--burn-window", type=float, metavar="SECONDS",
                         default=None,
                         help="arm the live SLO burn-rate monitor with this "
                              "rollup window (simulated seconds); needs at "
                              "least one --slo")
    p_serve.add_argument("--burn-alert", type=float, metavar="RATE",
                         default=2.0,
                         help="burn-rate multiple that fires an alert "
                              "(default 2.0 = burning error budget twice "
                              "as fast as allowed)")
    p_serve.add_argument("--report", metavar="PATH", default=None,
                         help="also write the report as JSON to PATH")
    p_serve.add_argument("--no-validate", action="store_true")

    p_cal = sub.add_parser("calibrate", help="probe a device profile")
    p_cal.add_argument("--device", choices=sorted(PROFILES), default="pmem")

    p_trace = sub.add_parser(
        "trace-report", help="summarize an exported trace JSON file"
    )
    p_trace.add_argument("trace_file", help="path to a --trace output file")

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_bench.add_argument("--scale", type=int, default=1_000,
                         help="divide the paper's record counts by this")

    sub.add_parser("profiles", help="list available device profiles")
    return parser


def cmd_sort(args: argparse.Namespace) -> int:
    fmt = RecordFormat(key_size=args.key_size, value_size=args.value_size)
    config = SortConfig(concurrency=ConcurrencyModel(args.concurrency))
    prof = SelfPerfProfiler()
    base = api.RunOptions(
        records=args.records,
        system=args.system,
        device=args.device,
        fmt=fmt,
        config=config,
        seed=args.seed,
        faults=args.faults,
        validate=not args.no_validate,
        dram_budget=args.dram_budget,
        memoize_rates=not args.no_memoize,
    )

    def run_once(sanitizer=None, trace=None, schedule_seed=None,
                 race_detect=False):
        with prof.phase("sort"):
            return api.sort(base.replace(
                sanitizer=sanitizer,
                trace=trace,
                schedule_seed=schedule_seed,
                race_detect=race_detect,
            ))

    if args.schedule_fuzz is not None:
        if args.schedule_fuzz < 1:
            print("sort: --schedule-fuzz needs at least one seed",
                  file=sys.stderr)
            return 2
        if args.verify_determinism:
            print("sort: --schedule-fuzz and --verify-determinism are "
                  "separate harnesses; pick one", file=sys.stderr)
            return 2
        from repro.analysis.race import schedule_fuzz, sort_output_fingerprint

        report = schedule_fuzz(
            lambda seed: sort_output_fingerprint(
                run_once(schedule_seed=seed, race_detect=args.race_detect)
            ),
            seeds=tuple(range(1, args.schedule_fuzz + 1)),
        )
        print(report.render())
        return 0 if report.ok else 1
    if args.verify_determinism:
        from repro.analysis.sanitizer import verify_determinism

        report = verify_determinism(lambda san: run_once(sanitizer=san), runs=2)
        print(report.render())
        return 0 if report.ok else 1
    sanitizer = None
    if args.sanitize:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    result = run_once(sanitizer=sanitizer, trace=args.trace,
                      race_detect=args.race_detect)
    machine = result.extras["machine"]
    fault_report = result.extras.get("fault_report")
    print(f"device : {machine.profile.describe()}")
    print(f"input  : {args.records} records x {fmt.record_size}B "
          f"({fmt_bytes(fmt.file_bytes(args.records))})")
    print(f"system : {result.system}")
    print(f"total  : {fmt_seconds(result.total_time)} (simulated)")
    for tag, busy in result.phases.items():
        print(f"  {tag:16s} {fmt_seconds(busy)}")
    print(f"reads  : {fmt_bytes(result.internal_read)} internal")
    print(f"writes : {fmt_bytes(result.internal_written)} internal")
    if not args.no_validate:
        print("output : validated (sorted permutation of the input)")
    if fault_report is not None:
        stats = fault_report.stats
        print(f"faults : {fault_report.summary()}")
        if stats:
            print(f"  {stats['faults_injected']} injected over "
                  f"{stats['ops_seen']} file ops; "
                  f"{stats['retries']} retries "
                  f"({fmt_seconds(stats['backoff_seconds'])} backoff), "
                  f"{stats['torn_writes']} torn writes")
            if fault_report.crashes:
                print(f"  recovery: {fmt_bytes(stats['salvaged_bytes'])} "
                      f"salvaged, {fmt_bytes(stats['redone_bytes'])} redone")
    if sanitizer is not None:
        audit = sanitizer.audit_report()
        print(
            f"sanitize: zero drift -- "
            f"{fmt_bytes(audit['moved_read'])} read / "
            f"{fmt_bytes(audit['moved_write'])} written at the storage "
            f"layer, all charged to the device model"
        )
    if args.trace:
        tracer = result.extras["tracer"]
        print(f"trace  : {args.trace} "
              f"({len(tracer.spans)} spans, {len(tracer.ops)} ops)")
        if args.trace_rollup:
            from repro.trace import render_phase_rollup

            print()
            print(render_phase_rollup(tracer))
    if args.race_detect:
        detector = result.extras["race_detector"]
        print(detector.render())
        if detector.races:
            return 1
    if args.timeline:
        print()
        print(render_timeline(machine))
    if args.selfperf:
        print()
        print(render_report(machine, prof))
    return 0


def _build_cluster(args: argparse.Namespace):
    from repro.cluster import Cluster

    if args.devices:
        return Cluster(
            profiles=[name.strip() for name in args.devices.split(",")],
            dram_budget=args.dram_budget,
        )
    return Cluster(
        shards=args.shards,
        profile=get_profile(args.device)(),
        dram_budget=args.dram_budget,
    )


def _run_cluster(args: argparse.Namespace, sanitizer=None, tracer=None,
                 race_detect=False):
    """Build a fresh cluster, submit and run the jobs; returns both."""
    from repro.cluster import JobScheduler

    cluster = _build_cluster(args)
    if sanitizer is not None:
        sanitizer.install_cluster(cluster)
    if tracer is not None:
        tracer.install_cluster(cluster)
    if race_detect:
        cluster.install_race_detector()
    scheduler = JobScheduler(cluster, policy=args.policy)
    tenants = max(1, args.tenants)
    for j in range(args.jobs):
        scheduler.submit(
            f"job{j:02d}",
            system=args.system,
            n_records=args.records_per_job,
            seed=args.seed + j,
            tenant=f"tenant{j % tenants}",
        )
    jobs = scheduler.run()
    return cluster, jobs


def _cmd_cluster_faulted(args: argparse.Namespace) -> int:
    """One fault-tolerant sharded sort under ``--faults`` (no scheduler)."""
    from repro.cluster import ShardedWiscSort, generate_cluster_dataset
    from repro.errors import ConfigError, RecoveryError
    from repro.faults.harness import run_cluster_with_faults
    from repro.faults.plan import parse_fault_spec

    fmt = RecordFormat()
    n = args.records_per_job
    try:
        plan = parse_fault_spec(args.faults, seed=args.seed)
    except ConfigError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 2
    checkpoint = plan.has_crash
    counts = None
    if plan.needs_probe:
        # Fractional triggers (crash@50%) need per-shard op totals: run
        # the identical workload once with count-only injectors (an
        # empty plan, same checkpoint setting) and resolve against it.
        # One probe serves every schedule-fuzz seed too: permutations
        # reorder same-instant ops without changing the op *totals*.
        from repro.faults.plan import FaultPlan

        probe = _build_cluster(args)
        probe_data = generate_cluster_dataset(probe, "input", n, fmt,
                                              seed=args.seed)
        probe_state = probe.install_faults(FaultPlan(), count_only=True)
        ShardedWiscSort(fmt, system=args.system, checkpoint=checkpoint).run(
            probe, probe_data, validate=False
        )
        counts = probe_state.ops_seen()

    def run_once(schedule_seed=None, race_detect=False, tracer=None):
        """Fresh cluster + dataset + injectors, one fault-tolerant run."""
        cluster = _build_cluster(args)
        detector = cluster.install_race_detector() if race_detect else None
        if schedule_seed is not None:
            cluster.install_schedule_fuzz(schedule_seed)
        if tracer is not None:
            tracer.install_cluster(cluster)
        data = generate_cluster_dataset(cluster, "input", n, fmt,
                                        seed=args.seed)
        cluster.install_faults(plan, counts=counts)
        system = ShardedWiscSort(fmt, system=args.system,
                                 checkpoint=checkpoint)
        result, report = run_cluster_with_faults(system, cluster, data)
        return cluster, data, system, result, report, detector

    if args.schedule_fuzz is not None:
        if args.schedule_fuzz < 1:
            print("cluster: --schedule-fuzz needs at least one seed",
                  file=sys.stderr)
            return 2
        from repro.analysis.race import (
            cluster_output_fingerprint,
            schedule_fuzz,
        )

        def fuzz_fingerprint(seed):
            cluster, data, _system, result, _report, _det = run_once(
                schedule_seed=seed, race_detect=args.race_detect
            )
            return cluster_output_fingerprint(
                cluster, result.output_name, len(data.parts)
            )

        try:
            fuzz_report = schedule_fuzz(
                fuzz_fingerprint,
                seeds=tuple(range(1, args.schedule_fuzz + 1)),
            )
        except RecoveryError as exc:
            print(f"cluster: {exc}", file=sys.stderr)
            return 1
        print(fuzz_report.render())
        return 0 if fuzz_report.ok else 1

    tracer = None
    if args.trace:
        from repro.trace import Tracer

        tracer = Tracer()
    try:
        cluster, data, system, result, report, detector = run_once(
            race_detect=args.race_detect, tracer=tracer
        )
    except RecoveryError as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 1
    print(cluster.describe())
    print(f"input  : {n} records x {fmt.record_size}B "
          f"({fmt_bytes(fmt.file_bytes(n))}) across "
          f"{len(data.parts)} shards")
    print(f"system : {result.system}")
    print(f"total  : {fmt_seconds(result.total_time)} (simulated)")
    print(f"faults : {report.summary()}")
    fc = cluster.faults
    print(f"  {fc.shards_recovered} shard(s) recovered, "
          f"{fc.speculative_issues} speculative issue(s), "
          f"{fc.speculative_wins} speculative win(s)")
    if system.last_recovery is not None:
        rec = system.last_recovery
        print(f"  recovery: {fmt_bytes(rec['salvaged_bytes'])} salvaged, "
              f"{fmt_bytes(rec['redone_bytes'])} redone "
              f"({rec['partitions_salvaged']} partition(s) salvaged, "
              f"{rec['partitions_redone']} redone)")
    if cluster.net_stats is not None:
        print(f"network: {fmt_bytes(cluster.net_stats.bytes_total)} "
              f"shuffled across the interconnect")
    print("output : validated (sorted permutation of the input)")
    if tracer is not None:
        from repro.trace import write_chrome_trace

        write_chrome_trace(tracer, args.trace)
        print(f"trace  : {args.trace} "
              f"({len(tracer.spans)} spans, {len(tracer.ops)} ops)")
    if detector is not None:
        print(detector.render())
        if detector.races:
            return 1
    if args.selfperf:
        print()
        print(_render_cluster_counters(cluster))
    return 0


def _render_cluster_counters(cluster) -> str:
    from repro.perf import collect_cluster_counters

    lines = ["cluster self-performance"]
    for key, value in sorted(collect_cluster_counters(cluster).items()):
        if isinstance(value, float) and not value.is_integer():
            lines.append(f"  {key:32s} {value:.6g}")
        else:
            lines.append(f"  {key:32s} {int(value)}")
    return "\n".join(lines)


def cmd_cluster(args: argparse.Namespace) -> int:
    if args.faults is not None:
        for flag in ("sanitize", "verify_determinism"):
            if getattr(args, flag):
                print(f"cluster: --{flag.replace('_', '-')} is not "
                      f"supported together with --faults", file=sys.stderr)
                return 2
        return _cmd_cluster_faulted(args)
    if args.schedule_fuzz is not None:
        print("cluster: --schedule-fuzz needs --faults (the job scheduler "
              "may legally place tied jobs differently per schedule; the "
              "fault-tolerant sharded sort has one deterministic output "
              "to fingerprint)", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("cluster: need at least one job", file=sys.stderr)
        return 2
    if args.verify_determinism:
        from repro.analysis.sanitizer import verify_determinism

        report = verify_determinism(
            lambda san: _run_cluster(args, sanitizer=san), runs=2
        )
        print(report.render())
        return 0 if report.ok else 1
    sanitizer = None
    if args.sanitize:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    tracer = None
    if args.trace:
        from repro.trace import Tracer

        tracer = Tracer()
    cluster, jobs = _run_cluster(args, sanitizer=sanitizer, tracer=tracer,
                                 race_detect=args.race_detect)
    print(cluster.describe())
    print(f"policy : {args.policy}, {args.jobs} jobs, "
          f"{args.records_per_job} records/job")
    if cluster.dram.budget is not None:
        print(f"dram   : {fmt_bytes(cluster.dram.budget)} pool, "
              f"peak {fmt_bytes(cluster.dram.peak)} reserved")
    print()
    print(render_job_table(jobs))
    print()
    print(render_shard_table(cluster))
    if tracer is not None:
        from repro.trace import write_chrome_trace

        write_chrome_trace(tracer, args.trace)
        print(f"trace  : {args.trace} "
              f"({len(tracer.spans)} spans, {len(tracer.ops)} ops)")
    if sanitizer is not None:
        from repro.errors import ChargeDriftError

        try:
            sanitizer.check()
        except ChargeDriftError as exc:
            print(f"sanitize: {exc}")
            return 1
        print("sanitize: zero drift across all shards")
    if args.race_detect:
        print(cluster.race.render())
        if cluster.race.races:
            return 1
    if args.selfperf:
        print()
        print(_render_cluster_counters(cluster))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError

    base = api.RunOptions(
        records=args.records,
        system=args.system,
        device=args.device,
        seed=args.seed,
        dram_budget=args.dram_budget,
        validate=not args.no_validate,
    )
    devices = None
    if args.devices:
        devices = [name.strip() for name in args.devices.split(",")]
    monitor = None
    if args.burn_window is not None:
        if not args.slo:
            print("serve: --burn-window needs at least one --slo",
                  file=sys.stderr)
            return 2
        from repro.cluster.service import SLOMonitor

        monitor = SLOMonitor(args.slo, window=args.burn_window,
                             burn_threshold=args.burn_alert)
    try:
        report = api.serve(
            base,
            arrivals=args.arrivals,
            rate=args.rate,
            horizon=args.horizon,
            max_jobs=args.max_jobs,
            policy=args.policy,
            shards=args.shards,
            devices=devices,
            tenants=max(1, args.tenants),
            queue_cap=args.queue_cap,
            deadline=args.deadline,
            period=args.period,
            amplitude=args.amplitude,
            trace_file=args.trace_file,
            slos=args.slo or (),
            monitor=monitor,
        )
    except ConfigError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    print(report.extras["cluster"].describe())
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report : {args.report}")
    return 0 if report.ok else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.trace import Tracer, analyze_tracer
    from repro.trace.analyze import parse_what_if

    hypotheses = []
    for expr in args.what_if or ():
        try:
            hypotheses.append(parse_what_if(expr))
        except ConfigError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
    fmt = RecordFormat(key_size=args.key_size, value_size=args.value_size)
    config = SortConfig(concurrency=ConcurrencyModel(args.concurrency))
    tracer = Tracer(analyze=True)
    result = api.sort(api.RunOptions(
        records=args.records,
        system=args.system,
        device=args.device,
        fmt=fmt,
        config=config,
        seed=args.seed,
        validate=not args.no_validate,
        dram_budget=args.dram_budget,
        trace=tracer,
    ))
    report = analyze_tracer(tracer)
    machine = result.extras["machine"]
    print(f"device : {machine.profile.describe()}")
    print(f"system : {result.system}")
    print(f"total  : {fmt_seconds(result.total_time)} (simulated)")
    print()
    print(report.render(blame_rows=args.blame_rows))
    for wi in hypotheses:
        print()
        print(report.render_what_if(report.what_if(wi)))
    if args.json:
        from repro.trace import write_report_json

        write_report_json(report, args.json)
        print(f"\nreport : {args.json}")
    if args.trace:
        from repro.trace import write_chrome_trace

        write_chrome_trace(tracer, args.trace)
        print(f"trace  : {args.trace} "
              f"({len(tracer.spans)} spans, {len(tracer.ops)} ops)")
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.errors import SchemaMismatchError
    from repro.trace import diff_reports, load_report_json, render_diff

    docs = []
    for path in (args.report_a, args.report_b):
        try:
            docs.append(load_report_json(path))
        except (OSError, ValueError) as exc:
            print(f"trace-diff: {path}: {exc}", file=sys.stderr)
            return 2
    try:
        diff = diff_reports(docs[0], docs[1], threshold=args.threshold)
    except SchemaMismatchError as exc:
        print(f"trace-diff: {exc}", file=sys.stderr)
        return 2
    print(render_diff(diff))
    return 1 if diff["regressions"] else 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.trace import load_chrome_trace, render_trace_report

    try:
        doc = load_chrome_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 2
    print(render_trace_report(doc, args.trace_file))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    profile = get_profile(args.device)()
    result = calibrate_device(profile, HostModel(), use_cache=False)
    for line in result.table():
        print(line)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    fn = get_experiment(args.experiment)
    table = fn() if args.experiment == "tab01" else fn(scale=args.scale)
    print(table.render())
    return 0


def cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILES):
        print(get_profile(name)().describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "sort": cmd_sort,
        "analyze": cmd_analyze,
        "trace-diff": cmd_trace_diff,
        "cluster": cmd_cluster,
        "serve": cmd_serve,
        "calibrate": cmd_calibrate,
        "trace-report": cmd_trace_report,
        "bench": cmd_bench,
        "profiles": cmd_profiles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
