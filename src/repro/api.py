"""The programmatic entry points: ``repro.api.sort`` and ``repro.api.serve``.

Both are built on one typed options surface, :class:`RunOptions` -- a
frozen dataclass carrying everything a single sort run needs (system,
device, format, config, seed, fault spec, sanitizer/tracer/race-detector
arming, DRAM budget).  The CLI, the cluster job scheduler and the sort
service all construct the same ``RunOptions`` instead of threading
fifteen loose keyword arguments through every layer::

    from repro import api

    result = api.sort(api.RunOptions(records=200_000, system="wiscsort"))
    print(result.total_time, result.phases)

    report = api.serve(
        api.RunOptions(records=2_000, seed=7),
        rate=200.0, horizon=0.5, policy="edf",
    )
    print(report.render())

The old loose-keyword signature ``api.sort(records=..., system=...)``
still works through a thin shim that emits a ``DeprecationWarning`` and
builds the same ``RunOptions``.

The returned :class:`~repro.core.base.SortResult` carries the machine in
``result.extras["machine"]`` for timeline/stats inspection, and the
fault report (when ``faults`` was given) in
``result.extras["fault_report"]``.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.core.base import SortConfig, SortResult
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.registry import create_system, get_profile


@dataclass(frozen=True)
class RunOptions:
    """Everything one sort run needs, in one typed immutable object.

    Field defaults mirror the historical ``api.sort`` keyword defaults
    one-to-one, so ``RunOptions()`` reproduces the classic
    ``api.sort()`` call exactly.  Use :meth:`replace` to derive
    variants without mutating (the dataclass is frozen)::

        base = RunOptions(records=50_000, device="pmem")
        traced = base.replace(trace="out.trace.json")

    ``sanitizer`` and ``trace`` may carry live objects (a pre-built
    :class:`~repro.analysis.sanitizer.SimSanitizer`, a
    :class:`~repro.trace.Tracer` or an export path); frozen-ness only
    pins *which* objects a run uses, deliberately.
    """

    #: Records in the generated gensort dataset.
    records: int = 100_000
    #: Registry name of the sorting system.
    system: str = "wiscsort"
    #: Registry name of the device profile.
    device: str = "pmem"
    #: Record geometry (None = default 10B key / 90B value).
    fmt: Optional[RecordFormat] = None
    #: Sort tunables (None = defaults).
    config: Optional[SortConfig] = None
    #: Dataset seed (and base seed for fault plans / arrival streams).
    seed: int = 42
    #: Fault-injection spec string (``--faults`` grammar), or None.
    faults: Optional[str] = None
    #: Install the runtime SimSanitizer and check for charge drift.
    sanitize: bool = False
    #: Validate the output post-run (untimed).
    validate: bool = True
    #: DRAM cap in bytes (None = unbounded; small values force MergePass).
    dram_budget: Optional[int] = None
    #: Rate-model memo cache (debug switch; results identical either way).
    memoize_rates: bool = True
    #: Pre-built sanitizer instance (advanced; overrides ``sanitize``'s).
    sanitizer: Optional[Any] = None
    #: Trace export path or pre-built :class:`~repro.trace.Tracer`.
    trace: Optional[Any] = None
    #: Also record analyze-mode wait/process records for the
    #: critical-path analyzer (implies tracing; observe-only).
    analyze: bool = False
    #: Install the sim-time race detector (observe-only).
    race_detect: bool = False
    #: Seed for the same-instant schedule permuter (None = FIFO order).
    schedule_seed: Optional[int] = None

    def __post_init__(self):
        if self.records < 0:
            raise ConfigError("records must be >= 0")
        if self.fmt is not None and not isinstance(self.fmt, RecordFormat):
            raise ConfigError(
                f"fmt must be a RecordFormat, not {type(self.fmt).__name__}"
            )
        if self.config is not None and not isinstance(self.config, SortConfig):
            raise ConfigError(
                f"config must be a SortConfig, not {type(self.config).__name__}"
            )

    def replace(self, **changes) -> "RunOptions":
        """A copy with the given fields replaced (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    @property
    def record_format(self) -> RecordFormat:
        """The effective record format (default-filled)."""
        return self.fmt if self.fmt is not None else RecordFormat()

    @property
    def sort_config(self) -> SortConfig:
        """The effective sort config (default-filled)."""
        return self.config if self.config is not None else SortConfig()


def _coerce_options(where: str, options, legacy: dict) -> RunOptions:
    """Resolve the ``(options, **legacy)`` surface to one RunOptions.

    The legacy loose-keyword path (and the ancient ``records`` first
    positional) still works but warns: it is scheduled to go the way of
    the SampleSort positional shim.
    """
    if isinstance(options, int):
        # Ancient surface: api.sort(200_000, system=...).
        legacy = {"records": options, **legacy}
        options = None
    if legacy:
        if options is not None:
            raise ConfigError(
                f"api.{where}() takes a RunOptions or legacy keywords, "
                f"not both"
            )
        warnings.warn(
            f"calling api.{where}() with loose keyword arguments is "
            f"deprecated; build a repro.api.RunOptions and pass it as "
            f"the single positional argument (shim scheduled for "
            f"removal in 2.0)",
            DeprecationWarning,
            stacklevel=3,
        )
        try:
            return RunOptions(**legacy)
        except TypeError as exc:
            raise ConfigError(f"api.{where}(): {exc}") from None
    if options is None:
        return RunOptions()
    if not isinstance(options, RunOptions):
        raise ConfigError(
            f"api.{where}() takes a RunOptions, not "
            f"{type(options).__name__}"
        )
    return options


def _resolve_tracer(o: RunOptions):
    """Resolve ``(o.trace, o.analyze)`` to ``(tracer, export_path)``.

    ``analyze=True`` arms the analyze-mode record streams on whatever
    tracer the run uses -- creating one if the options carry no
    ``trace`` at all (the records live on the Tracer object; nothing is
    exported unless a path was given).
    """
    tracer = None
    trace_path = None
    if o.trace is not None:
        from repro.trace import Tracer

        if isinstance(o.trace, str):
            trace_path = o.trace
            tracer = Tracer()
        elif isinstance(o.trace, Tracer):
            tracer = o.trace
        else:
            raise ConfigError(
                f"trace must be a path string or a repro.trace.Tracer, "
                f"not {type(o.trace).__name__}"
            )
    if o.analyze:
        if tracer is None:
            from repro.trace import Tracer

            tracer = Tracer(analyze=True)
        else:
            tracer.analyze = True
    return tracer, trace_path


def _build_machine(o: RunOptions) -> Machine:
    return Machine(
        profile=get_profile(o.device)(),
        dram_budget=o.dram_budget,
        memoize_rates=o.memoize_rates,
    )


def _probe_op_count(o: RunOptions, checkpoint: bool) -> int:
    """Fault-free probe run counting timed file ops (resolves crash@N%).

    Mirrors the real run exactly -- same dataset, system and (crucially)
    checkpoint setting, since checkpoint writes are part of the op
    stream the fault-plan fractions index into.
    """
    from repro.faults import FaultPlan

    machine = _build_machine(o)
    data = generate_dataset(machine, "input", o.records, o.record_format,
                            seed=o.seed)
    probe_system = create_system(o.system, o.record_format,
                                 config=o.sort_config)
    if checkpoint:
        probe_system.checkpoint = True
    injector = machine.install_faults(FaultPlan(), count_only=True)
    probe_system.run(machine, data, validate=False)
    return injector.op_index


def sort(options: "RunOptions | int | None" = None, /, **legacy) -> SortResult:
    """Sort a generated gensort dataset with a registered system.

    Pass one :class:`RunOptions`; its fields mirror the CLI flags
    one-to-one.  ``system`` and ``device`` are registry names
    (:func:`repro.registry.available` lists them); unknown names raise
    :class:`~repro.errors.UnknownSystemError`.  ``faults`` takes the
    fault-spec grammar of ``--faults`` (e.g. ``"crash@50%"``).
    ``sanitize`` installs the runtime
    :class:`~repro.analysis.sanitizer.SimSanitizer` and raises
    :class:`~repro.errors.ChargeDriftError` on accounting drift after a
    completed run; advanced callers may instead pass a pre-built
    ``sanitizer`` (e.g. a tracing one for determinism diffing).
    ``trace`` arms the observe-only :class:`repro.trace.Tracer`: a path
    string exports a Chrome/Perfetto trace JSON there after the run, a
    pre-built ``Tracer`` is yours to inspect programmatically.

    ``race_detect`` installs the observe-only
    :class:`~repro.analysis.race.RaceDetector` (simulated results stay
    bit-identical); inspect ``result.extras["race_detector"]`` or call
    its ``check()`` to raise :class:`~repro.errors.RaceError` on
    findings.  ``schedule_seed`` installs a
    :class:`~repro.analysis.race.SchedulePermuter` that permutes
    same-instant scheduling ties -- a correct workload produces
    byte-identical output under any seed (``None`` keeps the default
    FIFO schedule).

    Returns the :class:`~repro.core.base.SortResult`; ``extras`` carries
    ``machine``, ``sanitizer`` (when installed), ``tracer`` (when
    tracing), ``race_detector`` (when ``race_detect``) and
    ``fault_report`` (when faults were injected).
    """
    o = _coerce_options("sort", options, legacy)
    fmt = o.record_format
    config = o.sort_config
    machine = _build_machine(o)
    race_detector = None
    if o.race_detect:
        race_detector = machine.install_race_detector()
    if o.schedule_seed is not None:
        machine.install_schedule_fuzz(o.schedule_seed)
    sanitizer = o.sanitizer
    if o.sanitize and sanitizer is None:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    if sanitizer is not None:
        sanitizer.install(machine)
    tracer, trace_path = _resolve_tracer(o)
    if tracer is not None:
        tracer.install(machine)
    data = generate_dataset(machine, "input", o.records, fmt, seed=o.seed)
    sort_system = create_system(o.system, fmt, config=config)
    fault_report = None
    if o.faults is not None:
        from repro.faults import parse_fault_spec, run_with_faults

        plan = parse_fault_spec(o.faults, seed=o.seed)
        if plan.has_crash:
            if not hasattr(sort_system, "checkpoint"):
                raise ConfigError(
                    f"faults with a crash need a checkpointing system "
                    f"(wiscsort or ems), not {o.system!r}"
                )
            sort_system.checkpoint = True
        if plan.needs_probe:
            plan = plan.resolve_fractions(_probe_op_count(o, plan.has_crash))
        machine.install_faults(plan)
        result, fault_report = run_with_faults(
            sort_system, machine, data, validate=o.validate
        )
    else:
        result = sort_system.run(machine, data, validate=o.validate)
    result.extras["machine"] = machine
    if race_detector is not None:
        result.extras["race_detector"] = race_detector
    if fault_report is not None:
        result.extras["fault_report"] = fault_report
    if sanitizer is not None:
        result.extras["sanitizer"] = sanitizer
        if o.sanitize:
            sanitizer.check()
    if tracer is not None:
        result.extras["tracer"] = tracer
        if trace_path is not None:
            from repro.trace import write_chrome_trace

            write_chrome_trace(tracer, trace_path)
    return result


def serve(
    options: Optional[RunOptions] = None,
    /,
    *,
    arrivals: Union[str, Any] = "poisson",
    rate: float = 100.0,
    horizon: Optional[float] = None,
    max_jobs: Optional[int] = None,
    policy: str = "fifo",
    shards: int = 2,
    devices: Optional[Sequence[str]] = None,
    tenants: int = 2,
    systems: Optional[Sequence[str]] = None,
    size_mix: Optional[Sequence] = None,
    deadline: Optional[float] = None,
    period: float = 1.0,
    amplitude: float = 0.8,
    trace_file: Optional[str] = None,
    queue_cap: Optional[int] = None,
    slos: Sequence = (),
    link_bw: Optional[float] = None,
    monitor: Optional[Any] = None,
    **legacy,
):
    """Run the cluster as an open-loop sort *service* and report SLOs.

    The :class:`RunOptions` supplies the per-job defaults (base
    ``records``, ``system``, ``fmt``/``config``, ``seed``) plus the
    cluster-level knobs it shares with :func:`sort` (``device``,
    ``dram_budget``, ``sanitize``, ``trace``, ``race_detect``,
    ``validate``).  ``arrivals`` is an
    :class:`~repro.workloads.arrivals.ArrivalProcess` instance or one
    of the names ``"poisson"`` / ``"bursty"`` / ``"trace"`` (the last
    needs ``trace_file``); the generative processes are seeded from
    ``options.seed`` so the whole offered workload is a pure function
    of the options.

    ``policy`` resolves through :func:`repro.registry.get_policy`
    (``fifo``/``fair``/``edf``/``backpressure``/``shed``); ``slos``
    takes :class:`~repro.cluster.service.SLO` objects or spec strings
    like ``"latency:p99<0.05"``; ``monitor`` takes an
    :class:`~repro.cluster.service.SLOMonitor` for live error-budget
    burn-rate tracking (windows and alerts land in the report's
    ``burn`` section, and as ``slo_alert`` trace instants when
    tracing).  Infinite arrival processes need a ``horizon`` (simulated
    seconds) or ``max_jobs`` bound.

    Returns the :class:`~repro.cluster.service.ServiceReport`; its
    ``extras`` carries ``cluster``, ``jobs`` and any armed observers.
    """
    o = _coerce_options("serve", options, legacy)
    if o.faults is not None:
        raise ConfigError(
            "api.serve() does not support fault injection yet; use "
            "api.sort() or the cluster --faults path"
        )
    if o.schedule_seed is not None:
        raise ConfigError(
            "api.serve() does not support schedule fuzzing: the service "
            "may legally place tied jobs differently per schedule"
        )
    from repro.cluster import Cluster
    from repro.cluster.service import SortService
    from repro.workloads.arrivals import (
        ArrivalProcess,
        BurstyArrivals,
        PoissonArrivals,
        TraceArrivals,
    )

    job_kwargs = dict(
        records=o.records,
        size_mix=size_mix,
        tenants=tenants,
        systems=tuple(systems) if systems else (o.system,),
        deadline=deadline,
    )
    if isinstance(arrivals, ArrivalProcess):
        process = arrivals
    elif arrivals == "poisson":
        process = PoissonArrivals(rate, seed=o.seed, **job_kwargs)
    elif arrivals == "bursty":
        process = BurstyArrivals(
            rate, seed=o.seed, period=period, amplitude=amplitude,
            **job_kwargs,
        )
    elif arrivals == "trace":
        if trace_file is None:
            raise ConfigError('arrivals="trace" needs a trace_file path')
        process = TraceArrivals.from_file(
            trace_file, records=o.records, system=o.system, seed=o.seed
        )
    else:
        raise ConfigError(
            f"unknown arrival process {arrivals!r}; choices: poisson, "
            f"bursty, trace (or pass an ArrivalProcess instance)"
        )
    cluster_kwargs = dict(
        dram_budget=o.dram_budget,
        config=o.sort_config,
        memoize_rates=o.memoize_rates,
    )
    if link_bw is not None:
        # None here means "cluster default", not "no interconnect".
        cluster_kwargs["link_bw"] = link_bw
    if devices:
        cluster = Cluster(profiles=list(devices), **cluster_kwargs)
    else:
        cluster = Cluster(
            shards=shards,
            profile=get_profile(o.device)(),
            **cluster_kwargs,
        )
    sanitizer = o.sanitizer
    if o.sanitize and sanitizer is None:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    if sanitizer is not None:
        sanitizer.install_cluster(cluster)
    race_detector = None
    if o.race_detect:
        race_detector = cluster.install_race_detector()
    tracer, trace_path = _resolve_tracer(o)
    if tracer is not None:
        tracer.install_cluster(cluster)
    service = SortService(
        cluster,
        policy=policy,
        fmt=o.fmt,
        config=o.config,
        queue_cap=queue_cap,
        slos=slos,
        validate=o.validate,
        monitor=monitor,
    )
    report = service.serve(process, horizon=horizon, max_jobs=max_jobs)
    report.extras["cluster"] = cluster
    if sanitizer is not None:
        report.extras["sanitizer"] = sanitizer
        if o.sanitize:
            sanitizer.check()
    if race_detector is not None:
        report.extras["race_detector"] = race_detector
    if tracer is not None:
        report.extras["tracer"] = tracer
        if trace_path is not None:
            from repro.trace import write_chrome_trace

            write_chrome_trace(tracer, trace_path)
    return report
