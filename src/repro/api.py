"""The one programmatic entry point: ``repro.api.sort``.

Everything the CLI's ``sort`` command does -- build a machine from a
profile name, generate the dataset, instantiate a registered system,
optionally arm fault injection or the runtime sanitizer, run and
validate -- behind a single function call::

    from repro import api

    result = api.sort(records=200_000, system="wiscsort", device="pmem")
    print(result.total_time, result.phases)

The returned :class:`~repro.core.base.SortResult` carries the machine in
``result.extras["machine"]`` for timeline/stats inspection, and the
fault report (when ``faults`` was given) in
``result.extras["fault_report"]``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import SortConfig, SortResult
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.registry import create_system, get_profile


def _build_machine(
    device: str,
    dram_budget: Optional[int],
    memoize_rates: bool,
) -> Machine:
    return Machine(
        profile=get_profile(device)(),
        dram_budget=dram_budget,
        memoize_rates=memoize_rates,
    )


def _probe_op_count(
    records: int,
    system: str,
    device: str,
    fmt: RecordFormat,
    config: SortConfig,
    seed: int,
    dram_budget: Optional[int],
    memoize_rates: bool,
    checkpoint: bool,
) -> int:
    """Fault-free probe run counting timed file ops (resolves crash@N%).

    Mirrors the real run exactly -- same dataset, system and (crucially)
    checkpoint setting, since checkpoint writes are part of the op
    stream the fault-plan fractions index into.
    """
    from repro.faults import FaultPlan

    machine = _build_machine(device, dram_budget, memoize_rates)
    data = generate_dataset(machine, "input", records, fmt, seed=seed)
    probe_system = create_system(system, fmt, config=config)
    if checkpoint:
        probe_system.checkpoint = True
    injector = machine.install_faults(FaultPlan(), count_only=True)
    probe_system.run(machine, data, validate=False)
    return injector.op_index


def sort(
    records: int = 100_000,
    system: str = "wiscsort",
    device: str = "pmem",
    fmt: Optional[RecordFormat] = None,
    config: Optional[SortConfig] = None,
    seed: int = 42,
    faults: Optional[str] = None,
    sanitize: bool = False,
    validate: bool = True,
    dram_budget: Optional[int] = None,
    memoize_rates: bool = True,
    sanitizer=None,
    trace=None,
    race_detect: bool = False,
    schedule_seed: Optional[int] = None,
) -> SortResult:
    """Sort a generated gensort dataset with a registered system.

    Parameters mirror the CLI flags one-to-one.  ``system`` and
    ``device`` are registry names
    (:func:`repro.registry.available` lists them); unknown names raise
    :class:`~repro.errors.UnknownSystemError`.  ``faults`` takes the
    fault-spec grammar of ``--faults`` (e.g. ``"crash@50%"``).
    ``sanitize`` installs the runtime
    :class:`~repro.analysis.sanitizer.SimSanitizer` and raises
    :class:`~repro.errors.ChargeDriftError` on accounting drift after a
    completed run; advanced callers may instead pass a pre-built
    ``sanitizer`` (e.g. a tracing one for determinism diffing).
    ``trace`` arms the observe-only :class:`repro.trace.Tracer`: pass a
    path string to export a Chrome/Perfetto trace JSON there after the
    run, or a pre-built ``Tracer`` to inspect programmatically.

    ``race_detect`` installs the observe-only
    :class:`~repro.analysis.race.RaceDetector` (simulated results stay
    bit-identical); inspect ``result.extras["race_detector"]`` or call
    its ``check()`` to raise :class:`~repro.errors.RaceError` on
    findings.  ``schedule_seed`` installs a
    :class:`~repro.analysis.race.SchedulePermuter` that permutes
    same-instant scheduling ties -- a correct workload produces
    byte-identical output under any seed (``None`` keeps the default
    FIFO schedule).

    Returns the :class:`~repro.core.base.SortResult`; ``extras`` carries
    ``machine``, ``sanitizer`` (when installed), ``tracer`` (when
    tracing), ``race_detector`` (when ``race_detect``) and
    ``fault_report`` (when faults were injected).
    """
    fmt = fmt if fmt is not None else RecordFormat()
    config = config if config is not None else SortConfig()
    machine = _build_machine(device, dram_budget, memoize_rates)
    race_detector = None
    if race_detect:
        race_detector = machine.install_race_detector()
    if schedule_seed is not None:
        machine.install_schedule_fuzz(schedule_seed)
    if sanitize and sanitizer is None:
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
    if sanitizer is not None:
        sanitizer.install(machine)
    tracer = None
    trace_path = None
    if trace is not None:
        from repro.trace import Tracer

        if isinstance(trace, str):
            trace_path = trace
            tracer = Tracer()
        elif isinstance(trace, Tracer):
            tracer = trace
        else:
            from repro.errors import ConfigError

            raise ConfigError(
                f"trace must be a path string or a repro.trace.Tracer, "
                f"not {type(trace).__name__}"
            )
        tracer.install(machine)
    data = generate_dataset(machine, "input", records, fmt, seed=seed)
    sort_system = create_system(system, fmt, config=config)
    fault_report = None
    if faults is not None:
        from repro.errors import ConfigError
        from repro.faults import parse_fault_spec, run_with_faults

        plan = parse_fault_spec(faults, seed=seed)
        if plan.has_crash:
            if not hasattr(sort_system, "checkpoint"):
                raise ConfigError(
                    f"faults with a crash need a checkpointing system "
                    f"(wiscsort or ems), not {system!r}"
                )
            sort_system.checkpoint = True
        if plan.needs_probe:
            plan = plan.resolve_fractions(
                _probe_op_count(
                    records, system, device, fmt, config, seed,
                    dram_budget, memoize_rates, plan.has_crash,
                )
            )
        machine.install_faults(plan)
        result, fault_report = run_with_faults(
            sort_system, machine, data, validate=validate
        )
    else:
        result = sort_system.run(machine, data, validate=validate)
    result.extras["machine"] = machine
    if race_detector is not None:
        result.extras["race_detector"] = race_detector
    if fault_report is not None:
        result.extras["fault_report"] = fault_report
    if sanitizer is not None:
        result.extras["sanitizer"] = sanitizer
        if sanitize:
            sanitizer.check()
    if tracer is not None:
        result.extras["tracer"] = tracer
        if trace_path is not None:
            from repro.trace import write_chrome_trace

            write_chrome_trace(tracer, trace_path)
    return result
