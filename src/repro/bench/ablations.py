"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one WiscSort design
decision and sweeps it, validating the claim the paper makes in passing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.bench.experiments import SORTBENCH_FMT, _fmt_ms, _run_system
from repro.core.base import SortConfig
from repro.core.compression import CompressionModel, estimate_benefit
from repro.device.host import HostModel
from repro.device.profiles import pmem_profile
from repro.machine import Machine
from repro.metrics.report import BenchTable
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.registry import get_system, register_experiment
from repro.units import KiB, MiB
from repro.workloads.datasets import DEFAULT_SCALE


@register_experiment("ablation-write-pool")
def ablation_write_pool(
    scale: int = DEFAULT_SCALE,
    pool_sizes: Tuple[int, ...] = (1, 2, 5, 8, 16, 32),
) -> BenchTable:
    """Sweep the write pool size: the thread-pool controller's raison
    d'etre.  PMEM writes peak around 5 threads (Sec 3.8) -- both too few
    and too many threads should lose."""
    n = 200_000_000 // scale
    pmem = pmem_profile()
    table = BenchTable(
        title=f"Ablation: write-pool size, WiscSort OnePass ({n} records)",
        headers=["write threads", "time (ms)"],
    )
    for threads in pool_sizes:
        config = SortConfig(write_threads=threads)
        result = _run_system(get_system("wiscsort")(SORTBENCH_FMT, config=config), pmem, n)
        table.add_row(threads, _fmt_ms(result.total_time))
    table.add_note("controller default picks ~5 threads; ends of the sweep lose")
    return table


@register_experiment("ablation-pointer")
def ablation_pointer_size(scale: int = DEFAULT_SCALE) -> BenchTable:
    """5-byte vs 8-byte pointers (paper Sec 3.3 footnote): the wider
    pointer costs extra IndexMap traffic -- write reduction vs EMS drops
    from ~7x to ~5x for the 10B/90B workload."""
    n = 400_000_000 // scale
    pmem = pmem_profile()
    chunk = max(1, n // 4)
    table = BenchTable(
        title=f"Ablation: pointer width, WiscSort MergePass ({n} records)",
        headers=["pointer B", "time (ms)", "run-write bytes", "write reduction vs ems"],
    )
    ems = _run_system(get_system("ems")(SORTBENCH_FMT), pmem, n)
    ems_run_write = ems.extras["machine"].stats.tags["RUN write"].user_bytes
    for pointer in (5, 8):
        fmt = RecordFormat(key_size=10, value_size=90, pointer_size=pointer)
        system = get_system("wiscsort")(fmt, force_merge_pass=True, merge_chunk_entries=chunk)
        result = _run_system(system, pmem, n, fmt=fmt)
        run_write = result.extras["machine"].stats.tags["RUN write"].user_bytes
        table.add_row(
            pointer,
            _fmt_ms(result.total_time),
            int(run_write),
            f"{ems_run_write / run_write:.2f}x",
        )
    table.add_note("paper: ~7x reduction with 5B pointers, 5x with 8B")
    return table


@register_experiment("ablation-dram")
def ablation_dram_budget(
    scale: int = DEFAULT_SCALE,
    budget_fractions: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.25),
) -> BenchTable:
    """Sweep the DRAM cap relative to the IndexMap size: the
    OnePass/MergePass crossover and its cost."""
    n = 200_000_000 // scale
    pmem = pmem_profile()
    imap_bytes = n * SORTBENCH_FMT.index_entry_size
    table = BenchTable(
        title=f"Ablation: DRAM budget vs IndexMap size ({n} records)",
        headers=["budget/imap", "pass", "time (ms)"],
    )
    for fraction in budget_fractions:
        budget = max(64 * KiB, int(imap_bytes * fraction))
        system = get_system("wiscsort")(SORTBENCH_FMT)
        result = _run_system(system, pmem, n, dram_budget=budget)
        table.add_row(
            f"{fraction:.2f}",
            "merge" if system.used_merge_pass else "one",
            _fmt_ms(result.total_time),
        )
    table.add_note("crossover at budget == IndexMap size; MergePass costs extra")
    return table


@register_experiment("ablation-buffers")
def ablation_buffer_size(
    scale: int = DEFAULT_SCALE,
    write_buffers: Tuple[int, ...] = (1 * MiB, 2 * MiB, 5 * MiB, 10 * MiB),
) -> BenchTable:
    """Sweep the write buffer: the paper claims "the size of the write
    buffer has no performance significance" (Sec 3.8)."""
    n = 200_000_000 // scale
    pmem = pmem_profile()
    table = BenchTable(
        title=f"Ablation: write-buffer size, WiscSort OnePass ({n} records)",
        headers=["write buffer MiB", "time (ms)"],
    )
    for wb in write_buffers:
        config = SortConfig(write_buffer=wb)
        result = _run_system(get_system("wiscsort")(SORTBENCH_FMT, config=config), pmem, n)
        table.add_row(wb // MiB, _fmt_ms(result.total_time))
    table.add_note("paper: buffer size choice has no effect (times ~flat)")
    return table


@register_experiment("ablation-compression")
def ablation_compression(scale: int = DEFAULT_SCALE) -> BenchTable:
    """IndexMap compression (Sec 5 future work): measure the tradeoff on
    an incompressible (uniform gensort) and a compressible
    (low-cardinality keys) workload, and compare against the
    estimate_benefit criterion."""
    n = 200_000_000 // scale
    pmem = pmem_profile()
    host = HostModel()
    model = CompressionModel()
    chunk = max(1, n // 4)
    table = BenchTable(
        title=f"Ablation: IndexMap compression, MergePass ({n} records)",
        headers=["workload", "plain ms", "compressed ms", "ratio", "predicted"],
    )

    def run_pair(skewed: bool):
        def build(machine):
            f = generate_dataset(machine, "input", n, SORTBENCH_FMT, seed=5)
            if skewed:
                data = f.peek().reshape(-1, SORTBENCH_FMT.record_size)
                data[:, 2 : SORTBENCH_FMT.key_size] = 0
                f.poke(0, data.reshape(-1))
            return f

        results = {}
        for compress in (False, True):
            machine = Machine(profile=pmem)
            f = build(machine)
            system = get_system("wiscsort")(
                SORTBENCH_FMT,
                force_merge_pass=True,
                merge_chunk_entries=chunk,
                compression=model if compress else None,
            )
            results[compress] = (system.run(machine, f), system)
        return results

    for label, skewed in (("uniform keys", False), ("skewed keys", True)):
        results = run_pair(skewed)
        plain, _ = results[False]
        compressed, system = results[True]
        ratio = system.achieved_compression_ratio or 1.0
        benefit = estimate_benefit(pmem, host, model, ratio, cores=host.ncores)
        table.add_row(
            label,
            _fmt_ms(plain.total_time),
            _fmt_ms(compressed.total_time),
            f"{ratio:.2f}",
            "worthwhile" if benefit > 0 else "not worthwhile",
        )
    table.add_note("Sec 5: worthwhile only if reads+decompression beat "
                   "compression+writes")
    return table


@register_experiment("ablation-natural-runs")
def ablation_natural_runs(
    scale: int = DEFAULT_SCALE,
    presorted_fractions: Tuple[float, ...] = (0.0, 0.5, 1.0),
) -> BenchTable:
    """Natural-run elision (Sec 6 related work: MONTRES-NVM, NVMSorting).

    Skipping IndexMap writes for presorted chunks trades strided key
    re-gathers for run-file writes+reads: roughly neutral on PMEM
    (cheap sequential IndexMaps), a clear win on write-asymmetric
    devices like BARD -- quantifying why the paper treats the technique
    as orthogonal rather than essential.
    """
    from repro.device.profiles import bard_device_profile
    from repro.records.format import record_sort_indices

    n = 200_000_000 // scale
    chunk = max(1, n // 4)
    table = BenchTable(
        title=f"Ablation: natural-run elision, MergePass ({n} records)",
        headers=["device", "presorted", "wiscsort ms", "natural-run ms",
                 "natural chunks"],
    )

    def run_one(profile, fraction, cls):
        machine = Machine(profile=profile)
        f = generate_dataset(machine, "input", n, SORTBENCH_FMT, seed=5)
        if fraction > 0:
            data = f.peek().reshape(-1, SORTBENCH_FMT.record_size)
            cut = int(n * fraction)
            head = data[:cut]
            data[:cut] = head[record_sort_indices(head, SORTBENCH_FMT.key_size)]
            f.poke(0, data.reshape(-1))
        system = cls(
            SORTBENCH_FMT, force_merge_pass=True, merge_chunk_entries=chunk
        )
        result = system.run(machine, f, validate=False)
        return result, system

    for device_name, profile in (
        ("pmem", pmem_profile()),
        ("bard-device", bard_device_profile()),
    ):
        for fraction in presorted_fractions:
            base, _ = run_one(profile, fraction, get_system("wiscsort"))
            nat, system = run_one(profile, fraction, get_system("wiscsort-natural"))
            table.add_row(
                device_name,
                f"{fraction:.0%}",
                _fmt_ms(base.total_time),
                _fmt_ms(nat.total_time),
                system.natural_chunks,
            )
    table.add_note("elision wins where writes are expensive (BARD); ~neutral on PMEM")
    return table


@register_experiment("ablation-merge-fanin")
def ablation_merge_fanin(
    scale: int = DEFAULT_SCALE,
    read_buffers: Tuple[int, ...] = (4 * KiB, 16 * KiB, 64 * KiB, 1 * MiB),
) -> BenchTable:
    """Sweep the merge fan-in via the read buffer (paper Sec 2.1/2.4.1).

    Small read buffers force multiple merge phases; EMS pays (1 + M)
    dataset writes, while WiscSort's intermediate phases move only
    key-pointer entries, so extra phases cost it far less.
    """

    n = 40_000_000 // scale
    pmem = pmem_profile()
    fmt = SORTBENCH_FMT
    dataset = n * fmt.record_size
    table = BenchTable(
        title=f"Ablation: merge fan-in / phases ({n} records)",
        headers=["read buffer KiB", "ems M", "ems ms", "ems writes/dataset",
                 "wiscsort M", "wiscsort ms"],
    )
    for rb in read_buffers:
        config = SortConfig(read_buffer=rb, write_buffer=max(4 * KiB, rb // 2))
        ems_system = get_system("ems")(fmt, config=config)
        ems = _run_system(ems_system, pmem, n)
        chunk = max(1, min(n // 8, rb // fmt.index_entry_size * 4))
        wisc_system = get_system("wiscsort")(
            fmt, config=config, force_merge_pass=True, merge_chunk_entries=chunk
        )
        wisc = _run_system(wisc_system, pmem, n)
        table.add_row(
            rb // KiB,
            ems_system.merge_passes,
            _fmt_ms(ems.total_time),
            f"{ems.user_written / dataset:.2f}",
            wisc_system.merge_passes,
            _fmt_ms(wisc.total_time),
        )
    table.add_note("EMS write traffic is (1+M) x dataset; WiscSort's extra "
                   "phases move 15B entries, not 100B records")
    return table
