"""Scale-out experiment: sharded sorting across 1..N devices.

Beyond the paper (its testbed is one PMEM socket): the same dataset is
sorted on a single device and on 2- and 4-shard clusters, reporting the
end-to-end time, the shuffle overhead and the speedup over one device.
Every sharded run's merged output is asserted byte-identical to the
single-device output -- the scale-out path may change *when* bytes move
but never *which* bytes come out.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import SORTBENCH_FMT, _fmt_ms
from repro.cluster import Cluster, ShardedWiscSort, generate_cluster_dataset
from repro.errors import ValidationError
from repro.machine import Machine
from repro.metrics.report import BenchTable, speedup
from repro.records.gensort import generate_dataset
from repro.registry import create_system, get_profile, register_experiment
from repro.workloads.datasets import DEFAULT_SCALE


@register_experiment("cluster-scaleout")
def cluster_scaleout(
    scale: int = DEFAULT_SCALE,
    shard_counts=(2, 4),
    device: str = "pmem",
    seed: int = 42,
) -> BenchTable:
    """Sharded WiscSort vs single device on the same 40M-record workload."""
    n = 40_000_000 // scale
    fmt = SORTBENCH_FMT

    machine = Machine(profile=get_profile(device)())
    data = generate_dataset(machine, "input", n, fmt, seed=seed)
    single = create_system("wiscsort", fmt).run(machine, data)
    reference = machine.fs.open(single.output_name).peek()

    table = BenchTable(
        title=f"Scale-out: sharded WiscSort on {device} ({n} records)",
        headers=["shards", "total (ms)", "shuffle busy (ms)", "speedup"],
    )
    table.add_row("1 (single)", _fmt_ms(single.total_time), "-", "1.00x")

    for n_shards in shard_counts:
        cluster = Cluster(shards=n_shards, profile=get_profile(device)())
        sharded_input = generate_cluster_dataset(
            cluster, "input", n, fmt, seed=seed
        )
        system = ShardedWiscSort(fmt)
        result = system.run(cluster, sharded_input)
        merged = np.concatenate(
            [
                cluster.shards[d].fs.open(f"{system.output_name}.shard{d}").peek()
                for d in range(n_shards)
                if cluster.shards[d].fs.open(f"{system.output_name}.shard{d}").size
            ]
        )
        if not np.array_equal(merged, reference):
            raise ValidationError(
                f"{n_shards}-shard output is not byte-identical to the "
                f"single-device output"
            )
        shuffle = (
            result.phase("SHUFFLE plan")
            + result.phase("SHUFFLE partition")
            + result.phase("SHUFFLE read")
            + result.phase("SHUFFLE write")
        )
        table.add_row(
            str(n_shards),
            _fmt_ms(result.total_time),
            _fmt_ms(shuffle),
            f"{speedup(single.total_time, result.total_time):.2f}x",
        )
    table.add_note(
        "every sharded output verified byte-identical to the single-device "
        "sort (stable ties included)"
    )
    table.add_note(
        "shuffle time is per-device busy time summed across shards; it "
        "overlaps the per-shard sorts' wall clock"
    )
    return table
