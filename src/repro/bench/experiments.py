"""Reproductions of every table and figure in the paper's evaluation.

Scale note: record counts are the paper's divided by ``scale`` (default
1000; e.g. Fig 7's 400M records run as 400k).  Simulated seconds scale
down by the same factor, so all ratios are directly comparable to the
paper's.  Reported times in the tables are *simulated* seconds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.base import ConcurrencyModel, SortConfig, SortResult
from repro.device.profile import DeviceProfile
from repro.device.profiles import (
    bard_device_profile,
    bd_device_profile,
    brd_device_profile,
    dram_profile,
    pmem_profile,
)
from repro.machine import Machine
from repro.metrics.efficiency import io_efficiency_rows
from repro.metrics.report import BenchTable
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.registry import get_system, register_experiment
from repro.units import GiB, MiB
from repro.workloads.background import BackgroundClients
from repro.workloads.datasets import DEFAULT_SCALE, sortbenchmark_records_for_gb

#: The sortbenchmark record geometry used throughout the evaluation.
SORTBENCH_FMT = RecordFormat(key_size=10, value_size=90, pointer_size=5)


def _run_system(
    system,
    profile: DeviceProfile,
    n_records: int,
    fmt: RecordFormat = SORTBENCH_FMT,
    dram_budget: Optional[int] = None,
    seed: int = 42,
    background: Optional[Tuple[str, int]] = None,
    validate: bool = True,
) -> SortResult:
    """One sorting run on a fresh machine (optionally with bg clients)."""
    machine = Machine(profile=profile, dram_budget=dram_budget)
    input_file = generate_dataset(machine, "input", n_records, fmt, seed=seed)
    if background is not None:
        kind, clients = background
        if clients > 0:
            BackgroundClients(machine, clients, kind).start()
    result = system.run(machine, input_file, validate=validate)
    result.extras["machine"] = machine  # for resource-usage reporting
    return result


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


# ----------------------------------------------------------------------
# Figure 1 -- motivation: sorting approaches on PMEM (20 GB / 200M recs)
# ----------------------------------------------------------------------
@register_experiment("fig01")
def fig01_motivation(scale: int = DEFAULT_SCALE) -> BenchTable:
    """In-place sample sort vs external merge sort vs WiscSort on PMEM."""
    n = 200_000_000 // scale
    pmem = pmem_profile()
    dram = dram_profile(capacity=8 * GiB)
    results = {
        "in-place sample sort (PMEM)": _run_system(get_system("sample-sort")(SORTBENCH_FMT), pmem, n),
        "external merge sort": _run_system(get_system("ems")(SORTBENCH_FMT), pmem, n),
        "wiscsort": _run_system(get_system("wiscsort")(SORTBENCH_FMT), pmem, n),
        "in-place sample sort (DRAM)": _run_system(get_system("sample-sort")(SORTBENCH_FMT), dram, n),
    }
    table = BenchTable(
        title=f"Fig 1: sorting approaches on PMEM ({n} records, 10B/90B)",
        headers=["system", "time (ms, simulated)", "speedup vs sample sort"],
    )
    base = results["in-place sample sort (PMEM)"].total_time
    for name, result in results.items():
        table.add_row(name, _fmt_ms(result.total_time), f"{base / result.total_time:.2f}x")
    table.add_note("paper: EMS ~2x faster than in-place sample sort; WiscSort fastest")
    table.add_note("paper: in-place on DRAM ~10x faster than in-place on PMEM")
    return table


# ----------------------------------------------------------------------
# Table 1 -- BRAID-model compliance matrix
# ----------------------------------------------------------------------
#: (system, B, R, A, I, D) exactly as printed in the paper's Table 1.
COMPLIANCE_MATRIX: List[Tuple[str, bool, bool, bool, bool, bool]] = [
    ("external merge sort (naive)", False, False, False, False, False),
    ("in-place sample sort", True, True, False, False, False),
    ("external merge sort", False, False, False, True, True),
    ("modified-key sort", False, False, True, False, False),
    ("pmsort", True, False, True, False, False),
    ("wiscsort", True, True, True, True, True),
]


@register_experiment("tab01")
def tab01_compliance() -> BenchTable:
    """The BRAID compliance matrix (Table 1)."""
    table = BenchTable(
        title="Table 1: sorting systems' compliance with the BRAID model",
        headers=["system", "B", "R", "A", "I", "D"],
    )
    for name, *flags in COMPLIANCE_MATRIX:
        table.add_row(name, *("yes" if f else "-" for f in flags))
    return table


# ----------------------------------------------------------------------
# Figure 4 -- sortbenchmark scaling (40..200 GB)
# ----------------------------------------------------------------------
#: Phase tags in Fig 4's legend order.
FIG4_PHASES = [
    "RUN read", "RUN sort", "RUN other", "RUN write",
    "MERGE read", "MERGE other", "RECORD read", "MERGE write",
]


@register_experiment("fig04")
def fig04_sortbenchmark(
    scale: int = DEFAULT_SCALE,
    paper_gbs: Tuple[float, ...] = (40, 80, 120, 160, 200),
) -> BenchTable:
    """EMS vs WiscSort across input sizes, with phase breakdowns.

    DRAM is capped at the scaled equivalent of the paper's 20 GB, so
    IndexMaps of inputs beyond ~140 GB no longer fit and WiscSort
    switches to MergePass -- the same knee as the paper's setup.
    """
    pmem = pmem_profile()
    dram_budget = int(20 * 1e9) // scale
    table = BenchTable(
        title="Fig 4: sortbenchmark, EMS vs WiscSort (times in simulated ms)",
        headers=["paper GB", "system", "pass", "total"] + FIG4_PHASES + ["speedup"],
    )
    for gb in paper_gbs:
        n = sortbenchmark_records_for_gb(gb, scale)
        ems = _run_system(
            get_system("ems")(SORTBENCH_FMT), pmem, n, dram_budget=dram_budget
        )
        wisc_system = get_system("wiscsort")(SORTBENCH_FMT)
        wisc = _run_system(wisc_system, pmem, n, dram_budget=dram_budget)
        for label, result, passname, speed in (
            ("ems", ems, "run+merge", ""),
            (
                "wiscsort",
                wisc,
                "merge" if wisc_system.used_merge_pass else "one",
                f"{ems.total_time / wisc.total_time:.2f}x",
            ),
        ):
            table.add_row(
                gb,
                label,
                passname,
                _fmt_ms(result.total_time),
                *[_fmt_ms(result.phase(p)) for p in FIG4_PHASES],
                speed,
            )
    table.add_note("paper: OnePass ~3x and MergePass ~2x faster than EMS")
    return table


# ----------------------------------------------------------------------
# Figures 5 & 6 -- resource usage / bandwidth / I/O efficiency
# ----------------------------------------------------------------------
def _resource_table(title: str, results: Dict[str, SortResult]) -> BenchTable:
    from repro.metrics.timeline import render_timeline

    table = BenchTable(
        title=title,
        headers=[
            "system", "tag", "busy ms", "internal MB",
            "peak-class eff.", "mean cores",
        ],
    )
    for name, result in results.items():
        machine = result.extras["machine"]
        for tag, _gb, _ideal, eff in io_efficiency_rows(machine):
            stats = machine.stats.tags[tag]
            table.add_row(
                name,
                tag,
                _fmt_ms(stats.busy_time),
                f"{stats.internal_bytes / 1e6:.1f}",
                f"{eff * 100:.0f}%",
                f"{machine.stats.mean_cores():.1f}",
            )
    for name, result in results.items():
        machine = result.extras["machine"]
        table.add_note(f"timeline [{name}]:")
        for line in render_timeline(machine).splitlines():
            table.add_note("  " + line)
    return table


@register_experiment("fig05")
def fig05_resources_onepass(scale: int = DEFAULT_SCALE) -> BenchTable:
    """EMS vs WiscSort OnePass resource usage for a 40 GB sort."""
    n = sortbenchmark_records_for_gb(40, scale)
    pmem = pmem_profile()
    results = {
        "ems": _run_system(get_system("ems")(SORTBENCH_FMT), pmem, n),
        "wiscsort-onepass": _run_system(get_system("wiscsort")(SORTBENCH_FMT), pmem, n),
    }
    table = _resource_table(
        "Fig 5: resource usage, EMS vs OnePass (40 GB scaled)", results
    )
    table.add_note("paper: every I/O op runs near its access-class peak bandwidth")
    table.add_note(
        f"totals: ems={_fmt_ms(results['ems'].total_time)}ms, "
        f"onepass={_fmt_ms(results['wiscsort-onepass'].total_time)}ms"
    )
    return table


@register_experiment("fig06")
def fig06_resources_mergepass(scale: int = DEFAULT_SCALE) -> BenchTable:
    """EMS vs WiscSort MergePass resource usage for a 160 GB sort."""
    n = sortbenchmark_records_for_gb(160, scale)
    pmem = pmem_profile()
    dram_budget = int(20 * 1e9) // scale
    config = SortConfig(read_buffer=12 * MiB, write_buffer=5 * MiB)
    results = {
        "ems": _run_system(
            get_system("ems")(SORTBENCH_FMT), pmem, n, dram_budget=dram_budget
        ),
        "wiscsort-mergepass": _run_system(
            get_system("wiscsort")(SORTBENCH_FMT, config=config),
            pmem, n, dram_budget=dram_budget,
        ),
    }
    table = _resource_table(
        "Fig 6: resource usage, EMS vs MergePass (160 GB scaled)", results
    )
    ems_mr = results["ems"].phase("MERGE read")
    wisc_mr = results["wiscsort-mergepass"].phase("MERGE read")
    if wisc_mr > 0:
        table.add_note(
            f"MERGE read: ems/{'wiscsort'}={ems_mr / wisc_mr:.1f}x "
            "(paper: ~7x smaller for MergePass)"
        )
    return table


# ----------------------------------------------------------------------
# Figure 7 -- concurrency & interference optimisations (400M records)
# ----------------------------------------------------------------------
@register_experiment("fig07")
def fig07_concurrency(scale: int = DEFAULT_SCALE) -> BenchTable:
    """All systems under all concurrency models (Fig 7)."""
    n = 400_000_000 // scale
    pmem = pmem_profile()
    dram_budget = int(20 * 1e9) // scale  # forces WiscSort MergePass variants
    chunk = max(1, n // 4)

    def ws(model: ConcurrencyModel, merge: bool) -> WiscSort:
        return get_system("wiscsort")(
            SORTBENCH_FMT,
            config=SortConfig(concurrency=model),
            force_merge_pass=merge,
            merge_chunk_entries=chunk if merge else None,
        )

    systems = [
        ("ems no-sync", get_system("ems")(
            SORTBENCH_FMT, config=SortConfig(concurrency=ConcurrencyModel.NO_SYNC))),
        ("ems no-io-overlap", get_system("ems")(SORTBENCH_FMT)),
        ("pmsort single-thread", get_system("pmsort")(SORTBENCH_FMT)),
        ("pmsort+ no-sync", get_system("pmsort+")(
            SORTBENCH_FMT, config=SortConfig(concurrency=ConcurrencyModel.NO_SYNC))),
        ("pmsort+ io-overlap", get_system("pmsort+")(
            SORTBENCH_FMT, config=SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP))),
        ("wiscsort-mp no-sync", ws(ConcurrencyModel.NO_SYNC, True)),
        ("wiscsort-mp io-overlap", ws(ConcurrencyModel.IO_OVERLAP, True)),
        ("wiscsort-mp no-io-overlap", ws(ConcurrencyModel.NO_IO_OVERLAP, True)),
        ("wiscsort onepass", ws(ConcurrencyModel.NO_IO_OVERLAP, False)),
    ]
    table = BenchTable(
        title=f"Fig 7: concurrency models ({n} records of 100B)",
        headers=["system", "time (ms)", "vs pmsort single"],
    )
    results: Dict[str, SortResult] = {}
    for name, system in systems:
        results[name] = _run_system(system, pmem, n, dram_budget=dram_budget)
    base = results["pmsort single-thread"].total_time
    for name in results:
        t = results[name].total_time
        table.add_row(name, _fmt_ms(t), f"{base / t:.2f}x")
    table.add_note("paper: no-io-overlap best in every family; OnePass ~7x and "
                   "MergePass ~4x faster than single-threaded PMSort")
    return table


# ----------------------------------------------------------------------
# Figure 8 -- key-value splitting benefit vs value size (400M records)
# ----------------------------------------------------------------------
@register_experiment("fig08")
def fig08_kv_split(
    scale: int = DEFAULT_SCALE,
    value_sizes: Tuple[int, ...] = (10, 50, 90, 256, 502),
) -> BenchTable:
    """EMS vs OnePass vs MergePass across V:K ratios."""
    n = 400_000_000 // scale
    pmem = pmem_profile()
    table = BenchTable(
        title=f"Fig 8: key-value split benefit ({n} records, 10B key, varying V)",
        headers=["value B", "ems ms", "onepass ms", "mergepass ms",
                 "onepass speedup", "mergepass speedup"],
    )
    for v in value_sizes:
        fmt = RecordFormat(key_size=10, value_size=v, pointer_size=5)
        ems = _run_system(get_system("ems")(fmt), pmem, n, fmt=fmt)
        one = _run_system(get_system("wiscsort")(fmt), pmem, n, fmt=fmt)
        merge = _run_system(
            get_system("wiscsort")(fmt, force_merge_pass=True, merge_chunk_entries=max(1, n // 4)),
            pmem, n, fmt=fmt,
        )
        table.add_row(
            v,
            _fmt_ms(ems.total_time),
            _fmt_ms(one.total_time),
            _fmt_ms(merge.total_time),
            f"{ems.total_time / one.total_time:.2f}x",
            f"{ems.total_time / merge.total_time:.2f}x",
        )
    table.add_note("paper: OnePass wins at every V:K; MergePass wins iff V:K > 1")
    return table


# ----------------------------------------------------------------------
# Figure 9 -- IndexMap load: strided vs sequential (400M records)
# ----------------------------------------------------------------------
@register_experiment("fig09")
def fig09_strided_vs_seq(
    scale: int = DEFAULT_SCALE,
    value_sizes: Tuple[int, ...] = (10, 50, 90, 256, 502),
) -> BenchTable:
    """Time to build the IndexMap: strided key gather vs sequential load.

    The "sequential" competitor models PMSort's approach: stream whole
    records into DRAM, then gather keys+pointers in memory.
    """
    n = 400_000_000 // scale
    pmem = pmem_profile()
    table = BenchTable(
        title=f"Fig 9: IndexMap load, strided vs sequential ({n} records)",
        headers=["value B", "strided ms", "sequential ms", "strided speedup"],
    )
    for v in value_sizes:
        fmt = RecordFormat(key_size=10, value_size=v, pointer_size=5)

        def timed(job_builder) -> float:
            machine = Machine(profile=pmem)
            f = generate_dataset(machine, "input", n, fmt, seed=13)
            machine.run(job_builder(machine, f))
            return machine.now

        def strided_job(machine, f):
            def job():
                yield f.read_strided(
                    0, n, fmt.record_size, fmt.key_size,
                    tag="strided load", threads=32,
                )
            return job()

        def sequential_job(machine, f):
            def job():
                yield f.read(0, f.size, tag="sequential load", threads=16)
                # In-DRAM gather of keys+pointers from the record buffer.
                yield machine.copy(n * fmt.key_size, tag="gather", cores=16)
            return job()

        t_strided = timed(strided_job)
        t_seq = timed(sequential_job)
        table.add_row(
            v, _fmt_ms(t_strided), _fmt_ms(t_seq), f"{t_seq / t_strided:.2f}x"
        )
    table.add_note("paper: strided gather wins at every V:K, up to ~3x at V=502")
    return table


# ----------------------------------------------------------------------
# Figure 10 -- background I/O interference (400M records)
# ----------------------------------------------------------------------
@register_experiment("fig10")
def fig10_interference(
    scale: int = DEFAULT_SCALE,
    client_counts: Tuple[int, ...] = (0, 1, 2, 4, 8),
) -> BenchTable:
    """Slowdown of WiscSort/EMS under background 4KiB readers/writers."""
    n = 400_000_000 // scale
    pmem = pmem_profile()
    table = BenchTable(
        title=f"Fig 10: background interference ({n} records of 100B)",
        headers=["kind", "clients", "wiscsort ms", "wiscsort slowdown",
                 "ems ms", "ems slowdown"],
    )
    baselines: Dict[str, float] = {}
    for kind in ("read", "write"):
        for clients in client_counts:
            wisc = _run_system(
                get_system("wiscsort")(SORTBENCH_FMT), pmem, n, background=(kind, clients)
            )
            ems = _run_system(
                get_system("ems")(SORTBENCH_FMT), pmem, n, background=(kind, clients)
            )
            if clients == 0:
                baselines[f"wisc-{kind}"] = wisc.total_time
                baselines[f"ems-{kind}"] = ems.total_time
            table.add_row(
                kind,
                clients,
                _fmt_ms(wisc.total_time),
                f"{wisc.total_time / baselines[f'wisc-{kind}']:.2f}x",
                _fmt_ms(ems.total_time),
                f"{ems.total_time / baselines[f'ems-{kind}']:.2f}x",
            )
    table.add_note("paper: background writers hurt far more than readers; "
                   "WiscSort stays ~2x faster than EMS throughout")
    return table


# ----------------------------------------------------------------------
# Figure 11 -- emulated future BRAID devices (100M records)
# ----------------------------------------------------------------------
FIG11_DEVICES: Dict[str, Callable[[], DeviceProfile]] = {
    "bd-device": bd_device_profile,
    "brd-device": brd_device_profile,
    "bard-device": bard_device_profile,
}


@register_experiment("fig11")
def fig11_future_devices(
    scale: int = DEFAULT_SCALE,
    devices: Tuple[str, ...] = ("bd-device", "brd-device", "bard-device"),
) -> BenchTable:
    """Sorting strategy comparison on the Sec 4.5 emulated devices."""
    n = 100_000_000 // scale
    table = BenchTable(
        title=f"Fig 11: future BRAID devices ({n} records of 100B)",
        headers=["device", "system", "time (ms)"],
    )
    for device_name in devices:
        profile = FIG11_DEVICES[device_name]()
        chunk = max(1, n // 4)
        systems = [
            ("sample sort", get_system("sample-sort")(SORTBENCH_FMT)),
            ("ems", get_system("ems")(SORTBENCH_FMT)),
            ("wiscsort onepass", get_system("wiscsort")(SORTBENCH_FMT)),
            ("wiscsort mergepass", get_system("wiscsort")(
                SORTBENCH_FMT, force_merge_pass=True, merge_chunk_entries=chunk)),
            ("wiscsort mergepass io-overlap", get_system("wiscsort")(
                SORTBENCH_FMT,
                config=SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP),
                force_merge_pass=True, merge_chunk_entries=chunk)),
        ]
        for sys_name, system in systems:
            result = _run_system(system, profile, n)
            table.add_row(device_name, sys_name, _fmt_ms(result.total_time))
    table.add_note("paper 11a (BD): EMS best, WiscSort pays for random reads")
    table.add_note("paper 11b (BRD): OnePass best; sample sort beats EMS & MergePass")
    table.add_note("paper 11c (BARD): writes dominate; OnePass lowest, EMS ~2x WiscSort")
    return table
