"""Experiment harness: one entry per paper table/figure.

Each ``fig*``/``tab*`` function builds the workload, runs the systems,
and returns a :class:`~repro.metrics.report.BenchTable` with the same
rows/series the paper reports.  The ``benchmarks/`` pytest modules print
these tables and assert the paper's qualitative shape.
"""

from repro.bench.ablations import (
    ablation_buffer_size,
    ablation_natural_runs,
    ablation_compression,
    ablation_dram_budget,
    ablation_merge_fanin,
    ablation_pointer_size,
    ablation_write_pool,
)
from repro.bench.experiments import (
    fig01_motivation,
    fig04_sortbenchmark,
    fig05_resources_onepass,
    fig06_resources_mergepass,
    fig07_concurrency,
    fig08_kv_split,
    fig09_strided_vs_seq,
    fig10_interference,
    fig11_future_devices,
    tab01_compliance,
)
from repro.bench.scaleout import cluster_scaleout

__all__ = [
    "cluster_scaleout",
    "ablation_buffer_size",
    "ablation_natural_runs",
    "ablation_compression",
    "ablation_dram_budget",
    "ablation_merge_fanin",
    "ablation_pointer_size",
    "ablation_write_pool",
    "fig01_motivation",
    "fig04_sortbenchmark",
    "fig05_resources_onepass",
    "fig06_resources_mergepass",
    "fig07_concurrency",
    "fig08_kv_split",
    "fig09_strided_vs_seq",
    "fig10_interference",
    "fig11_future_devices",
    "tab01_compliance",
]
