"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still blocked."""


class StorageError(ReproError):
    """Invalid operation against the simulated filesystem or a file."""


class FileNotFoundInSimError(StorageError):
    """The named simulated file does not exist."""


class FileExistsInSimError(StorageError):
    """A simulated file with that name already exists."""


class OutOfSpaceError(StorageError):
    """The simulated device has no capacity left for the request."""


class DramBudgetError(ReproError):
    """A DRAM allocation exceeded the configured budget."""


class RecordFormatError(ReproError):
    """Malformed record data or inconsistent record geometry."""


class ValidationError(ReproError):
    """Sort-output validation (valsort) failed."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""
