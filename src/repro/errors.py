"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still blocked."""


class StorageError(ReproError):
    """Invalid operation against the simulated filesystem or a file."""


class FileNotFoundInSimError(StorageError):
    """The named simulated file does not exist."""


class FileExistsInSimError(StorageError):
    """A simulated file with that name already exists."""


class OutOfSpaceError(StorageError):
    """The simulated device has no capacity left for the request.

    Carries ``requested`` and ``available`` byte counts so callers (and
    error messages) can report exactly how far over budget the request
    was.  ``transient`` marks injector-scripted ENOSPC bursts that a
    bounded-retry policy may retry; genuine capacity exhaustion is
    permanent.
    """

    def __init__(
        self,
        message: str,
        requested: int = 0,
        available: int = 0,
        transient: bool = False,
    ):
        super().__init__(message)
        self.requested = requested
        self.available = available
        self.transient = transient


class DramBudgetError(ReproError):
    """A DRAM allocation exceeded the configured budget."""


class RecordFormatError(ReproError):
    """Malformed record data or inconsistent record geometry."""


class ValidationError(ReproError):
    """Sort-output validation (valsort) failed."""


class ConfigError(ReproError, ValueError):
    """Invalid or inconsistent configuration values.

    Also a :class:`ValueError`: bad parameter values (negative windows,
    zero factors, malformed specs) are value errors by Python
    convention, so callers outside the library can catch them without
    importing the repro hierarchy.
    """


class SchemaMismatchError(ConfigError):
    """Two JSON reports cannot be compared (``repro trace-diff``).

    Raised when a document lacks the ``"schema"`` version stamp, when
    the two documents' schema versions disagree, or when their document
    kinds differ (an analysis report against a selfperf baseline).
    """


class UnknownSystemError(ConfigError):
    """A name was looked up in a :mod:`repro.registry` that has no entry.

    Raised for unknown sorting systems, experiments and device profiles
    alike; the message always lists the valid choices so callers (and
    CLI users) see what is available without a second lookup.
    """

    def __init__(self, name: str, kind: str = "system", choices: tuple = ()):
        self.name = name
        self.kind = kind
        self.choices = tuple(choices)
        listing = ", ".join(self.choices) if self.choices else "<none registered>"
        super().__init__(f"unknown {kind} {name!r}; choices: {listing}")


class FaultError(ReproError):
    """Base class for simulated device/media faults (:mod:`repro.faults`).

    ``transient`` declares whether a bounded-retry policy may retry the
    failed operation (transient bandwidth collapse, ENOSPC bursts) or
    must escalate immediately (uncorrectable media errors).
    """

    #: Whether retrying the operation can possibly succeed.
    transient: bool = False


class MediaReadError(FaultError):
    """An uncorrectable media error (poisoned line) on a read.

    Permanent: the affected extent cannot be read back no matter how
    often the request is retried, so the retry layer escalates it
    immediately after charging the failed attempt to the device.
    """

    transient = False


class TornWriteError(FaultError):
    """A write persisted only a prefix of its payload.

    Raised in two situations: (a) by the injector when a scripted torn
    write fails mid-flight (the durable prefix stays on media and the
    caller may retry the full write), and (b) by crash recovery when a
    file's durable size does not match its manifest entry, i.e. a crash
    interrupted the write.
    """

    transient = True

    def __init__(self, message: str, durable_bytes: int = 0, expected_bytes: int = 0):
        super().__init__(message)
        self.durable_bytes = durable_bytes
        self.expected_bytes = expected_bytes


class TransientDeviceError(FaultError):
    """A transient device failure (interference, controller hiccup).

    Retryable: the retry layer backs off in simulated time and reissues
    the operation, which typically succeeds.
    """

    transient = True


class SimulatedCrash(FaultError):
    """The machine lost power at a scripted point in the simulation.

    In-flight writes are torn down to their durable prefix and the
    exception unwinds the whole event loop.  Callers recover by
    ``Machine.reboot()`` followed by the sorting system's ``recover()``
    entry point (see :mod:`repro.faults.harness`).
    """

    transient = False

    def __init__(
        self,
        message: str,
        at_time: float = 0.0,
        at_op: int = -1,
        domain: "str | None" = None,
    ):
        super().__init__(message)
        self.at_time = at_time
        self.at_op = at_op
        #: Cluster shard domain that crashed (None for standalone machines).
        self.domain = domain


class RetryExhaustedError(FaultError):
    """A transient fault persisted past the retry policy's attempt budget."""

    transient = False

    def __init__(self, message: str, attempts: int = 0, last_fault: Exception | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_fault = last_fault


class RecoveryError(ReproError):
    """Crash recovery could not restore a resumable state."""


class SanitizerError(ReproError):
    """An invariant checked by :mod:`repro.analysis.sanitizer` was violated."""


class ChargeDriftError(SanitizerError):
    """Bytes moved at the storage layer drifted from bytes charged to the
    device model (or a raw, uncharged byte move happened mid-run)."""


class DeterminismError(SanitizerError):
    """Two runs of the same seeded workload produced different event traces."""


class RaceError(SanitizerError):
    """Conflicting same-instant byte-range accesses with no happens-before
    ordering were observed by :class:`repro.analysis.race.RaceDetector`."""


class ScheduleDivergenceError(DeterminismError):
    """A legal same-instant schedule permutation changed the output bytes
    (see :func:`repro.analysis.race.schedule_fuzz`)."""
