"""A simulated file on a BRAID device.

Data movement is performed eagerly with numpy (correctness), while the
returned :class:`~repro.sim.fluid.FluidOp` carries the timing cost the
issuing process must ``yield``.  The read ops hand their payload back as
the resume value, so simulated threads read naturally::

    data = yield simfile.read(0, 4096, tag="RUN read")

Pooled operations: ``threads=N`` tells the rate model the op stands for
N device threads working in parallel, which is how the sort
implementations express thread-pool-sized I/O without spawning N
simulated processes per buffer.

Fault injection: when the owning filesystem carries an *armed*
:class:`~repro.faults.injector.FaultInjector`, every timed operation is
routed through it -- the injector may return the plain op (no fault), a
retrying command object (transient faults, backoff in simulated time),
or raise (crash / permanent media error).  With no injector, or an
installed-but-empty one, the fast path below is taken and behaviour is
bit-identical to a fault-free build.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.device.profile import Pattern
from repro.errors import StorageError
from repro.sim.fluid import FluidOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.filesystem import SimFS

#: Shared no-op context for the audit hooks below: ``nullcontext`` is
#: reentrant and stateless, so one instance serves every unaudited op.
_NO_AUDIT = nullcontext()

_ARANGE_MEMO: dict = {}


def _arange(n: int) -> np.ndarray:
    """Shared ``np.arange(n)`` for the fixed access sizes gathers use."""
    a = _ARANGE_MEMO.get(n)
    if a is None:
        a = np.arange(n, dtype=np.int64)
        a.setflags(write=False)
        _ARANGE_MEMO[n] = a
    return a


class SimFile:
    """A growable byte file stored on a simulated device."""

    def __init__(self, fs: "SimFS", name: str):
        self._fs = fs
        self.name = name
        self._data = np.zeros(0, dtype=np.uint8)
        self.size = 0

    # ------------------------------------------------------------------
    # Raw (untimed) access, for test fixtures and validation only
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0, nbytes: int | None = None) -> np.ndarray:
        """Untimed read of file contents (no device cost charged)."""
        if nbytes is None:
            nbytes = self.size - offset
        self._check_extent(offset, nbytes)
        aud = self._fs.audit
        if aud is not None:
            aud.note_raw(self.name, "peek", nbytes)
        return self._data[offset : offset + nbytes].copy()

    def poke(self, offset: int, data: np.ndarray | bytes) -> None:
        """Untimed write (workload generation / fixtures)."""
        arr = _as_u8(data)
        aud = self._fs.audit
        if aud is not None:
            aud.note_raw(self.name, "poke", arr.size)
        new_size = max(self.size, offset + arr.size)
        if new_size > self.size:
            self._fs.charge_growth(new_size - self.size, name=self.name)
        self._ensure_capacity(new_size)
        self._data[offset : offset + arr.size] = arr
        self.size = new_size

    def truncate(self, new_size: int) -> None:
        """Discard bytes past ``new_size`` (torn-write rollback, recovery).

        Released capacity is returned to the filesystem; the zeroed tail
        stays allocated in the backing array (it is simulator memory, not
        simulated device space).
        """
        if new_size < 0 or new_size > self.size:
            raise StorageError(
                f"cannot truncate {self.name!r} (size {self.size}) to {new_size}"
            )
        if new_size == self.size:
            return
        self._data[new_size : self.size] = 0
        self._fs.release(self.size - new_size)
        self.size = new_size

    # ------------------------------------------------------------------
    # Timed operations (yield the returned op from a simulated thread)
    # ------------------------------------------------------------------
    def read(
        self, offset: int, nbytes: int, tag: str, threads: int = 1
    ) -> FluidOp:
        """Sequential read; resumes with a copy of the bytes."""
        self._check_extent(offset, nbytes)
        det = self._fs.race
        if det is not None:
            det.note_span(self, "r", offset, nbytes)
        inj = self._fs.injector
        if inj is not None and inj.armed:
            return inj.issue_read(
                self,
                nbytes,
                tag,
                lambda: self._build_read(offset, nbytes, tag, threads),
            )
        return self._build_read(offset, nbytes, tag, threads)

    def _build_read(self, offset: int, nbytes: int, tag: str, threads: int) -> FluidOp:
        with self._audit("read", nbytes):
            payload = self._data[offset : offset + nbytes].copy()
            op = self._machine_io("read", Pattern.SEQ, nbytes, tag, threads=threads)
        op.on_complete = lambda _op: payload
        return op

    def write(
        self, offset: int, data: np.ndarray | bytes, tag: str, threads: int = 1
    ) -> FluidOp:
        """Sequential write at ``offset`` (extends the file if needed)."""
        arr = _as_u8(data)
        det = self._fs.race
        if det is not None:
            # Logged at issue time (eager data movement): retries by an
            # armed injector re-move the same bytes, not a new access.
            det.note_span(self, "w", offset, arr.size)
        inj = self._fs.injector
        if inj is not None and inj.armed:
            return inj.issue_write(self, offset, arr, tag, threads)
        with self._audit("write", arr.size):
            self.poke(offset, arr)
            return self._machine_io("write", Pattern.SEQ, arr.size, tag, threads=threads)

    def append(self, data: np.ndarray | bytes, tag: str, threads: int = 1) -> FluidOp:
        """Sequential write at the current end of file."""
        return self.write(self.size, data, tag, threads=threads)

    def read_strided(
        self,
        offset: int,
        count: int,
        stride: int,
        access_size: int,
        tag: str,
        threads: int = 1,
    ) -> FluidOp:
        """Gather ``count`` fixed-size fields at a regular stride.

        This is WiscSort's key gather: only ``count * access_size`` user
        bytes cross the bus, while the device pays the calibrated
        strided-gather cost.  Resumes with a ``(count, access_size)``
        uint8 matrix.
        """
        if count == 0:
            payload = np.zeros((0, access_size), dtype=np.uint8)
            with self._audit("read", 0):
                op = self._machine_io(
                    "read", Pattern.STRIDED, 0, tag, accesses=1, stride=stride, threads=threads
                )
            op.on_complete = lambda _op: payload
            return op
        if stride < access_size:
            raise StorageError("stride smaller than access size")
        last = offset + (count - 1) * stride + access_size
        self._check_extent(offset, last - offset)
        det = self._fs.race
        if det is not None:
            det.note_batch(self, "r", offset + _arange(count) * stride, access_size)

        def build() -> FluidOp:
            with self._audit("read", count * access_size):
                starts = offset + _arange(count) * stride
                payload = self._data[starts[:, None] + _arange(access_size)]
                op = self._machine_io(
                    "read",
                    Pattern.STRIDED,
                    count * access_size,
                    tag,
                    accesses=count,
                    stride=stride,
                    threads=threads,
                )
            op.on_complete = lambda _op: payload
            return op

        inj = self._fs.injector
        if inj is not None and inj.armed:
            return inj.issue_read(self, count * access_size, tag, build)
        return build()

    def read_gather(
        self,
        offsets: np.ndarray | Sequence[int],
        access_size: int,
        tag: str,
        threads: int = 1,
    ) -> FluidOp:
        """Random reads of fixed-size records at arbitrary offsets.

        Resumes with a ``(len(offsets), access_size)`` uint8 matrix in
        the order of ``offsets``.
        """
        starts = np.asarray(offsets, dtype=np.int64)
        if starts.size == 0:
            payload = np.zeros((0, access_size), dtype=np.uint8)
            with self._audit("read", 0):
                op = self._machine_io("read", Pattern.RAND, 0, tag, threads=threads)
            op.on_complete = lambda _op: payload
            return op
        if starts.min() < 0 or int(starts.max()) + access_size > self.size:
            raise StorageError(
                f"gather outside file {self.name!r} (size {self.size})"
            )
        det = self._fs.race
        if det is not None:
            det.note_batch(self, "r", starts, access_size)

        def build() -> FluidOp:
            with self._audit("read", int(starts.size) * access_size):
                payload = self._data[starts[:, None] + _arange(access_size)]
                op = self._machine_io(
                    "read",
                    Pattern.RAND,
                    int(starts.size) * access_size,
                    tag,
                    accesses=int(starts.size),
                    threads=threads,
                )
            op.on_complete = lambda _op: payload
            return op

        inj = self._fs.injector
        if inj is not None and inj.armed:
            return inj.issue_read(self, int(starts.size) * access_size, tag, build)
        return build()

    def read_gather_var(
        self,
        offsets: np.ndarray | Sequence[int],
        lengths: np.ndarray | Sequence[int],
        tag: str,
        threads: int = 1,
    ) -> FluidOp:
        """Random reads of variable-length spans (KLV value gathers).

        Resumes with a single concatenated uint8 buffer in input order.
        """
        starts = np.asarray(offsets, dtype=np.int64)
        sizes = np.asarray(lengths, dtype=np.int64)
        if starts.shape != sizes.shape:
            raise StorageError("offsets and lengths must have equal shape")
        machine = self._fs.machine
        if starts.size == 0:
            with self._audit("read", 0):
                op = machine.io_raw(0.0, "read", Pattern.RAND, 0, tag, threads=threads)
            op.on_complete = lambda _op: np.zeros(0, dtype=np.uint8)
            return op
        ends = starts + sizes
        if starts.min() < 0 or int(ends.max()) > self.size:
            raise StorageError(f"variable gather outside file {self.name!r}")
        det = self._fs.race
        if det is not None:
            det.note_batch(self, "r", starts, sizes)

        def build() -> FluidOp:
            with self._audit("read", int(sizes.sum())):
                pieces = [self._data[s:e] for s, e in zip(starts, ends)]
                payload = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.uint8)
                work = machine.profile.random_batch_work(sizes)
                op = machine.io_raw(
                    work, "read", Pattern.RAND, int(sizes.sum()), tag, threads=threads
                )
            op.on_complete = lambda _op: payload
            return op

        inj = self._fs.injector
        if inj is not None and inj.armed:
            return inj.issue_read(self, int(sizes.sum()), tag, build)
        return build()

    # ------------------------------------------------------------------
    def _audit(self, direction: str, nbytes: int):
        """Charge-audit scope for one timed op (no-op unless auditing)."""
        aud = self._fs.audit
        return _NO_AUDIT if aud is None else aud.timed(direction, nbytes)

    def _machine_io(
        self,
        direction: str,
        pattern: Pattern,
        nbytes: int,
        tag: str,
        accesses: int = 1,
        stride: int = 0,
        threads: int = 1,
    ) -> FluidOp:
        return self._fs.machine.io(
            direction,
            pattern,
            nbytes,
            tag,
            accesses=accesses,
            stride=stride,
            threads=threads,
        )

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise StorageError(
                f"access [{offset}, {offset + nbytes}) outside file "
                f"{self.name!r} of size {self.size}"
            )

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._data.size:
            return
        new_cap = max(needed, self._data.size * 2, 4096)
        grown = np.zeros(new_cap, dtype=np.uint8)
        grown[: self._data.size] = self._data
        self._data = grown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimFile({self.name!r}, size={self.size})"


def _as_u8(data: np.ndarray | bytes) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
    return np.frombuffer(bytes(data), dtype=np.uint8)
