"""A flat simulated filesystem on one device.

Tracks used capacity against the device profile's ``capacity`` so that
experiments honour the paper's constraint that the dataset, IndexMap
files and output all fit on the BRAID device (Sec 2.5).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, List

from repro.errors import (
    FileExistsInSimError,
    FileNotFoundInSimError,
    OutOfSpaceError,
)
from repro.storage.file import SimFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


class SimFS:
    """Name -> :class:`SimFile` mapping with capacity accounting."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._files: Dict[str, SimFile] = {}
        self.used = 0
        #: Optional :class:`repro.faults.injector.FaultInjector`.  When
        #: installed *and armed*, every timed SimFile operation consults
        #: it; ``None`` (or an unarmed injector) is the zero-overhead
        #: fast path.
        self.injector = None
        #: Optional :class:`repro.analysis.sanitizer.ChargeAuditor`
        #: (installed by :meth:`repro.machine.Machine.install_sanitizer`).
        #: ``None`` is the zero-overhead fast path: SimFile consults it
        #: with a single attribute load per operation.
        self.audit = None
        #: Optional :class:`repro.analysis.race.RaceDetector` (installed
        #: by :meth:`repro.machine.Machine.install_race_detector`).  Same
        #: contract as ``audit``: every timed SimFile operation reports
        #: its byte ranges through one attribute load, ``None`` is free.
        self.race = None

    @contextmanager
    def unaudited(self, reason: str = ""):
        """Declare a raw (peek/poke) byte move as analytically charged.

        The charge auditor treats untimed access during a run as a
        charge-accounting violation; code that moves bytes raw *and*
        charges the device through an explicit analytic op (the
        sample-sort / PMSort / KLV-scan idiom) wraps the raw access in
        this context to vouch for it.  No-op when no auditor is
        installed.
        """
        aud = self.audit
        if aud is None:
            yield
            return
        aud.begin_exempt(reason)
        try:
            yield
        finally:
            aud.end_exempt()

    @property
    def capacity(self) -> int:
        return self.machine.profile.capacity

    def create(self, name: str) -> SimFile:
        """Create an empty file; fails if the name exists."""
        if name in self._files:
            raise FileExistsInSimError(name)
        f = SimFile(self, name)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInSimError(name) from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file and release its space."""
        f = self._files.pop(name, None)
        if f is None:
            raise FileNotFoundInSimError(name)
        self.used -= f.size

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new``, replacing any existing file.

        This is the checkpoint layer's commit primitive: a manifest is
        written to a temporary name and renamed over the live one, so a
        crash leaves either the old or the new manifest intact, never a
        torn mixture.  Modelled as a free metadata operation.
        """
        f = self._files.pop(old, None)
        if f is None:
            raise FileNotFoundInSimError(old)
        existing = self._files.pop(new, None)
        if existing is not None:
            self.used -= existing.size
        f.name = new
        self._files[new] = f

    def list(self) -> List[str]:
        return sorted(self._files)

    def charge_growth(self, nbytes: int, name: str = "") -> None:
        """Account for a file growing by ``nbytes`` (called by SimFile)."""
        if nbytes <= 0:
            return
        available = self.capacity - self.used
        if nbytes > available:
            where = f" growing {name!r}" if name else ""
            raise OutOfSpaceError(
                f"device full{where}: requested {nbytes} B but only "
                f"{available} B available (used {self.used} of "
                f"{self.capacity} B)",
                requested=nbytes,
                available=available,
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` of capacity (truncation / torn-write rollback)."""
        if nbytes < 0:
            raise OutOfSpaceError("cannot release negative bytes")
        self.used -= nbytes
