"""A flat simulated filesystem on one device.

Tracks used capacity against the device profile's ``capacity`` so that
experiments honour the paper's constraint that the dataset, IndexMap
files and output all fit on the BRAID device (Sec 2.5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import (
    FileExistsInSimError,
    FileNotFoundInSimError,
    OutOfSpaceError,
)
from repro.storage.file import SimFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


class SimFS:
    """Name -> :class:`SimFile` mapping with capacity accounting."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._files: Dict[str, SimFile] = {}
        self.used = 0

    @property
    def capacity(self) -> int:
        return self.machine.profile.capacity

    def create(self, name: str) -> SimFile:
        """Create an empty file; fails if the name exists."""
        if name in self._files:
            raise FileExistsInSimError(name)
        f = SimFile(self, name)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInSimError(name) from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file and release its space."""
        f = self._files.pop(name, None)
        if f is None:
            raise FileNotFoundInSimError(name)
        self.used -= f.size

    def list(self) -> List[str]:
        return sorted(self._files)

    def charge_growth(self, nbytes: int) -> None:
        """Account for a file growing by ``nbytes`` (called by SimFile)."""
        if nbytes <= 0:
            return
        if self.used + nbytes > self.capacity:
            raise OutOfSpaceError(
                f"device full: used {self.used} + {nbytes} > {self.capacity}"
            )
        self.used += nbytes
