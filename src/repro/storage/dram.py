"""DRAM budget accounting.

The paper limits available DRAM (e.g. to 20 GB) to force WiscSort into
MergePass for large inputs (Sec 4.1).  Sort implementations consult this
tracker to size buffers and to choose between OnePass and MergePass.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import DramBudgetError


class DramTracker:
    """Tracks DRAM allocations against an optional budget (bytes)."""

    def __init__(self, budget: Optional[int] = None):
        if budget is not None and budget <= 0:
            raise DramBudgetError("DRAM budget must be positive")
        self.budget = budget
        self.used = 0
        self.peak = 0
        #: Optional observer called as ``on_change(used)`` after every
        #: allocate/free; the tracing layer uses it for a DRAM counter
        #: track.  Observe-only.
        self.on_change = None
        #: Optional observer called as ``on_pressure(requested, used)``
        #: whenever :meth:`would_fit` rejects a reservation -- the
        #: signal behind the trace analyzer's DRAM-stall attribution.
        #: Observe-only.
        self.on_pressure = None

    @property
    def available(self) -> Optional[int]:
        """Remaining bytes, or None when unconstrained."""
        if self.budget is None:
            return None
        return self.budget - self.used

    def would_fit(self, nbytes: int) -> bool:
        if self.budget is None:
            return True
        fits = self.used + nbytes <= self.budget
        if not fits and self.on_pressure is not None:
            self.on_pressure(nbytes, self.used)
        return fits

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise DramBudgetError("cannot allocate negative bytes")
        if not self.would_fit(nbytes):
            raise DramBudgetError(
                f"DRAM budget exceeded: used {self.used} + {nbytes} > {self.budget}"
            )
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        if self.on_change is not None:
            self.on_change(self.used)

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.used:
            raise DramBudgetError(f"invalid free of {nbytes} (used {self.used})")
        self.used -= nbytes
        if self.on_change is not None:
            self.on_change(self.used)

    @contextmanager
    def reserve(self, nbytes: int) -> Iterator[None]:
        """Scoped allocation: frees on exit even if the body raises."""
        self.allocate(nbytes)
        try:
            yield
        finally:
            self.free(nbytes)
