"""Simulated storage stack: a filesystem of byte arrays on one device.

Files hold *real* bytes (numpy arrays) so sorting output can be
validated, while every read/write returns a timed
:class:`~repro.sim.fluid.FluidOp` that a simulated thread must ``yield``
to account for device time.
"""

from repro.storage.dram import DramTracker
from repro.storage.file import SimFile
from repro.storage.filesystem import SimFS

__all__ = ["SimFS", "SimFile", "DramTracker"]
