"""Wall-clock profiler and counter snapshots for the simulation kernel.

The simulator's own speed is a first-class concern (ROADMAP: larger
sortbenchmark configs are gated on it), so the kernel layers expose
cheap always-on counters:

* :class:`repro.sim.engine.Engine` -- process steps, clock advances,
  timer events, ops coalesced by ``batch_ops``;
* :class:`repro.sim.fluid.FluidScheduler` -- ops added/completed,
  re-rate calls, ops re-rated, effective rate changes;
* :class:`repro.device.device.BraidRateModel` -- rate-assignment
  memo hits/misses.

:func:`collect_counters` snapshots them all from a
:class:`~repro.machine.Machine`; :class:`SelfPerfProfiler` adds
per-phase wall timers; :func:`render_report` formats both for humans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class SelfPerfProfiler:
    """Accumulating per-phase wall-clock timers.

    Usage::

        prof = SelfPerfProfiler()
        with prof.phase("generate"):
            ...
        with prof.phase("sort"):
            ...
        print(render_report(machine, prof))

    Re-entering a phase name accumulates into the same bucket; phase
    order of first entry is preserved in reports.  Re-entering a name
    while it is still open (recursive helpers sharing a bucket) is
    nesting-safe: only the outermost entry owns the timer, so the
    overlapped wall time is counted once instead of per nesting level.
    """

    def __init__(self):
        self.phases: Dict[str, float] = {}
        self._order: List[str] = []
        self._open_depth: Dict[str, int] = {}
        self._open_start: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        depth = self._open_depth.get(name, 0)
        self._open_depth[name] = depth + 1
        if depth == 0:
            self._open_start[name] = time.perf_counter()
        try:
            yield
        finally:
            self._open_depth[name] -= 1
            if self._open_depth[name] == 0:
                del self._open_depth[name]
                elapsed = time.perf_counter() - self._open_start.pop(name)
                if name not in self.phases:
                    self._order.append(name)
                    self.phases[name] = elapsed
                else:
                    self.phases[name] += elapsed

    @property
    def total_wall(self) -> float:
        return sum(self.phases.values())

    def ordered_phases(self) -> List[tuple]:
        return [(name, self.phases[name]) for name in self._order]


def collect_counters(machine) -> Dict[str, float]:
    """Snapshot every self-performance counter of a machine's kernel.

    With a fault injector installed (:meth:`Machine.install_faults`) the
    snapshot grows ``fault_*`` entries -- retries, backoff, crashes,
    salvaged-vs-redone recovery bytes -- so fault-injected runs report
    their robustness overhead alongside the kernel counters.
    """
    engine = machine.engine
    fluid = engine.fluid
    model = machine.rate_model
    hits = getattr(model, "cache_hits", 0)
    misses = getattr(model, "cache_misses", 0)
    lookups = hits + misses
    counters = _base_counters(machine, engine, fluid, hits, misses, lookups)
    if machine.faults is not None:
        fs = machine.faults.stats
        counters.update(
            {
                "fault_ops_seen": fs.ops_seen,
                "fault_injected": fs.faults_injected,
                "fault_retries": fs.retries,
                "fault_backoff_seconds": fs.backoff_seconds,
                "fault_retries_exhausted": fs.exhausted,
                "fault_crashes": fs.crashes,
                "fault_recoveries": fs.recoveries,
                "fault_torn_writes": fs.torn_writes,
                "fault_torn_bytes_discarded": fs.torn_bytes_discarded,
                "fault_slow_windows": fs.slow_windows,
                "fault_salvaged_bytes": fs.salvaged_bytes,
                "fault_redone_bytes": fs.redone_bytes,
            }
        )
    return counters


def _base_counters(machine, engine, fluid, hits, misses, lookups) -> Dict[str, float]:
    solves = fluid.vector_solves
    return {
        "sim_seconds": engine.now,
        "engine_steps": engine.steps,
        "clock_advances": engine.advances,
        "timer_events": engine.timer_events,
        "batched_ops": engine.batched_ops,
        "ops_added": fluid.ops_added,
        "ops_completed": fluid.ops_completed,
        "rerate_calls": fluid.rerate_calls,
        "ops_rerated": fluid.ops_rerated,
        "rate_changes": fluid.rate_changes,
        "vector_solves": solves,
        "vector_batch_size_avg": (
            (fluid.vector_ops_solved / solves) if solves else 0.0
        ),
        "scalar_fallbacks": fluid.scalar_fallbacks,
        "intervals_observed": len(machine.stats.timeline),
        "rate_cache_hits": hits,
        "rate_cache_misses": misses,
        "rate_cache_hit_rate": (hits / lookups) if lookups else 0.0,
    }


def collect_cluster_counters(cluster) -> Dict[str, float]:
    """Snapshot kernel + per-shard counters of a whole cluster.

    Kernel counters (engine/fluid/timers) exist once -- shards share one
    engine -- and appear unprefixed, exactly as in
    :func:`collect_counters`.  Per-shard device/rate-model counters are
    namespaced ``"{domain}.{name}"`` (e.g. ``"shard0.rate_cache_hits"``)
    so a flat snapshot stays collision-free across shards.
    """
    engine = cluster.engine
    fluid = engine.fluid
    counters: Dict[str, float] = {
        "sim_seconds": engine.now,
        "engine_steps": engine.steps,
        "clock_advances": engine.advances,
        "timer_events": engine.timer_events,
        "batched_ops": engine.batched_ops,
        "ops_added": fluid.ops_added,
        "ops_completed": fluid.ops_completed,
        "rerate_calls": fluid.rerate_calls,
        "ops_rerated": fluid.ops_rerated,
        "rate_changes": fluid.rate_changes,
        "vector_solves": fluid.vector_solves,
        "vector_batch_size_avg": (
            (fluid.vector_ops_solved / fluid.vector_solves)
            if fluid.vector_solves
            else 0.0
        ),
        "scalar_fallbacks": fluid.scalar_fallbacks,
    }
    for shard in cluster.shards:
        model = shard.rate_model
        hits = getattr(model, "cache_hits", 0)
        misses = getattr(model, "cache_misses", 0)
        lookups = hits + misses
        prefix = shard.domain
        counters[f"{prefix}.intervals_observed"] = len(shard.stats.timeline)
        counters[f"{prefix}.rate_cache_hits"] = hits
        counters[f"{prefix}.rate_cache_misses"] = misses
        counters[f"{prefix}.rate_cache_hit_rate"] = (
            (hits / lookups) if lookups else 0.0
        )
        counters[f"{prefix}.device_bytes_read"] = (
            shard.stats.bytes_read_internal
        )
        counters[f"{prefix}.device_bytes_written"] = (
            shard.stats.bytes_written_internal
        )
    counters["ops_cancelled"] = fluid.ops_cancelled
    counters["shuffle_bytes_network"] = (
        cluster.net_stats.bytes_total if cluster.net_stats is not None else 0.0
    )
    if cluster.faults is not None:
        # Includes shards_recovered / speculative_issues / speculative_wins
        # plus the per-shard injector ledgers.
        counters.update(cluster.faults.as_dict())
    return counters


def render_report(
    machine, profiler: Optional[SelfPerfProfiler] = None
) -> str:
    """Human-readable self-performance report for one machine run."""
    c = collect_counters(machine)
    lines = ["simulator self-performance"]
    lines.append(f"  simulated time : {c['sim_seconds']:.6f} s")
    lines.append(
        "  engine         : "
        f"{c['engine_steps']} steps, {c['clock_advances']} advances, "
        f"{c['timer_events']} timer events"
    )
    lines.append(
        "  fluid ops      : "
        f"{c['ops_added']} added, {c['ops_completed']} completed, "
        f"{c['batched_ops']} coalesced"
    )
    lines.append(
        "  re-rating      : "
        f"{c['rerate_calls']} calls, {c['ops_rerated']} op-rerates, "
        f"{c['rate_changes']} rate changes"
    )
    if c["vector_solves"]:
        lines.append(
            "  vector kernel  : "
            f"{c['vector_solves']} solves, "
            f"avg batch {c['vector_batch_size_avg']:.1f}, "
            f"{c['scalar_fallbacks']} scalar fallbacks"
        )
    lines.append(f"  intervals      : {c['intervals_observed']} observed")
    lookups = c["rate_cache_hits"] + c["rate_cache_misses"]
    if lookups:
        lines.append(
            "  rate memo      : "
            f"{c['rate_cache_hit_rate'] * 100:.1f}% hit "
            f"({c['rate_cache_hits']}/{lookups})"
        )
    else:
        lines.append("  rate memo      : disabled / unused")
    if "fault_ops_seen" in c:
        lines.append(
            "  faults         : "
            f"{int(c['fault_injected'])} injected over "
            f"{int(c['fault_ops_seen'])} file ops, "
            f"{int(c['fault_crashes'])} crashes, "
            f"{int(c['fault_slow_windows'])} slow windows"
        )
        lines.append(
            "  retries        : "
            f"{int(c['fault_retries'])} retries "
            f"({c['fault_backoff_seconds']:.6f} s backoff), "
            f"{int(c['fault_retries_exhausted'])} exhausted, "
            f"{int(c['fault_torn_writes'])} torn writes "
            f"({int(c['fault_torn_bytes_discarded'])} B discarded)"
        )
        lines.append(
            "  recovery       : "
            f"{int(c['fault_recoveries'])} recoveries, "
            f"{int(c['fault_salvaged_bytes'])} B salvaged vs "
            f"{int(c['fault_redone_bytes'])} B redone"
        )
    if profiler is not None and profiler.phases:
        lines.append("  wall clock     :")
        for name, elapsed in profiler.ordered_phases():
            lines.append(f"    {name:12s} {elapsed:.3f} s")
        wall = profiler.total_wall
        if wall > 0:
            lines.append(
                "  throughput     : "
                f"{c['ops_completed'] / wall:,.0f} ops/s, "
                f"{c['sim_seconds'] / wall:.6f} sim-s per wall-s"
            )
    return "\n".join(lines)
