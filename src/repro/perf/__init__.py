"""Simulator self-performance instrumentation.

Tools for measuring how fast the *simulator itself* runs (wall-clock),
as opposed to the simulated times it produces: per-phase wall timers,
engine/fluid/rate-model counter snapshots and a human-readable report.
Used by the ``--selfperf`` CLI flag and ``benchmarks/bench_selfperf.py``.
"""

from repro.perf.profiler import (
    SelfPerfProfiler,
    collect_cluster_counters,
    collect_counters,
    render_report,
)

__all__ = [
    "SelfPerfProfiler",
    "collect_cluster_counters",
    "collect_counters",
    "render_report",
]
