"""Host-side (CPU and memory bus) cost model.

Device bandwidth alone does not decide the experiments: the paper's
"RUN other" / "MERGE other" components are CPU work (extracting keys,
copying records between buffers, finding minima across run cursors).
This module centralises those constants so they are calibrated in one
place (values in DESIGN.md Sec 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GB, NS


@dataclass
class HostModel:
    """CPU core count and per-byte/per-element cost constants.

    Attributes
    ----------
    ncores:
        Physical cores (the paper's testbed has 16; reads scale up to
        this, Sec 3.8).
    copy_bw_per_core:
        DRAM-to-DRAM memcpy throughput of a single core.
    bus_bw:
        Aggregate memory-bus bandwidth shared by all host-side traffic.
    io_cpu_bw:
        Bytes of device I/O one fully-busy core can drive per second
        (load/store instruction throughput for AVX accesses).
    sort_ns:
        In-memory sort cost: ``sort_ns * n * log2(n)`` ns of CPU work to
        sort n items (IPS4o-style concurrent sample sort when spread
        over multiple cores).
    compare_ns:
        One key comparison during merging.
    touch_ns:
        Per-record bookkeeping (pointer generation, cursor advance).
    """

    ncores: int = 16
    copy_bw_per_core: float = 6.0 * GB
    bus_bw: float = 38.4 * GB
    io_cpu_bw: float = 12.0 * GB
    sort_ns: float = 1.0
    compare_ns: float = 3.0
    touch_ns: float = 2.0

    def __post_init__(self):
        if self.ncores < 1:
            raise ConfigError("ncores must be >= 1")
        for name in ("copy_bw_per_core", "bus_bw", "io_cpu_bw"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def sort_seconds(self, n_items: int) -> float:
        """Total CPU-seconds to sort ``n_items`` (before parallel split)."""
        if n_items <= 1:
            return 0.0
        return self.sort_ns * NS * n_items * math.log2(n_items)

    def merge_compare_seconds(self, n_items: int, ways: int) -> float:
        """CPU-seconds to find minima for ``n_items`` across ``ways`` runs.

        A loser-tree / heap performs ~log2(ways) comparisons per emitted
        record, plus fixed per-record bookkeeping.
        """
        if n_items <= 0:
            return 0.0
        comparisons = max(1.0, math.log2(max(2, ways)))
        return n_items * (self.compare_ns * comparisons + self.touch_ns) * NS

    def touch_seconds(self, n_items: int) -> float:
        """CPU-seconds of per-record bookkeeping (no comparisons)."""
        return max(0, n_items) * self.touch_ns * NS

    def copy_seconds_single_core(self, nbytes: int) -> float:
        """Time for one core to memcpy ``nbytes`` (ignoring bus contention)."""
        return nbytes / self.copy_bw_per_core
