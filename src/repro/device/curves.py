"""Thread-scaling bandwidth curves and read-write interference.

A :class:`ScalingCurve` maps the number of concurrently active threads of
an access class to the *aggregate* bandwidth those threads achieve.  The
paper's device-constrained-concurrency property (D) is exactly the shape
of these curves: PMEM reads scale to the physical core count and then
flatten, while writes peak at a handful of threads and then *degrade*
("performing writes with the maximum number of threads can be ~2x slower
than peak write performance", Sec 2.3).

:class:`InterferenceModel` captures property (I): the read bandwidth
multiplier as a function of concurrently active writers (and the mostly
negligible converse effect).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple


class ScalingCurve:
    """Piecewise-linear aggregate bandwidth as a function of thread count.

    Points are ``(threads, aggregate_bytes_per_second)`` pairs; queries
    between points interpolate linearly, queries beyond the last point
    hold its value.  Thread counts may be fractional during queries (the
    fluid model never asks below 1).
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if not points:
            raise ValueError("curve needs at least one point")
        pts = sorted((float(t), float(bw)) for t, bw in points)
        if pts[0][0] < 1.0:
            raise ValueError("curves start at 1 thread")
        for _, bw in pts:
            if bw <= 0:
                raise ValueError("bandwidth must be positive")
        self._threads = [p[0] for p in pts]
        self._bandwidth = [p[1] for p in pts]
        #: Interpolation memo -- thread counts repeat endlessly in steady
        #: state, and this sits inside the rate-assignment hot loop.
        self._memo: dict = {}

    def aggregate(self, threads: float) -> float:
        """Total bandwidth achieved by ``threads`` concurrent threads."""
        memo = self._memo
        cached = memo.get(threads)
        if cached is not None:
            return cached
        result = self._aggregate(threads)
        if len(memo) < 4096:
            memo[threads] = result
        return result

    def _aggregate(self, threads: float) -> float:
        if threads < 1.0:
            threads = 1.0
        ts, bws = self._threads, self._bandwidth
        if threads <= ts[0]:
            # Below the first point: scale down linearly from the
            # single-thread-equivalent value.
            return bws[0] * threads / ts[0]
        if threads >= ts[-1]:
            return bws[-1]
        i = bisect.bisect_right(ts, threads)
        t0, t1 = ts[i - 1], ts[i]
        b0, b1 = bws[i - 1], bws[i]
        frac = (threads - t0) / (t1 - t0)
        return b0 + frac * (b1 - b0)

    def per_thread(self, threads: float) -> float:
        """Fair-share bandwidth of one thread when ``threads`` are active."""
        threads = max(1.0, threads)
        return self.aggregate(threads) / threads

    @property
    def peak(self) -> float:
        """Best aggregate bandwidth across all thread counts."""
        return max(self._bandwidth)

    @property
    def peak_threads(self) -> float:
        """Smallest thread count achieving the peak bandwidth."""
        best = self.peak
        for t, bw in zip(self._threads, self._bandwidth):
            if bw >= best:
                return t
        raise AssertionError("unreachable")

    def scaled(self, factor: float) -> "ScalingCurve":
        """A copy with all bandwidths multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ScalingCurve(
            [(t, bw * factor) for t, bw in zip(self._threads, self._bandwidth)]
        )

    @classmethod
    def linear_to_saturation(
        cls, peak: float, saturation_threads: float, single_thread: float | None = None
    ) -> "ScalingCurve":
        """Linear ramp from one thread to a plateau (typical read curve)."""
        if single_thread is None:
            single_thread = peak / saturation_threads
        return cls([(1, single_thread), (saturation_threads, peak), (1024, peak)])

    @classmethod
    def peaked(
        cls,
        peak: float,
        peak_threads: float,
        tail: float,
        tail_threads: float,
        single_thread: float | None = None,
    ) -> "ScalingCurve":
        """Rise to a peak then degrade (typical PMEM write curve)."""
        if single_thread is None:
            single_thread = peak / peak_threads
        if tail_threads <= peak_threads:
            raise ValueError("tail_threads must exceed peak_threads")
        return cls(
            [
                (1, single_thread),
                (peak_threads, peak),
                (tail_threads, tail),
                (4096, tail),
            ]
        )

    @classmethod
    def flat(cls, bandwidth: float) -> "ScalingCurve":
        """Constant aggregate bandwidth regardless of thread count."""
        return cls([(1, bandwidth)])


@dataclass(frozen=True)
class InterferenceModel:
    """Read-write interference multipliers (BRAID property I).

    ``read_floor`` is the worst-case read-bandwidth fraction under heavy
    concurrent writes; ``read_slope`` controls how quickly each
    additional writer pushes reads toward the floor.  The paper quotes
    "up to 2x" read degradation for a handful of writers (Sec 2.3); the
    measurement studies it cites (Yang et al. FAST'20) show mixed
    read/write workloads collapsing further, and writes themselves also
    suffer under a mixed load (XPBuffer thrashing), so the defaults give
    writes a real penalty too.  Devices without property (I) use
    :meth:`none`.
    """

    read_floor: float = 0.35
    read_slope: float = 0.5
    write_floor: float = 0.5
    write_slope: float = 0.2

    def __post_init__(self):
        for name in ("read_floor", "write_floor"):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {v}")

    def read_multiplier(self, writers: float) -> float:
        """Fraction of read bandwidth retained with ``writers`` active."""
        if writers <= 0:
            return 1.0
        return max(self.read_floor, 1.0 / (1.0 + self.read_slope * writers))

    def write_multiplier(self, readers: float) -> float:
        """Fraction of write bandwidth retained with ``readers`` active."""
        if readers <= 0:
            return 1.0
        return max(self.write_floor, 1.0 / (1.0 + self.write_slope * readers))

    @classmethod
    def none(cls) -> "InterferenceModel":
        """A device with no read-write interference (I = 0)."""
        return cls(read_floor=1.0, read_slope=0.0, write_floor=1.0, write_slope=0.0)
