"""Factory functions for the device profiles used in the paper.

Calibration sources (see DESIGN.md Sec 4):

* **PMEM** -- Intel Optane DC PMEM 100, four interleaved DIMMs.  Peak
  sequential read 22.2 GB/s (Fig 5 caption: "ideal time to read 20 GB
  ... is 0.90s"); random reads at 256 B are 18% slower (Sec 2.3 R);
  writes peak around 8 GB/s at ~5 threads and halve at full thread
  count (Sec 2.3 D, Sec 3.8); reads degrade up to 2x under concurrent
  writes (Sec 2.3 I).
* **DRAM** -- symmetric, interference-free, roughly an order of
  magnitude faster than PMEM (Sec 2.4.1: in-place sort on DRAM is ~10x
  faster than on PMEM).
* **Block SSD** -- 4 KiB access granularity and modest random-read
  performance; used to demonstrate why key-value separation loses on
  conventional storage (Sec 2.4.2's 40x amplification example).
* **BD / BRD / BARD** -- the Sec 4.5 CXL-emulated devices.  The paper
  emulates them on remote-socket DRAM (tmpfs) and injects busy-loop
  delays per 64 B cache line; we derive the curves from the same
  per-line latency deltas.
"""

from __future__ import annotations

from repro.device.curves import InterferenceModel, ScalingCurve
from repro.device.profile import DEFAULT_GATHER_TABLE, DeviceProfile
from repro.units import CACHE_LINE, GB, GiB, NS, PMEM_GRANULE


def pmem_profile(capacity: int = 448 * GiB) -> DeviceProfile:
    """Intel Optane DC PMEM 100 series, 4 DIMMs interleaved (paper testbed)."""
    return DeviceProfile(
        name="pmem",
        byte_addressable=True,
        granularity=PMEM_GRANULE,
        seq_read=ScalingCurve(
            [(1, 4.0 * GB), (4, 12.0 * GB), (8, 18.0 * GB), (16, 22.2 * GB), (1024, 22.2 * GB)]
        ),
        rand_read=ScalingCurve(
            [(1, 1.2 * GB), (8, 8.5 * GB), (16, 15.9 * GB), (32, 22.2 * GB), (1024, 22.2 * GB)]
        ),
        write=ScalingCurve(
            [
                (1, 1.8 * GB),
                (5, 8.0 * GB),
                (16, 5.5 * GB),
                (32, 4.0 * GB),
                (64, 2.8 * GB),
                (4096, 2.8 * GB),
            ]
        ),
        interference=InterferenceModel(
            read_floor=0.35, read_slope=0.5, write_floor=0.5, write_slope=0.2
        ),
        gather_table=DEFAULT_GATHER_TABLE,
        capacity=capacity,
        inplace_penalty_ns=300.0,
    )


def dram_profile(capacity: int = 32 * GiB) -> DeviceProfile:
    """Local DRAM: symmetric, fast, interference-free, 64 B lines."""
    return DeviceProfile(
        name="dram",
        byte_addressable=True,
        granularity=CACHE_LINE,
        seq_read=ScalingCurve.linear_to_saturation(
            peak=80.0 * GB, saturation_threads=16, single_thread=10.0 * GB
        ),
        rand_read=ScalingCurve.linear_to_saturation(
            peak=60.0 * GB, saturation_threads=16, single_thread=5.0 * GB
        ),
        write=ScalingCurve.linear_to_saturation(
            peak=50.0 * GB, saturation_threads=16, single_thread=8.0 * GB
        ),
        interference=InterferenceModel.none(),
        gather_table=((16, 16.0), (64, 40.0), (4096, 72.0)),
        capacity=capacity,
        inplace_penalty_ns=30.0,
    )


def block_ssd_profile(capacity: int = 1024 * GiB) -> DeviceProfile:
    """A fast NVMe block SSD: 4 KiB granularity, no byte addressability."""
    return DeviceProfile(
        name="block-ssd",
        byte_addressable=False,
        granularity=4096,
        seq_read=ScalingCurve.linear_to_saturation(
            peak=3.5 * GB, saturation_threads=8, single_thread=1.2 * GB
        ),
        rand_read=ScalingCurve.linear_to_saturation(
            peak=2.4 * GB, saturation_threads=16, single_thread=0.4 * GB
        ),
        write=ScalingCurve.peaked(
            peak=2.0 * GB, peak_threads=4, tail=1.6 * GB, tail_threads=32, single_thread=0.9 * GB
        ),
        interference=InterferenceModel(
            read_floor=0.75, read_slope=0.1, write_floor=0.9, write_slope=0.02
        ),
        gather_table=None,
        capacity=capacity,
    )


# ----------------------------------------------------------------------
# Sec 4.5: emulated future BRAID devices
# ----------------------------------------------------------------------
#: Remote-socket DRAM baseline of the CXL-emulation testbed: the line
#: transfer time of the unmodified path, before injected delays.
_EMU_BASE_LINE_TIME = CACHE_LINE / (2.0 * GB)  # 32 ns per 64 B line
_EMU_PEAK = 16.0 * GB
_EMU_THREADS = 32


def _delayed_line_curve(extra_delay: float, max_threads: int = _EMU_THREADS) -> ScalingCurve:
    """Aggregate-bandwidth curve for per-line accesses with an injected delay.

    The paper injects busy loops "per cache line access (64B)"; a single
    thread then moves one line every (base + extra) seconds, and threads
    scale linearly until ``max_threads`` (or the testbed's aggregate
    limit).  Disk-like random paths saturate at a smaller queue depth.
    """
    single = CACHE_LINE / (_EMU_BASE_LINE_TIME + extra_delay)
    peak = min(_EMU_PEAK, single * max_threads)
    saturation = max(2.0, peak / single)
    return ScalingCurve.linear_to_saturation(
        peak=peak, saturation_threads=saturation, single_thread=single
    )


def bd_device_profile(capacity: int = 64 * GiB) -> DeviceProfile:
    """BD-Device (Fig 11a): byte-addressable 'disk'.

    Symmetric sequential read/write, but random reads are 500 ns per
    cache line slower than sequential -- no (R), no (A).  Like the
    traditional SSDs that inspire it, the random-read path also stops
    scaling at a modest queue depth.
    """
    return DeviceProfile(
        name="bd-device",
        byte_addressable=True,
        granularity=CACHE_LINE,
        seq_read=_delayed_line_curve(0.0),
        rand_read=_delayed_line_curve(500 * NS, max_threads=8),
        write=_delayed_line_curve(0.0),
        interference=InterferenceModel.none(),
        gather_table=None,
        capacity=capacity,
        inplace_penalty_ns=30.0,
    )


def brd_device_profile(capacity: int = 64 * GiB) -> DeviceProfile:
    """BRD-Device (Fig 11b): random read == sequential read == write."""
    return DeviceProfile(
        name="brd-device",
        byte_addressable=True,
        granularity=CACHE_LINE,
        seq_read=_delayed_line_curve(0.0),
        rand_read=_delayed_line_curve(0.0),
        write=_delayed_line_curve(0.0),
        interference=InterferenceModel.none(),
        gather_table=None,
        capacity=capacity,
        inplace_penalty_ns=30.0,
    )


def bard_device_profile(capacity: int = 64 * GiB) -> DeviceProfile:
    """BARD-Device (Fig 11c): writes 500 ns per line slower than reads."""
    return DeviceProfile(
        name="bard-device",
        byte_addressable=True,
        granularity=CACHE_LINE,
        seq_read=_delayed_line_curve(0.0),
        rand_read=_delayed_line_curve(0.0),
        write=_delayed_line_curve(500 * NS),
        interference=InterferenceModel.none(),
        gather_table=None,
        capacity=capacity,
        inplace_penalty_ns=30.0,
    )


#: Registry used by the benchmark harness and examples.
PROFILE_FACTORIES = {
    "pmem": pmem_profile,
    "dram": dram_profile,
    "block-ssd": block_ssd_profile,
    "bd-device": bd_device_profile,
    "brd-device": brd_device_profile,
    "bard-device": bard_device_profile,
}
