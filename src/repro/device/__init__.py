"""BRAID device model.

This package turns the paper's BRAID properties into simulation
parameters:

* **B**yte addressability -- :attr:`DeviceProfile.byte_addressable` and
  :attr:`DeviceProfile.granularity` drive access amplification.
* Higher **R**andom-read performance -- separate sequential/random read
  :class:`ScalingCurve` instances plus a calibrated strided-gather table.
* **A**symmetric read-write cost -- independent read and write curves.
* Read-write **I**nterference -- :class:`InterferenceModel` multipliers.
* **D**evice-constrained concurrency -- the shape of each curve
  (bandwidth vs. in-flight threads, non-monotone for writes).

:class:`BraidRateModel` translates the active op population into
instantaneous rates for the fluid scheduler.
"""

from repro.device.curves import ScalingCurve, InterferenceModel
from repro.device.profile import DeviceProfile, Pattern
from repro.device.host import HostModel
from repro.device.device import BraidRateModel, make_io_op
from repro.device.stats import DeviceStats
from repro.device.profiles import (
    pmem_profile,
    dram_profile,
    block_ssd_profile,
    bd_device_profile,
    brd_device_profile,
    bard_device_profile,
    PROFILE_FACTORIES,
)

__all__ = [
    "ScalingCurve",
    "InterferenceModel",
    "DeviceProfile",
    "Pattern",
    "HostModel",
    "BraidRateModel",
    "make_io_op",
    "DeviceStats",
    "pmem_profile",
    "dram_profile",
    "block_ssd_profile",
    "bd_device_profile",
    "brd_device_profile",
    "bard_device_profile",
    "PROFILE_FACTORIES",
]
