"""The BRAID rate model: active ops -> instantaneous rates.

Every fluid op is either:

* an **I/O op** (``kind="io"``): ``work`` is internal device traffic in
  bytes, attributes carry ``direction`` ("read"/"write"), ``pattern``
  (:class:`~repro.device.profile.Pattern`), ``threads`` (how many device
  threads the op represents -- a pooled gather issued by 16 reader
  threads is one op with ``threads=16``) and ``host_ratio`` (host-bus
  bytes moved per byte of device work).
* a **CPU op** (``kind="cpu"``): ``work`` is either cpu-seconds
  (``mode="compute"``) or bytes (``mode="copy"``), with a ``cores``
  parallelism cap.

Rate assignment happens in two stages:

1. *Device caps* (properties A, I, D): each I/O op's ceiling is its
   pattern curve evaluated at the total thread count of its direction,
   multiplied by the interference penalty from the opposite direction,
   and split proportionally to the op's thread weight.
2. *Host water-filling*: all ops then share the memory bus and CPU cores
   by normalised max-min progressive filling, so a device-fast op can
   still be host-bound (and vice versa).

Rates depend only on each op's *signature* -- (kind, direction, pattern,
threads, host_ratio) for I/O, (kind, mode, cores) for CPU -- never on
identity or remaining work, so whole assignments are memoized in an LRU
cache keyed on the sorted signature multiset of the active population.
Steady-state workloads (a merge loop cycling through identical
refill/flush populations) hit the cache almost always; see DESIGN.md
"Simulator performance".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.device.host import HostModel
from repro.device.profile import DeviceProfile, Pattern
from repro.sim.fluid import FluidOp, RateModel

_REL_EPS = 1e-9


def make_io_op(
    profile: DeviceProfile,
    direction: str,
    pattern: Pattern,
    nbytes: int,
    tag: str,
    accesses: int = 1,
    stride: int = 0,
    threads: int = 1,
    host_bytes: int | None = None,
) -> FluidOp:
    """Build a fluid op for one device request (or pooled request batch).

    ``host_bytes`` defaults to the user payload: every delivered byte
    crosses the memory bus once.  Strided key gathers deliver far fewer
    bytes than the device internally touches, which is exactly how
    key-value separation saves host-side work.
    """
    if direction not in ("read", "write"):
        raise ValueError(f"direction must be read/write, got {direction!r}")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    work = profile.io_work(pattern, nbytes, accesses=accesses, stride=stride)
    user = nbytes if host_bytes is None else host_bytes
    host_ratio = (user / work) if work > 0 else 0.0
    return FluidOp(
        work,
        kind="io",
        tag=tag,
        direction=direction,
        pattern=pattern,
        threads=threads,
        host_ratio=host_ratio,
        user_bytes=nbytes,
    )


class BraidRateModel(RateModel):
    """Implements the two-stage rate assignment described above.

    ``memoize`` (default on) caches complete rate assignments keyed on
    the signature multiset of the active population.  The uncached path
    processes ops in canonical signature order, so cached and uncached
    assignments are bit-identical -- disabling the cache (the
    determinism-guard debug flag) must not change any simulated result.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        host: HostModel,
        memoize: bool = True,
        cache_size: int = 4096,
    ):
        self.profile = profile
        self.host = host
        self.memoize = memoize
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, dict]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: Global device-throughput multiplier in (0, 1].  The fault
        #: injector lowers it during transient-degradation windows
        #: (interference storms); it scales every I/O cap and is part of
        #: the memo key so cached assignments stay exact.
        self.degrade = 1.0

    # ------------------------------------------------------------------
    @staticmethod
    def _signature(op: FluidOp) -> tuple:
        """Everything the rate computation reads from one op.

        Uses ``pattern.value`` (a string) rather than the enum so
        signatures of different ops sort under a total order.
        """
        attrs = op.attrs
        if op.kind == "io":
            return (
                "io",
                attrs["direction"],
                attrs["pattern"].value,
                attrs["threads"],
                attrs["host_ratio"],
            )
        if op.kind == "cpu":
            if attrs is None:
                return ("cpu", "compute", 1.0)
            return ("cpu", attrs.get("mode", "compute"), float(attrs.get("cores", 1)))
        return (op.kind,)

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        pairs = []
        for op in ops:
            sig = op._sig
            if sig is None:
                sig = self._signature(op)
                op._sig = sig
            pairs.append((sig, op))
        if self.memoize:
            key = (self.degrade,) + tuple(sorted(sig for sig, _ in pairs))
            table = self._cache.get(key)
            if table is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return {op: table[sig] for sig, op in pairs}
            self.cache_misses += 1
        # Canonical signature order: rates become independent of caller
        # iteration order (equal-signature ops are interchangeable), so
        # the memo table built from this pass is exact for any
        # population with the same signature multiset.
        pairs.sort(key=lambda p: p[0])
        rates = self._assign_ordered([op for _, op in pairs])
        if self.memoize:
            cache = self._cache
            cache[key] = {sig: rates[op] for sig, op in pairs}
            if len(cache) > self.cache_size:
                cache.popitem(last=False)
        return rates

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Vectorized-kernel protocol (see RateModel): rates depend only on
    # the signature multiset and the degradation multiplier, so the
    # signature *is* the vector class and ``degrade`` is the state
    # token.  ``assign`` already canonicalises by signature, satisfying
    # the signature-purity contract.
    def vector_state(self, key):
        return self.degrade

    def vector_sig(self, op: FluidOp) -> tuple:
        sig = op._sig
        if sig is None:
            sig = self._signature(op)
            op._sig = sig
        return sig

    def _assign_ordered(self, ops: List[FluidOp]) -> Dict[FluidOp, float]:
        reads = [op for op in ops if op.kind == "io" and op.attrs["direction"] == "read"]
        writes = [op for op in ops if op.kind == "io" and op.attrs["direction"] == "write"]
        cpus = [op for op in ops if op.kind == "cpu"]

        n_read_threads = sum(op.attrs["threads"] for op in reads)
        n_write_threads = sum(op.attrs["threads"] for op in writes)

        entries: List[Tuple[FluidOp, float, Dict[str, float]]] = []
        for op in reads:
            cap = self._read_cap(op, n_read_threads, n_write_threads)
            entries.append((op, cap, self._io_coefs(op)))
        for op in writes:
            cap = self._write_cap(op, n_write_threads, n_read_threads)
            entries.append((op, cap, self._io_coefs(op)))
        for op in cpus:
            entries.append(self._cpu_entry(op))

        capacities = {"cpu": float(self.host.ncores), "bus": self.host.bus_bw}
        return _waterfill(entries, capacities)

    # ------------------------------------------------------------------
    def _read_cap(self, op: FluidOp, n_readers: float, n_writers: float) -> float:
        curve = self.profile.read_curve(op.attrs["pattern"])
        share = op.attrs["threads"] / max(1.0, n_readers)
        penalty = self.profile.interference.read_multiplier(n_writers)
        return curve.aggregate(n_readers) * share * penalty * self.degrade

    def _write_cap(self, op: FluidOp, n_writers: float, n_readers: float) -> float:
        curve = self.profile.write
        share = op.attrs["threads"] / max(1.0, n_writers)
        penalty = self.profile.interference.write_multiplier(n_readers)
        return curve.aggregate(n_writers) * share * penalty * self.degrade

    def _io_coefs(self, op: FluidOp) -> Dict[str, float]:
        return {
            "bus": op.attrs["host_ratio"],
            "cpu": 1.0 / self.host.io_cpu_bw,
        }

    def _cpu_entry(self, op: FluidOp) -> Tuple[FluidOp, float, Dict[str, float]]:
        attrs = op.attrs
        cores = 1.0 if attrs is None else float(attrs.get("cores", 1))
        mode = "compute" if attrs is None else attrs.get("mode", "compute")
        if mode == "compute":
            # work in cpu-seconds; rate is cores-worth of cpu-sec/s.
            return (op, cores, {"cpu": 1.0, "bus": 0.0})
        if mode == "copy":
            # work in bytes; each byte/s of copy consumes bus and cpu.
            cap = cores * self.host.copy_bw_per_core
            return (op, cap, {"cpu": 1.0 / self.host.copy_bw_per_core, "bus": 1.0})
        raise ValueError(f"unknown cpu op mode {mode!r}")


def _waterfill(
    entries: List[Tuple[FluidOp, float, Dict[str, float]]],
    capacities: Dict[str, float],
) -> Dict[FluidOp, float]:
    """Normalised max-min progressive filling.

    All ops raise a common normalised level ``lam`` in [0, 1]; an op's
    rate is ``lam * cap``.  When a shared resource saturates, its users
    freeze at the current level and the rest keep climbing.
    """
    rates: Dict[FluidOp, float] = {}
    active = [(op, cap, coefs) for op, cap, coefs in entries if cap > 0]
    for op, cap, _ in entries:
        if cap <= 0:
            rates[op] = 0.0
    remaining = dict(capacities)
    lam = 0.0
    while active:
        slopes = {
            res: sum(cap * coefs.get(res, 0.0) for _, cap, coefs in active)
            for res in remaining
        }
        step = 1.0 - lam
        for res, slope in slopes.items():
            if slope > 0:
                step = min(step, remaining[res] / slope)
        lam += step
        for res, slope in slopes.items():
            remaining[res] -= slope * step
        if lam >= 1.0 - _REL_EPS:
            for op, cap, _ in active:
                rates[op] = cap
            break
        saturated = [
            res
            for res in sorted(capacities)
            if remaining[res] <= _REL_EPS * max(capacities[res], 1.0)
        ]
        frozen = [
            e for e in active if any(e[2].get(res, 0.0) > 0 for res in saturated)
        ]
        if not frozen:
            # Numerical corner: freeze everything to guarantee progress.
            frozen = active
        for op, cap, _ in frozen:
            rates[op] = lam * cap
        active = [e for e in active if e[0] not in rates]
    return rates
