"""Bandwidth/CPU timelines and per-tag traffic accounting.

A :class:`DeviceStats` instance registers as an interval observer on the
fluid scheduler: for every constant-rate interval it accumulates

* a bandwidth timeline ``(t0, t1, read_B/s, write_B/s, cores_used)``
  (the data behind the paper's Figs 5-6 resource-usage plots),
* internal device traffic per direction,
* per-tag totals: busy wall-clock (union of intervals where any op of
  the tag was active), internal traffic and first/last activity time.

User-byte counters per tag are credited by the machine when ops are
submitted (the observer only sees internal work).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.device.host import HostModel
from repro.sim.fluid import (
    OBS_CPU_COMPUTE,
    OBS_CPU_COPY,
    OBS_IO_READ,
    OBS_IO_WRITE,
    OBS_NET,
    observer_code,
)


@dataclass
class TagStats:
    """Aggregate statistics for one op tag (e.g. ``"RUN read"``)."""

    busy_time: float = 0.0
    internal_bytes: float = 0.0
    user_bytes: float = 0.0
    op_count: int = 0
    first_active: float = float("inf")
    last_active: float = 0.0
    #: Dominant direction/pattern of the tag's ops ("read"/"write" and
    #: "seq"/"rand"/"strided"); last submission wins, which is fine
    #: because tags are homogeneous by construction.
    direction: str = ""
    pattern: str = ""

    @property
    def window(self) -> float:
        """Wall-clock span between first and last activity."""
        if self.first_active > self.last_active:
            return 0.0
        return self.last_active - self.first_active


class DeviceStats:
    """Collects timelines and per-tag aggregates for one machine run."""

    def __init__(self, host: HostModel):
        self.host = host
        self.timeline: List[Tuple[float, float, float, float, float]] = []
        self.bytes_read_internal = 0.0
        self.bytes_written_internal = 0.0
        self.tags: Dict[str, TagStats] = defaultdict(TagStats)

    # ------------------------------------------------------------------
    def observe(self, t0: float, t1: float, ops: list) -> None:
        """Interval observer callback (registered on the fluid scheduler).

        Accumulator updates stay strictly per-op in the order given (the
        scheduler passes ops in issue order), so the float results are
        run-to-run deterministic.  The local copies of the running totals
        preserve the exact same sequence of additions as attribute
        updates would -- they only avoid repeated attribute lookups.
        """
        dt = t1 - t0
        if dt <= 0:
            return
        read_rate = 0.0
        write_rate = 0.0
        cores = 0.0
        read_internal = self.bytes_read_internal
        written_internal = self.bytes_written_internal
        io_cpu_bw = self.host.io_cpu_bw
        copy_bw = self.host.copy_bw_per_core
        tags = self.tags
        # Insertion-ordered (issue-order) rather than a set: string-set
        # iteration order depends on PYTHONHASHSEED, and determinism
        # here must not rely on the per-tag updates being independent.
        active_tags: dict = {}
        for op in ops:
            tag = op.tag
            if tag:
                active_tags[tag] = True
            # Cached classification code (direction/mode resolved once
            # per op); the per-code arithmetic repeats the attribute
            # branches exactly, so every float add happens in the same
            # order with the same operands.
            code = op._obs
            if code is None:
                code = observer_code(op)
            if code == OBS_IO_READ:
                rate = op.rate
                delta = rate * dt
                read_rate += rate
                read_internal += delta
                if tag:
                    tags[tag].internal_bytes += delta
                cores += rate / io_cpu_bw
            elif code == OBS_IO_WRITE:
                rate = op.rate
                delta = rate * dt
                write_rate += rate
                written_internal += delta
                if tag:
                    tags[tag].internal_bytes += delta
                cores += rate / io_cpu_bw
            elif code == OBS_CPU_COMPUTE:
                cores += op.rate
            elif code == OBS_CPU_COPY:
                cores += op.rate / copy_bw
        self.bytes_read_internal = read_internal
        self.bytes_written_internal = written_internal
        for tag in active_tags:
            stats = tags[tag]
            stats.busy_time += dt
            if t0 < stats.first_active:
                stats.first_active = t0
            if t1 > stats.last_active:
                stats.last_active = t1
        self.timeline.append((t0, t1, read_rate, write_rate, cores))

    # ------------------------------------------------------------------
    def credit_submission(
        self, tag: str, user_bytes: float, direction: str = "", pattern: str = ""
    ) -> None:
        """Record user payload for a submitted op (called by the machine)."""
        if not tag:
            return
        stats = self.tags[tag]
        stats.user_bytes += user_bytes
        stats.op_count += 1
        if direction:
            stats.direction = direction
        if pattern:
            stats.pattern = pattern

    # ------------------------------------------------------------------
    def tag_table(self) -> List[Tuple[str, TagStats]]:
        """Tags ordered by first activity, for phase-breakdown reports."""
        return sorted(self.tags.items(), key=lambda kv: (kv[1].first_active, kv[0]))

    def peak_read_bw(self) -> float:
        """Highest observed instantaneous read bandwidth."""
        return max((row[2] for row in self.timeline), default=0.0)

    def peak_write_bw(self) -> float:
        """Highest observed instantaneous write bandwidth."""
        return max((row[3] for row in self.timeline), default=0.0)

    def mean_cores(self) -> float:
        """Time-weighted average CPU cores in use."""
        total = 0.0
        weight = 0.0
        for t0, t1, _, _, cores in self.timeline:
            total += cores * (t1 - t0)
            weight += t1 - t0
        return total / weight if weight else 0.0

    def coarse_timeline(self, buckets: int = 40) -> List[Tuple[float, float, float, float]]:
        """Resample the timeline into ``buckets`` equal windows.

        Returns ``(t_mid, read_B/s, write_B/s, cores)`` rows, suitable
        for compact textual resource-usage plots.
        """
        if not self.timeline:
            return []
        start = self.timeline[0][0]
        end = self.timeline[-1][1]
        if end <= start:
            return []
        width = (end - start) / buckets
        acc = [[0.0, 0.0, 0.0] for _ in range(buckets)]
        for t0, t1, rbw, wbw, cores in self.timeline:
            lo = t0
            while lo < t1 - 1e-15:
                idx = min(buckets - 1, int((lo - start) / width))
                hi = min(t1, start + (idx + 1) * width)
                if hi <= lo:
                    # Floating point put ``lo`` exactly on (or a hair
                    # past) the bucket edge; step into the next bucket
                    # instead of spinning.
                    idx = min(buckets - 1, idx + 1)
                    hi = min(t1, start + (idx + 1) * width)
                    if hi <= lo:
                        break
                dt = hi - lo
                acc[idx][0] += rbw * dt
                acc[idx][1] += wbw * dt
                acc[idx][2] += cores * dt
                lo = hi
        rows = []
        for i, (r, w, c) in enumerate(acc):
            mid = start + (i + 0.5) * width
            rows.append((mid, r / width, w / width, c / width))
        return rows


class InterconnectStats:
    """Interval observer for the cluster interconnect.

    The network counterpart of :class:`DeviceStats`: registered once on
    the cluster's shared fluid scheduler, it accumulates only
    ``kind="net"`` flows (everything else belongs to a shard's
    DeviceStats) into

    * total bytes moved over the fabric,
    * a bandwidth timeline ``(t0, t1, aggregate_B/s)``,
    * per-tag totals (``"SHUFFLE net"`` vs recovery/speculation
      transfers) via the same :class:`TagStats` shape,
    * per-directed-link byte totals keyed ``(src, dst)`` -- the data
      behind incast diagnostics ("how much converged on shard3").
    """

    def __init__(self):
        self.bytes_total = 0.0
        self.timeline: List[Tuple[float, float, float]] = []
        self.tags: Dict[str, TagStats] = defaultdict(TagStats)
        self.link_bytes: Dict[Tuple[str, str], float] = {}

    def observe(self, t0: float, t1: float, ops: list) -> None:
        dt = t1 - t0
        if dt <= 0:
            return
        agg_rate = 0.0
        total = self.bytes_total
        tags = self.tags
        link_bytes = self.link_bytes
        active_tags: dict = {}
        for op in ops:
            code = op._obs
            if code is None:
                code = observer_code(op)
            if code != OBS_NET:
                continue
            rate = op.rate
            delta = rate * dt
            agg_rate += rate
            total += delta
            tag = op.tag
            if tag:
                active_tags[tag] = True
                tags[tag].internal_bytes += delta
            attrs = op.attrs or {}
            link = (attrs.get("src", "?"), attrs.get("dst", "?"))
            link_bytes[link] = link_bytes.get(link, 0.0) + delta
        if agg_rate == 0.0 and not active_tags:
            return  # epoch carried no network flows
        self.bytes_total = total
        for tag in active_tags:
            stats = tags[tag]
            stats.busy_time += dt
            if t0 < stats.first_active:
                stats.first_active = t0
            if t1 > stats.last_active:
                stats.last_active = t1
        self.timeline.append((t0, t1, agg_rate))

    def credit_submission(self, tag: str, user_bytes: float) -> None:
        """Record a submitted flow's payload (called by the cluster)."""
        if not tag:
            return
        stats = self.tags[tag]
        stats.user_bytes += user_bytes
        stats.op_count += 1

    def tag_table(self) -> List[Tuple[str, TagStats]]:
        return sorted(self.tags.items(), key=lambda kv: (kv[1].first_active, kv[0]))

    def peak_bw(self) -> float:
        return max((row[2] for row in self.timeline), default=0.0)
