"""Device profiles: the parameter bundle describing one BRAID device.

A profile answers two questions for every access the storage layer
issues:

1. *How much device work does it cost?*  (:meth:`DeviceProfile.io_work`
   returns internal traffic in bytes, applying granularity amplification
   for random accesses, and a calibrated gather-cost table for dense
   strided key reads.)
2. *How fast does that work drain?*  (the per-pattern scaling curves
   consumed by :class:`repro.device.device.BraidRateModel`.)

The strided-gather table deserves a note.  On real PMEM the effective
cost of gathering small keys at a fixed stride is an empirical quantity
-- it depends on XPLine buffering, CPU prefetching and load throughput in
ways no first-principles formula captures.  The paper's own methodology
is to *measure* the device with microbenchmarks and feed the results to
the thread-pool controller (Sec 3.8).  We do the same: the profile
carries a small ``(stride -> equivalent internal bytes per access)``
table calibrated so that the strided-vs-sequential ratios of Figs 5/9
hold, and interpolates between entries.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.device.curves import InterferenceModel, ScalingCurve
from repro.errors import ConfigError
from repro.units import ceil_div


class Pattern(enum.Enum):
    """Access pattern of an I/O request."""

    SEQ = "seq"
    RAND = "rand"
    STRIDED = "strided"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default strided-gather calibration for PMEM-like devices, as
#: ``(stride_bytes, equivalent_internal_bytes_per_access)`` for a ~10B
#: access, charged against the random-read curve.  Derived from the
#: paper's reported strided-vs-sequential load ratios (Fig 9: ~1.2x at
#: V=50, ~1.5x at V=90, ~3x at V=502) against the 22.2 GB/s PMEM peaks.
DEFAULT_GATHER_TABLE: Tuple[Tuple[int, float], ...] = (
    (16, 17.0),
    (32, 27.0),
    (64, 44.0),
    (100, 67.0),
    (128, 76.0),
    (256, 111.0),
    (512, 171.0),
    (1024, 244.0),
    (2048, 317.0),
    (4096, 403.0),
)


@dataclass
class DeviceProfile:
    """All tunable characteristics of one byte-addressable storage device.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports).
    byte_addressable:
        BRAID property B.  When False the device amplifies every access
        to ``granularity`` (block-device behaviour).
    granularity:
        Internal media access unit in bytes (256 for Optane XPLines,
        4096 for block SSDs, 64 for the CXL-emulated devices).
    seq_read / rand_read / write:
        Thread-scaling curves per access class.  ``rand_read`` is the
        *granule-level* bandwidth at the reference access size (one
        granule); smaller accesses pay amplification via :meth:`io_work`.
    interference:
        Read-write interference multipliers (property I).
    gather_table:
        Optional strided-gather calibration (see module docstring).
        When None, strided accesses fall back to generic random-access
        amplification -- appropriate for block devices where a strided
        key read really does fetch whole blocks.
    capacity:
        Usable bytes on the device (files beyond this raise).
    """

    name: str
    byte_addressable: bool
    granularity: int
    seq_read: ScalingCurve
    rand_read: ScalingCurve
    write: ScalingCurve
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    gather_table: Optional[Sequence[Tuple[int, float]]] = None
    capacity: int = 1 << 62
    #: Per-element access latency penalty (ns) paid by algorithms that
    #: chase pointers / compare elements *directly on the device* instead
    #: of staging data in DRAM (in-place sorting, Sec 2.4.1).  ~10x
    #: higher on PMEM than on DRAM.
    inplace_penalty_ns: float = 0.0
    #: Fixed per-access overhead of random reads on byte-addressable
    #: devices, as a fraction of one granule (see _random_access_cost).
    rand_overhead_fraction: float = 0.22

    def __post_init__(self):
        if self.granularity < 1:
            raise ConfigError("granularity must be >= 1")
        if self.capacity <= 0:
            raise ConfigError("capacity must be positive")
        if self.gather_table is not None:
            table = sorted((int(s), float(b)) for s, b in self.gather_table)
            if not table:
                raise ConfigError("gather_table may not be empty")
            self.gather_table = tuple(table)
        #: Work-cost memo -- request shapes repeat endlessly (fixed-size
        #: refills, write batches, key gathers), and this sits on the op
        #: construction hot path.
        self._work_memo: dict = {}

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def io_work(
        self,
        pattern: Pattern,
        nbytes: int,
        accesses: int = 1,
        stride: int = 0,
    ) -> float:
        """Internal device traffic (bytes) for a request.

        ``nbytes`` is total user payload, ``accesses`` the number of
        distinct accesses it is split into (1 for a sequential scan, the
        record count for random value gathers), ``stride`` the distance
        between access start offsets for strided reads.
        """
        memo = self._work_memo
        key = (pattern, nbytes, accesses, stride)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = self._io_work(pattern, nbytes, accesses, stride)
        if len(memo) < 65536:
            memo[key] = result
        return result

    def _io_work(
        self,
        pattern: Pattern,
        nbytes: int,
        accesses: int = 1,
        stride: int = 0,
    ) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return 0.0
        if accesses < 1:
            raise ValueError("accesses must be >= 1")
        g = self.granularity
        if pattern is Pattern.SEQ:
            # Sequential streams pay at most one granule of edge waste.
            return float(ceil_div(nbytes, g) * g)
        access_size = ceil_div(nbytes, accesses)
        if pattern is Pattern.RAND:
            return float(accesses * self._random_access_cost(access_size))
        if pattern is Pattern.STRIDED:
            return float(accesses * self._strided_access_cost(access_size, stride))
        raise ValueError(f"unknown pattern {pattern!r}")

    def _random_access_cost(self, access_size: int) -> float:
        """Internal bytes for one random access of this size.

        Byte-addressable devices pay a fixed per-access overhead of
        ``rand_overhead_fraction * granularity`` equivalent bytes (the
        partially-wasted granule fetch, pipelined across accesses).  The
        default fraction of 0.22 makes a 256 B random read on PMEM come
        out exactly 18% slower than sequential (Sec 2.3 R) when the
        random curve peaks at the sequential rate.  Block devices pay
        full block amplification -- the Sec 2.4.2 "40x = 4KB/100B"
        GraySort example.
        """
        g = self.granularity
        if self.byte_addressable:
            return access_size + self.rand_overhead_fraction * g
        return float(ceil_div(access_size, g) * g)

    def _strided_access_cost(self, access_size: int, stride: int) -> float:
        """Internal bytes for one access of a dense strided gather."""
        if stride <= 0:
            # Degenerate: treat as random.
            return self._random_access_cost(access_size)
        if self.gather_table is None:
            # No calibration: block-device style.  Accesses closer than a
            # granule share fetches; farther apart they pay full random
            # cost.
            if stride < self.granularity:
                # Every granule in the extent is touched exactly once, so
                # the amortised internal cost per access equals the stride.
                return float(max(stride, access_size))
            return self._random_access_cost(access_size)
        strides = [s for s, _ in self.gather_table]
        costs = [c for _, c in self.gather_table]
        base = 10.0  # table is calibrated for ~10B keys
        extra = max(0.0, access_size - base)
        if stride <= strides[0]:
            cost = costs[0] * stride / strides[0]
        elif stride >= strides[-1]:
            cost = costs[-1]
        else:
            i = bisect.bisect_right(strides, stride)
            s0, s1 = strides[i - 1], strides[i]
            c0, c1 = costs[i - 1], costs[i]
            cost = c0 + (c1 - c0) * (stride - s0) / (s1 - s0)
        return cost + extra

    def random_batch_work(self, sizes) -> float:
        """Internal traffic for a batch of random accesses (vectorised)."""
        import numpy as np

        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            return 0.0
        g = self.granularity
        if self.byte_addressable:
            return float(
                sizes.sum() + sizes.size * self.rand_overhead_fraction * g
            )
        return float(np.sum(((sizes - 1) // g + 1) * g))

    # ------------------------------------------------------------------
    # Rate lookup
    # ------------------------------------------------------------------
    def read_curve(self, pattern: Pattern) -> ScalingCurve:
        """Scaling curve applicable to a read of the given pattern."""
        if pattern is Pattern.SEQ:
            return self.seq_read
        return self.rand_read

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.name}: seq-read {self.seq_read.peak / 1e9:.1f}GB/s, "
            f"rand-read {self.rand_read.peak / 1e9:.1f}GB/s, "
            f"write {self.write.peak / 1e9:.1f}GB/s, "
            f"granule {self.granularity}B, "
            f"byte-addressable={self.byte_addressable}"
        )
