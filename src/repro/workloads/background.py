"""Multi-tenant background I/O clients (paper Sec 4.4 / Fig 10).

"Each thread/client executes a 4KiB read or write operation on a large
file.  None of the background clients share cores with themselves or the
sorting workload."

Clients loop forever on their own files; a machine driven with
``Machine.run`` stops the clock as soon as the foreground (sorting)
process finishes, so the perpetual clients need no shutdown protocol --
they are simply abandoned mid-op.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.units import KiB, MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


class BackgroundClients:
    """A set of perpetual 4 KiB reader or writer client threads."""

    def __init__(
        self,
        machine: "Machine",
        n_clients: int,
        kind: str,
        pattern: Pattern = Pattern.RAND,
        request_bytes: int = 4 * KiB,
        file_bytes: int = 64 * MiB,
        requests_per_op: int = 64,
    ):
        if kind not in ("read", "write"):
            raise ConfigError("kind must be 'read' or 'write'")
        if n_clients < 0:
            raise ConfigError("n_clients must be >= 0")
        self.machine = machine
        self.n_clients = n_clients
        self.kind = kind
        self.pattern = pattern
        self.request_bytes = request_bytes
        self.file_bytes = file_bytes
        #: Batch several requests into one op to keep event counts sane;
        #: the op still represents one client thread.
        self.requests_per_op = requests_per_op
        self._procs: List = []

    def start(self) -> None:
        """Spawn the looping client processes.

        The clients' requests are synthetic timed ops against a private
        extent -- no bytes are materialised, only device time is
        consumed, which is all the interference experiment needs.
        """
        for i in range(self.n_clients):
            proc = self.machine.engine.spawn(
                self._client_loop(), name=f"bg-{self.kind}-{i}"
            )
            self._procs.append(proc)

    def _client_loop(self):
        nbytes = self.request_bytes * self.requests_per_op
        tag = f"background {self.kind}"
        while True:
            yield self.machine.io(
                self.kind,
                self.pattern,
                nbytes,
                tag=tag,
                accesses=self.requests_per_op,
                threads=1,
            )
