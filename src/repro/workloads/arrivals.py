"""Seeded open-loop arrival processes for the sort service.

An *open-loop* workload submits jobs on its own clock, independent of
how fast the cluster drains them -- the regime where queueing delay,
backpressure and load shedding actually matter (a closed loop can never
over-drive the service past its knee).  Every process here is a
deterministic function of its seed: the same seed always yields the
byte-identical :class:`JobSpec` stream, which is what makes the service
benchmarks and the CI percentile gates reproducible.

Three processes cover the paper-to-production spectrum:

* :class:`PoissonArrivals` -- memoryless arrivals at a fixed offered
  rate (jobs per simulated second), the M/G/k baseline.
* :class:`BurstyArrivals` -- a non-homogeneous Poisson process whose
  rate is modulated by a diurnal sinusoid, realised by Lewis-Shedler
  thinning (candidates drawn at the peak rate, kept with probability
  ``rate(t)/peak``).  Same-seed streams are byte-identical; the bursts
  are what exercises load shedding and deadline misses.
* :class:`TraceArrivals` -- replay of an explicit spec list or a JSONL
  trace file (one ``{"t": ...}`` object per line), for replaying
  captured production traffic.

Job heterogeneity (record counts, tenants, systems, relative deadlines)
is drawn inside the stream from the same seeded RNG, so one seed pins
the *entire* workload, not just its timing.
"""

from __future__ import annotations

import itertools
import json
import math
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

#: Default record count per job when no size mix is given.
DEFAULT_RECORDS = 5_000


@dataclass(frozen=True)
class JobSpec:
    """One job in an arrival stream: everything needed to submit it.

    ``arrival_time`` is absolute simulated seconds from the start of the
    stream; ``deadline`` is *relative* seconds from arrival (None means
    no deadline).  ``seed`` seeds the job's dataset so two jobs never
    sort identical bytes unless the stream says so.
    """

    index: int
    arrival_time: float
    name: str
    tenant: str
    system: str
    records: int
    seed: int
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.records < 1:
            raise ConfigError(f"job {self.name!r} needs at least one record")
        if self.arrival_time < 0:
            raise ConfigError(f"job {self.name!r} arrives before t=0")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"job {self.name!r} deadline must be > 0 s")

    def as_line(self) -> str:
        """Canonical one-line serialization (byte-identity tests)."""
        return (
            f"{self.index} {self.arrival_time!r} {self.name} {self.tenant} "
            f"{self.system} {self.records} {self.seed} {self.deadline!r}"
        )


#: ``size_mix`` entry: (records, relative weight).
SizeMix = Sequence[Tuple[int, float]]


class ArrivalProcess:
    """Base class: an iterable of :class:`JobSpec` in arrival order.

    ``finite`` distinguishes bounded replays from generative processes;
    the service requires a ``horizon`` or ``max_jobs`` bound for the
    infinite ones.
    """

    #: Whether iteration terminates on its own.
    finite = False

    def stream(self) -> Iterator[JobSpec]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[JobSpec]:
        return self.stream()

    def take(self, n: int) -> List[JobSpec]:
        """The first ``n`` specs (fresh stream each call)."""
        return list(itertools.islice(self.stream(), n))


class _GenerativeArrivals(ArrivalProcess):
    """Shared job-mixing machinery for the seeded generative processes."""

    def __init__(
        self,
        seed: int = 0,
        records: int = DEFAULT_RECORDS,
        size_mix: Optional[SizeMix] = None,
        tenants: int = 2,
        systems: Sequence[str] = ("wiscsort",),
        deadline: Optional[float] = None,
        name_prefix: str = "job",
    ):
        if tenants < 1:
            raise ConfigError("arrivals need at least one tenant")
        if not systems:
            raise ConfigError("arrivals need at least one system name")
        if records < 1:
            raise ConfigError("records per job must be >= 1")
        if size_mix is not None:
            if not size_mix:
                raise ConfigError("size_mix must not be empty")
            for recs, weight in size_mix:
                if recs < 1 or weight <= 0:
                    raise ConfigError(
                        "size_mix entries must be (records >= 1, weight > 0)"
                    )
        self.seed = seed
        self.records = records
        self.size_mix = tuple(size_mix) if size_mix is not None else None
        self.tenants = tenants
        self.systems = tuple(systems)
        self.deadline = deadline
        self.name_prefix = name_prefix

    def _spec(self, rng: random.Random, index: int, t: float) -> JobSpec:
        if self.size_mix is not None:
            sizes = [recs for recs, _w in self.size_mix]
            weights = [w for _recs, w in self.size_mix]
            records = rng.choices(sizes, weights=weights)[0]
        else:
            records = self.records
        return JobSpec(
            index=index,
            arrival_time=t,
            name=f"{self.name_prefix}{index:05d}",
            tenant=f"tenant{index % self.tenants}",
            system=self.systems[index % len(self.systems)],
            records=records,
            seed=self.seed + index,
            deadline=self.deadline,
        )


class PoissonArrivals(_GenerativeArrivals):
    """Open-loop Poisson arrivals at ``rate`` jobs per simulated second."""

    def __init__(self, rate: float, seed: int = 0, **job_kwargs):
        if rate <= 0:
            raise ConfigError("arrival rate must be > 0 jobs/s")
        super().__init__(seed=seed, **job_kwargs)
        self.rate = rate

    def stream(self) -> Iterator[JobSpec]:
        rng = random.Random(self.seed)
        t = 0.0
        index = 0
        while True:
            t += rng.expovariate(self.rate)
            yield self._spec(rng, index, t)
            index += 1


class BurstyArrivals(_GenerativeArrivals):
    """Diurnally modulated Poisson arrivals via Lewis-Shedler thinning.

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2*pi*t / period))`` -- a "day"
    of ``period`` simulated seconds with peaks ``(1+amplitude)x`` and
    troughs ``(1-amplitude)x`` the base rate.  Candidates are drawn at
    the peak rate and kept with probability ``rate(t)/peak``; both draws
    come from the one seeded RNG, so the accepted stream is a pure
    function of the seed.
    """

    def __init__(
        self,
        base_rate: float,
        seed: int = 0,
        period: float = 1.0,
        amplitude: float = 0.8,
        **job_kwargs,
    ):
        if base_rate <= 0:
            raise ConfigError("base arrival rate must be > 0 jobs/s")
        if period <= 0:
            raise ConfigError("diurnal period must be > 0 s")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError("amplitude must be in [0, 1)")
        super().__init__(seed=seed, **job_kwargs)
        self.base_rate = base_rate
        self.period = period
        self.amplitude = amplitude

    def _rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def stream(self) -> Iterator[JobSpec]:
        rng = random.Random(self.seed)
        peak = self.base_rate * (1.0 + self.amplitude)
        t = 0.0
        index = 0
        while True:
            t += rng.expovariate(peak)
            if rng.random() >= self._rate_at(t) / peak:
                continue  # thinned candidate: off-peak instant
            yield self._spec(rng, index, t)
            index += 1


class TraceArrivals(ArrivalProcess):
    """Replay an explicit list of specs (or a JSONL trace file).

    Each trace entry needs an arrival time ``t``; everything else takes
    the constructor defaults.  Entries must be sorted by ``t``.
    """

    finite = True

    def __init__(
        self,
        entries: Iterable[Union[JobSpec, dict]],
        records: int = DEFAULT_RECORDS,
        system: str = "wiscsort",
        seed: int = 0,
        name_prefix: str = "job",
    ):
        self._specs: List[JobSpec] = []
        last_t = 0.0
        for index, entry in enumerate(entries):
            if isinstance(entry, JobSpec):
                spec = entry
            elif isinstance(entry, dict):
                unknown = set(entry) - {
                    "t", "records", "tenant", "system", "seed", "deadline"
                }
                if unknown:
                    raise ConfigError(
                        f"trace entry {index} has unknown fields "
                        f"{sorted(unknown)}"
                    )
                if "t" not in entry:
                    raise ConfigError(f"trace entry {index} is missing 't'")
                spec = JobSpec(
                    index=index,
                    arrival_time=float(entry["t"]),
                    name=f"{name_prefix}{index:05d}",
                    tenant=str(entry.get("tenant", "tenant0")),
                    system=str(entry.get("system", system)),
                    records=int(entry.get("records", records)),
                    seed=int(entry.get("seed", seed + index)),
                    deadline=(
                        float(entry["deadline"])
                        if entry.get("deadline") is not None
                        else None
                    ),
                )
            else:
                raise ConfigError(
                    f"trace entry {index} must be a JobSpec or a dict, "
                    f"not {type(entry).__name__}"
                )
            if spec.arrival_time < last_t:
                raise ConfigError(
                    f"trace entry {index} arrives at {spec.arrival_time!r} "
                    f"before its predecessor at {last_t!r}; sort the trace"
                )
            last_t = spec.arrival_time
            self._specs.append(spec)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "TraceArrivals":
        """Load a JSONL trace: one ``{"t": ..., ...}`` object per line."""
        entries: List[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigError(
                        f"{path}:{lineno}: not valid JSON: {exc}"
                    ) from None
                if not isinstance(obj, dict):
                    raise ConfigError(
                        f"{path}:{lineno}: each trace line must be an object"
                    )
                entries.append(obj)
        return cls(entries, **kwargs)

    def stream(self) -> Iterator[JobSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


def stream_fingerprint(specs: Iterable[JobSpec]) -> str:
    """SHA-256 over the canonical serialization of a spec stream.

    Two same-seed streams must fingerprint identically; the determinism
    tests and the CI service job compare exactly this.
    """
    import hashlib

    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.as_line().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
