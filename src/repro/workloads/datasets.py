"""Dataset sizing helpers: map paper-scale workloads to simulation scale.

All experiments scale the paper's record counts by ``DEFAULT_SCALE``
(1/1000): a "40 GB" sortbenchmark input becomes 400k records / 40 MB.
Byte counts feed the device model identically at any scale, so relative
results are scale-free; wall-clock stays in seconds.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Records per paper-GB at full scale (sortbenchmark: 100 B records).
RECORDS_PER_GB_FULL = 10_000_000

#: The reproduction's default down-scaling of record counts.
DEFAULT_SCALE = 1_000


def sortbenchmark_records_for_gb(paper_gb: float, scale: int = DEFAULT_SCALE) -> int:
    """Scaled record count for a paper-sized sortbenchmark input."""
    if paper_gb <= 0:
        raise ConfigError("paper_gb must be positive")
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    return max(1, int(paper_gb * RECORDS_PER_GB_FULL) // scale)
