"""Workload helpers: multi-tenant background clients, dataset builders
and the seeded open-loop arrival processes feeding the sort service."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    JobSpec,
    PoissonArrivals,
    TraceArrivals,
    stream_fingerprint,
)
from repro.workloads.background import BackgroundClients
from repro.workloads.datasets import sortbenchmark_records_for_gb

__all__ = [
    "ArrivalProcess",
    "BackgroundClients",
    "BurstyArrivals",
    "JobSpec",
    "PoissonArrivals",
    "TraceArrivals",
    "sortbenchmark_records_for_gb",
    "stream_fingerprint",
]
