"""Workload helpers: multi-tenant background clients and dataset builders."""

from repro.workloads.background import BackgroundClients
from repro.workloads.datasets import sortbenchmark_records_for_gb

__all__ = ["BackgroundClients", "sortbenchmark_records_for_gb"]
