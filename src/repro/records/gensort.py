"""gensort-workalike dataset generation.

The paper's inputs come from the sortbenchmark ``gensort`` tool:
fixed-size binary records with uniformly random keys.  We reproduce the
properties the algorithms depend on -- uniform random keys, fixed
geometry -- and embed the record's ordinal id at the start of each value
so permutation checking and debugging stay cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RecordFormatError
from repro.records.format import RecordFormat

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


def make_records(
    n_records: int,
    fmt: RecordFormat,
    seed: int = 0,
    ascii_keys: bool = False,
) -> np.ndarray:
    """Build an ``(n, record_size)`` uint8 matrix of gensort-style records.

    ``ascii_keys`` restricts key bytes to the printable range
    (gensort's ASCII mode); the default is full binary keys.
    """
    if n_records < 0:
        raise RecordFormatError("n_records must be >= 0")
    rng = np.random.default_rng(seed)
    records = np.zeros((n_records, fmt.record_size), dtype=np.uint8)
    if n_records == 0:
        return records
    if ascii_keys:
        keys = rng.integers(32, 127, size=(n_records, fmt.key_size), dtype=np.uint8)
    else:
        keys = rng.integers(0, 256, size=(n_records, fmt.key_size), dtype=np.uint8)
    records[:, : fmt.key_size] = keys
    if fmt.value_size > 0:
        values = _value_payload(n_records, fmt.value_size)
        records[:, fmt.key_size :] = values
    return records


def _value_payload(n_records: int, value_size: int) -> np.ndarray:
    """Deterministic value bytes: little-endian id prefix + rolling fill.

    The id prefix makes each (id, position) byte recoverable, so a
    corrupted or duplicated record is detectable without hashing.
    """
    ids = np.arange(n_records, dtype=np.uint64)
    values = np.empty((n_records, value_size), dtype=np.uint8)
    id_bytes = min(8, value_size)
    id_view = ids.reshape(-1, 1).view(np.uint8).reshape(n_records, 8)
    values[:, :id_bytes] = id_view[:, :id_bytes]
    if value_size > id_bytes:
        # uint8 arithmetic wraps mod 256 naturally, so the outer "add"
        # stays tiny in memory (no 64-bit intermediates).
        row = (np.arange(value_size - id_bytes, dtype=np.uint32) * 7 % 256).astype(
            np.uint8
        )
        per_record = ((ids * np.uint64(131) + np.uint64(7)) % np.uint64(256)).astype(
            np.uint8
        )
        values[:, id_bytes:] = per_record[:, None] + row[None, :]
    return values


def generate_dataset(
    machine: "Machine",
    name: str,
    n_records: int,
    fmt: RecordFormat | None = None,
    seed: int = 0,
    ascii_keys: bool = False,
) -> "SimFile":
    """Create a simulated file containing a gensort-style dataset.

    Generation itself is untimed (the paper's datasets pre-exist on the
    device before sorting starts).
    """
    fmt = fmt if fmt is not None else RecordFormat()
    records = make_records(n_records, fmt, seed=seed, ascii_keys=ascii_keys)
    f = machine.fs.create(name)
    f.poke(0, records.reshape(-1))
    return f
