"""Key-Length-Value (KLV) encoding for variable-length values.

Sec 2.5 / 3.7.3 of the paper: "a fixed size key is followed by the
length of the value and the value itself."  The length field is a
little-endian unsigned integer of ``len_size`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.errors import RecordFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@dataclass(frozen=True)
class KLVFormat:
    """Geometry of a KLV stream: fixed key, variable value."""

    key_size: int = 10
    len_size: int = 4
    pointer_size: int = 5

    def __post_init__(self):
        if self.key_size < 1:
            raise RecordFormatError("key_size must be >= 1")
        if self.len_size < 1 or self.len_size > 8:
            raise RecordFormatError("len_size must be in [1, 8]")
        if self.pointer_size < 1 or self.pointer_size > 8:
            raise RecordFormatError("pointer_size must be in [1, 8]")

    @property
    def header_size(self) -> int:
        """Bytes before the value: key + length field."""
        return self.key_size + self.len_size

    @property
    def index_entry_size(self) -> int:
        """IndexMap entry for KLV: key + pointer + value length (Sec 3.7.3)."""
        return self.key_size + self.pointer_size + self.len_size

    def max_value_size(self) -> int:
        return (1 << (8 * self.len_size)) - 1


def encode_klv(
    keys: np.ndarray, values: List[np.ndarray], fmt: KLVFormat
) -> np.ndarray:
    """Serialise parallel key/value collections into one KLV byte stream."""
    if keys.ndim != 2 or keys.shape[1] != fmt.key_size:
        raise RecordFormatError(
            f"keys must be (n, {fmt.key_size}), got {keys.shape}"
        )
    if keys.shape[0] != len(values):
        raise RecordFormatError("keys and values must have equal counts")
    chunks: List[np.ndarray] = []
    max_len = fmt.max_value_size()
    for key, value in zip(keys, values):
        value = np.ascontiguousarray(value, dtype=np.uint8).reshape(-1)
        if value.size > max_len:
            raise RecordFormatError(
                f"value of {value.size}B exceeds len field max {max_len}B"
            )
        header = np.empty(fmt.header_size, dtype=np.uint8)
        header[: fmt.key_size] = key
        length = int(value.size)
        for i in range(fmt.len_size):
            header[fmt.key_size + i] = (length >> (8 * i)) & 0xFF
        chunks.append(header)
        chunks.append(value)
    if not chunks:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(chunks)


def decode_klv(stream: np.ndarray, fmt: KLVFormat) -> List[Tuple[bytes, bytes]]:
    """Parse a KLV byte stream into ``(key, value)`` pairs."""
    stream = np.ascontiguousarray(stream, dtype=np.uint8).reshape(-1)
    out: List[Tuple[bytes, bytes]] = []
    pos = 0
    total = stream.size
    while pos < total:
        if pos + fmt.header_size > total:
            raise RecordFormatError(f"truncated KLV header at offset {pos}")
        key = stream[pos : pos + fmt.key_size].tobytes()
        length = 0
        for i in range(fmt.len_size):
            length |= int(stream[pos + fmt.key_size + i]) << (8 * i)
        pos += fmt.header_size
        if pos + length > total:
            raise RecordFormatError(f"truncated KLV value at offset {pos}")
        out.append((key, stream[pos : pos + length].tobytes()))
        pos += length
    return out


def generate_klv_dataset(
    machine: "Machine",
    name: str,
    n_records: int,
    fmt: KLVFormat | None = None,
    min_value: int = 20,
    max_value: int = 200,
    seed: int = 0,
) -> "SimFile":
    """Create a simulated file with random variable-length KLV records."""
    fmt = fmt if fmt is not None else KLVFormat()
    if min_value < 0 or max_value < min_value:
        raise RecordFormatError("need 0 <= min_value <= max_value")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 256, size=(n_records, fmt.key_size), dtype=np.uint8)
    lengths = rng.integers(min_value, max_value + 1, size=n_records)
    values = [
        rng.integers(0, 256, size=int(length), dtype=np.uint8) for length in lengths
    ]
    stream = encode_klv(keys, values, fmt)
    f = machine.fs.create(name)
    f.poke(0, stream)
    return f
