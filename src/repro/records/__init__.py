"""Record formats, workload generation and output validation.

Implements the sortbenchmark-style fixed-size binary records the paper
evaluates on (10 B keys + 90 B values by default), the Key-Length-Value
(KLV) encoding for variable-length values (Sec 2.5), a gensort-workalike
generator, and a valsort-workalike validator (sorted order + permutation
check).
"""

from repro.records.format import (
    RecordFormat,
    key_columns,
    key_sort_indices,
    keys_ascending,
    record_sort_indices,
)
from repro.records.gensort import generate_dataset, make_records
from repro.records.klv import KLVFormat, decode_klv, encode_klv, generate_klv_dataset
from repro.records.validate import (
    validate_sorted_file,
    validate_sorted_klv,
    validate_sorted_records,
)

__all__ = [
    "RecordFormat",
    "key_columns",
    "key_sort_indices",
    "keys_ascending",
    "record_sort_indices",
    "generate_dataset",
    "make_records",
    "KLVFormat",
    "encode_klv",
    "decode_klv",
    "generate_klv_dataset",
    "validate_sorted_file",
    "validate_sorted_klv",
    "validate_sorted_records",
]
