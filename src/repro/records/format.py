"""Fixed-size record geometry and byte-exact key ordering.

Keys are arbitrary binary strings compared lexicographically as unsigned
bytes (gensort semantics).  To sort them exactly and fast we convert the
key bytes to big-endian uint64 columns and use :func:`numpy.lexsort`,
which is stable and handles embedded zero bytes correctly (numpy's ``S``
dtype would not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import RecordFormatError
from repro.units import ceil_div


@dataclass(frozen=True)
class RecordFormat:
    """Geometry of a fixed-size sortbenchmark record.

    The default matches the paper's workloads: 10-byte key, 90-byte
    value, 5-byte pointers in IndexMaps (a 5-byte pointer addresses 2^40
    record offsets, Sec 3.3 footnote).
    """

    key_size: int = 10
    value_size: int = 90
    pointer_size: int = 5

    def __post_init__(self):
        if self.key_size < 1:
            raise RecordFormatError("key_size must be >= 1")
        if self.value_size < 0:
            raise RecordFormatError("value_size must be >= 0")
        if self.pointer_size < 1 or self.pointer_size > 8:
            raise RecordFormatError("pointer_size must be in [1, 8]")

    @property
    def record_size(self) -> int:
        return self.key_size + self.value_size

    @property
    def index_entry_size(self) -> int:
        """Bytes per IndexMap entry: key + pointer."""
        return self.key_size + self.pointer_size

    def file_bytes(self, n_records: int) -> int:
        return n_records * self.record_size

    def max_addressable_records(self) -> int:
        """How many record slots a pointer of this width can address."""
        return 1 << (8 * self.pointer_size)

    def describe(self) -> str:
        return (
            f"{self.key_size}B key + {self.value_size}B value "
            f"({self.record_size}B records, {self.pointer_size}B pointers)"
        )


def key_columns(keys: np.ndarray) -> List[np.ndarray]:
    """Convert an ``(n, k)`` uint8 key matrix to big-endian u64 columns.

    The returned columns are most-significant first: comparing rows by
    these columns in order is exactly unsigned lexicographic comparison
    of the original byte strings.
    """
    if keys.ndim != 2:
        raise RecordFormatError(f"keys must be 2-D, got shape {keys.shape}")
    n, k = keys.shape
    width = ceil_div(max(k, 1), 8) * 8
    padded = np.zeros((n, width), dtype=np.uint8)
    if k:
        padded[:, :k] = keys
    cols = []
    for j in range(width // 8):
        chunk = np.ascontiguousarray(padded[:, j * 8 : (j + 1) * 8])
        cols.append(chunk.view(">u8").reshape(n))
    return cols


def key_words(key) -> tuple:
    """One key (bytes or 1-D uint8 array) as big-endian uint64 words.

    Zero-pads on the right to a multiple of 8 bytes, matching the column
    layout of :func:`key_columns`: comparing the word tuples is exactly
    unsigned lexicographic comparison of the original byte strings.
    """
    b = bytes(key)
    width = ceil_div(max(len(b), 1), 8) * 8
    if len(b) < width:
        b = b.ljust(width, b"\x00")
    return tuple(
        int.from_bytes(b[j : j + 8], "big") for j in range(0, width, 8)
    )


def key_sort_indices(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of binary keys (rows of an ``(n, k)`` uint8 matrix)."""
    cols = key_columns(keys)
    # lexsort treats the LAST key as primary, so feed columns reversed.
    return np.lexsort(tuple(reversed(cols)))


def record_sort_indices(records: np.ndarray, key_size: int) -> np.ndarray:
    """Stable argsort of fixed-size records by their leading key bytes."""
    if records.ndim != 2:
        raise RecordFormatError("records must be a 2-D uint8 matrix")
    if key_size > records.shape[1]:
        raise RecordFormatError("key_size exceeds record size")
    return key_sort_indices(records[:, :key_size])


def keys_ascending(keys: np.ndarray) -> bool:
    """True iff consecutive rows are in non-decreasing key order."""
    if keys.shape[0] <= 1:
        return True
    cols = key_columns(keys)
    n = keys.shape[0]
    # undecided[i] True while rows i and i+1 compare equal so far.
    undecided = np.ones(n - 1, dtype=bool)
    for col in cols:
        left, right = col[:-1], col[1:]
        if np.any(undecided & (left > right)):
            return False
        undecided &= left == right
        if not undecided.any():
            return True
    return True


def leq_mask(keys: np.ndarray, bound: np.ndarray) -> np.ndarray:
    """Boolean mask: row key <= ``bound`` (unsigned lexicographic).

    ``bound`` is a single key as a 1-D uint8 array of the same width.
    """
    if keys.ndim != 2:
        raise RecordFormatError("keys must be 2-D")
    bound = np.asarray(bound, dtype=np.uint8).reshape(1, -1)
    if bound.shape[1] != keys.shape[1]:
        raise RecordFormatError("bound width must match key width")
    cols = key_columns(keys)
    bcols = [c[0] for c in key_columns(bound)]
    n = keys.shape[0]
    less = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for col, b in zip(cols, bcols):
        less |= undecided & (col < b)
        undecided &= col == b
    return less | undecided


def min_key(candidates: np.ndarray) -> np.ndarray:
    """Lexicographic minimum row of an ``(n, k)`` uint8 key matrix."""
    if candidates.ndim != 2 or candidates.shape[0] == 0:
        raise RecordFormatError("need a non-empty 2-D key matrix")
    order = key_sort_indices(candidates)
    return candidates[order[0]]
