"""valsort-workalike output validation.

The sortbenchmark rules require the output to be "a permutation of the
input file, sorted in key ascending order" (Sec 4.1).  We check both
properties byte-exactly:

* sortedness: consecutive keys compare non-decreasing;
* permutation: the multisets of whole records in input and output match
  (via a canonical sort of each side's full record bytes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError
from repro.records.format import RecordFormat, key_columns, keys_ascending
from repro.records.klv import KLVFormat, decode_klv

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.file import SimFile


def _as_record_matrix(data: np.ndarray, record_size: int) -> np.ndarray:
    if data.size % record_size:
        raise ValidationError(
            f"file size {data.size} is not a multiple of record size {record_size}"
        )
    return data.reshape(-1, record_size)


def _canonical_order(records: np.ndarray) -> np.ndarray:
    """Indices that sort records by their entire byte content."""
    cols = key_columns(records)
    return np.lexsort(tuple(reversed(cols)))


def validate_sorted_records(
    input_records: np.ndarray, output_records: np.ndarray, key_size: int
) -> None:
    """Raise :class:`ValidationError` unless output is a sorted permutation."""
    if input_records.shape != output_records.shape:
        raise ValidationError(
            f"record counts differ: input {input_records.shape} vs "
            f"output {output_records.shape}"
        )
    if not keys_ascending(output_records[:, :key_size]):
        raise ValidationError("output keys are not in ascending order")
    left = input_records[_canonical_order(input_records)]
    right = output_records[_canonical_order(output_records)]
    if not np.array_equal(left, right):
        raise ValidationError("output is not a permutation of the input records")


def validate_sorted_file(
    input_file: "SimFile", output_file: "SimFile", fmt: RecordFormat
) -> int:
    """Validate fixed-size-record output; returns the record count."""
    input_data = input_file.peek()
    output_data = output_file.peek()
    input_records = _as_record_matrix(input_data, fmt.record_size)
    output_records = _as_record_matrix(output_data, fmt.record_size)
    validate_sorted_records(input_records, output_records, fmt.key_size)
    return input_records.shape[0]


def validate_sorted_klv(
    input_file: "SimFile", output_file: "SimFile", fmt: KLVFormat
) -> int:
    """Validate variable-length KLV output; returns the record count."""
    input_pairs = decode_klv(input_file.peek(), fmt)
    output_pairs = decode_klv(output_file.peek(), fmt)
    if len(input_pairs) != len(output_pairs):
        raise ValidationError(
            f"record counts differ: {len(input_pairs)} vs {len(output_pairs)}"
        )
    keys = [k for k, _ in output_pairs]
    if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
        raise ValidationError("KLV output keys are not in ascending order")
    if sorted(input_pairs) != sorted(output_pairs):
        raise ValidationError("KLV output is not a permutation of the input")
    return len(input_pairs)
