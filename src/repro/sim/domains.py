"""Multi-device rate-model routing: one engine, N independent devices.

A :class:`DomainRouter` is a :class:`~repro.sim.fluid.RateModel` that
hosts several inner rate models, one per *domain* (a device/socket
pair).  Ops carry their domain in ``attrs["domain"]``; the router maps
each domain to its own resource group, so the fluid scheduler's
incremental re-rating isolates devices from each other -- issuing an op
on shard 2 never re-rates shard 0's in-flight ops.

The kernel batches re-rates: when several groups are dirty at the same
instant, :meth:`FluidScheduler.rerate` collects the affected ops of all
dirty groups and calls ``assign`` once.  The router therefore
sub-partitions its input by domain before delegating, preserving each
domain's issue order so the inner models (and their memo caches) see
exactly what they would have seen standalone.

Modelling note: each domain owns a full inner model including its host
resources.  A cluster of N BRAID devices is modelled as N single-socket
NUMA nodes (the paper's testbed is itself a multi-DIMM box); cross-
device traffic pays cost on both sockets via one op per side.

The domain key ``"net"`` is conventionally reserved for the cluster
interconnect: :class:`~repro.cluster.cluster.Cluster` registers a
:class:`~repro.sim.fluid.NetLinkRateModel` under it so cross-shard
transfers (``kind="net"`` ops tagged with ``src``/``dst`` endpoints)
share one max-min fair bandwidth pool, isolated from device ops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.fluid import FluidOp, RateModel


class DomainRouter(RateModel):
    """Dispatches rate assignment to one inner model per domain."""

    def __init__(self) -> None:
        self._models: Dict[str, RateModel] = {}

    # ------------------------------------------------------------------
    def add_domain(self, key: str, model: RateModel) -> None:
        """Register ``model`` to rate all ops tagged with domain ``key``."""
        if not isinstance(key, str) or not key:
            raise ConfigError(f"domain key must be a non-empty string, got {key!r}")
        if key in self._models:
            raise ConfigError(f"domain {key!r} is already registered")
        self._models[key] = model

    def model_for(self, key: str) -> RateModel:
        return self._models[key]

    @property
    def domains(self) -> Tuple[str, ...]:
        """Registered domain keys, in registration order."""
        return tuple(self._models)

    # ------------------------------------------------------------------
    def resource_key(self, op: FluidOp) -> str:
        """The op's domain: its resource group in the fluid scheduler."""
        attrs = op.attrs
        domain = None if attrs is None else attrs.get("domain")
        if domain is None:
            raise SimulationError(
                f"op {op!r} has no domain attribute; every op issued on a "
                f"shared multi-domain engine must come from a domain-tagged "
                f"Machine"
            )
        return domain

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        """Partition ``ops`` by domain and delegate to the inner models.

        Buckets are keyed in first-seen order and each bucket preserves
        the caller's (issue) order, so per-domain assignment is
        bit-identical to running that domain's model standalone.
        """
        buckets: Dict[str, List[FluidOp]] = {}
        order: List[str] = []
        for op in ops:
            key = op._res_key
            if key is None:
                key = self.resource_key(op)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [op]
                order.append(key)
            else:
                bucket.append(op)
        rates: Dict[FluidOp, float] = {}
        for key in order:
            model = self._models.get(key)
            if model is None:
                raise SimulationError(f"no rate model registered for domain {key!r}")
            rates.update(model.assign(buckets[key]))
        return rates

    # ------------------------------------------------------------------
    # Vectorized-kernel protocol: a resource group is exactly one
    # domain, so both hooks delegate wholesale to that domain's inner
    # model.  Domains whose model lacks the protocol simply stay on the
    # scalar path (vector_state -> None); the scheduler routes each
    # promoted group's batch solve back through this single domain.
    def vector_state(self, key):
        model = self._models.get(key)
        if model is None:
            return None
        return model.vector_state(key)

    def vector_sig(self, op: FluidOp):
        return self._models[op._res_key].vector_sig(op)
