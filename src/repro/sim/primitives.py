"""Synchronisation primitives for simulated threads.

All primitives are bound to an :class:`~repro.sim.engine.Engine` at
construction.  Blocking operations return command objects that must be
``yield``-ed from a process; non-blocking operations (``release``,
``try_get``) are ordinary method calls.

Example::

    barrier = Barrier(engine, parties=4)

    def worker():
        ...
        yield barrier.wait()        # rendezvous with the other workers
        ...
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError


class _AcquireCommand:
    __slots__ = ("sem",)

    def __init__(self, sem: "Semaphore"):
        self.sem = sem

    def _sim_execute(self, engine, proc) -> None:
        if self.sem._count > 0:
            self.sem._count -= 1
            if engine.race is not None:
                # Fast-path acquire never passes through block/resume;
                # the prior releaser's edge lives in the resource clock.
                engine.race.on_acquire(proc, self.sem)
            proc._resume_value = None
            engine._ready.append(proc)
        else:
            engine.block(proc, self.sem, "acquire")
            self.sem._waiters.append(proc)


class Semaphore:
    """Counting semaphore.

    ``yield sem.acquire()`` blocks while the count is zero;
    ``sem.release()`` is a plain call and wakes one waiter if any.
    """

    def __init__(
        self,
        engine,
        count: int = 1,
        name: str = "",
        reason: Optional[str] = None,
    ):
        if count < 0:
            raise ValueError("semaphore count must be >= 0")
        self._engine = engine
        self._count = count
        self.name = name
        #: Blocked-reason tag read by the trace analyzer when a process
        #: parks here (e.g. ``"write-slot"``, ``"dram"``); observe-only.
        self.reason = reason
        self._waiters: deque = deque()

    @property
    def value(self) -> int:
        return self._count

    def acquire(self) -> _AcquireCommand:
        return _AcquireCommand(self)

    def release(self) -> None:
        if self._engine.race is not None:
            # Release edge: the releaser's clock flows into the
            # semaphore so any later acquirer is ordered after it.
            self._engine.race.on_release(self)
        # Skip waiters cancelled while parked (Engine.cancel_tree leaves
        # them in the deque); handing the slot to one would lose it.
        while self._waiters:
            proc = self._waiters.popleft()
            if proc.done:
                continue
            self._engine.resume(proc, None)
            return
        self._count += 1


class _BarrierCommand:
    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier"):
        self.barrier = barrier

    def _sim_execute(self, engine, proc) -> None:
        bar = self.barrier
        bar._arrived += 1
        if bar._arrived == bar.parties:
            # Last arrival releases everyone; the barrier is cyclic.
            bar._arrived = 0
            bar.generation += 1
            if engine.race is not None:
                # The last arriver inherits every earlier arrival's
                # clock (merged into the barrier at block time); the
                # resumes below then propagate it to all waiters,
                # giving the all-to-all rendezvous ordering.
                engine.race.on_acquire(proc, bar)
            waiters, bar._waiters = bar._waiters, []
            for waiter in waiters:
                engine.resume(waiter, None)
            proc._resume_value = None
            engine._ready.append(proc)
        else:
            engine.block(proc, bar, "wait")
            bar._waiters.append(proc)


class Barrier:
    """Cyclic barrier for a fixed number of parties."""

    def __init__(
        self,
        engine,
        parties: int,
        name: str = "",
        reason: Optional[str] = "barrier",
    ):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self._engine = engine
        self.parties = parties
        self.name = name
        #: Blocked-reason tag for the trace analyzer (see Semaphore).
        self.reason = reason
        self.generation = 0
        self._arrived = 0
        self._waiters: list = []

    def wait(self) -> _BarrierCommand:
        return _BarrierCommand(self)


class _PutCommand:
    __slots__ = ("queue", "item")

    def __init__(self, queue: "SimQueue", item: Any):
        self.queue = queue
        self.item = item

    def _sim_execute(self, engine, proc) -> None:
        q = self.queue
        if q.maxsize is not None and len(q._items) >= q.maxsize:
            # block() merges the putter into the queue's resource clock
            # (verb "put"), so the item keeps its producer edge even
            # though delivery happens later from another step.
            engine.block(proc, q, "put")
            q._put_waiters.append((proc, self.item))
            return
        if engine.race is not None:
            # Put edge: the producer's clock flows into the queue so
            # whoever gets the item is ordered after the put.
            engine.race.on_release(q)
        q._deliver(engine, self.item)
        proc._resume_value = None
        engine._ready.append(proc)


class _GetCommand:
    __slots__ = ("queue",)

    def __init__(self, queue: "SimQueue"):
        self.queue = queue

    def _sim_execute(self, engine, proc) -> None:
        q = self.queue
        if q._items:
            item = q._items.popleft()
            if engine.race is not None:
                # Fast-path get: inherit the producers' edges from the
                # queue's resource clock (no block/resume happened).
                engine.race.on_acquire(proc, q)
            q._refill(engine)
            proc._resume_value = item
            engine._ready.append(proc)
        else:
            engine.block(proc, q, "get")
            q._get_waiters.append(proc)


class SimQueue:
    """Bounded FIFO queue between simulated threads.

    ``yield q.put(item)`` blocks when full; ``yield q.get()`` blocks when
    empty.  ``maxsize=None`` means unbounded.
    """

    def __init__(
        self,
        engine,
        maxsize: Optional[int] = None,
        name: str = "",
        reason: Optional[str] = None,
    ):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 or None")
        self._engine = engine
        self.maxsize = maxsize
        self.name = name
        #: Blocked-reason tag for the trace analyzer (see Semaphore).
        self.reason = reason
        self._items: deque = deque()
        self._get_waiters: deque = deque()
        self._put_waiters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> _PutCommand:
        return _PutCommand(self, item)

    def get(self) -> _GetCommand:
        return _GetCommand(self)

    def try_get(self) -> Any:
        """Non-blocking get; raises if the queue is empty."""
        if not self._items:
            raise SimulationError("try_get on empty SimQueue")
        item = self._items.popleft()
        race = self._engine.race
        if race is not None:
            race.on_acquire(race._current, self)
        self._refill(self._engine)
        return item

    def _deliver(self, engine, item: Any) -> None:
        """Hand ``item`` to a blocked getter, or store it.

        Getters cancelled while parked are skipped, never handed an
        item (it would vanish with them).
        """
        while self._get_waiters:
            proc = self._get_waiters.popleft()
            if proc.done:
                continue
            engine.resume(proc, item)
            return
        self._items.append(item)

    def _refill(self, engine) -> None:
        """After a slot freed, admit one blocked putter (if any).

        A putter cancelled while parked never delivered its item; drop
        it and offer the slot to the next one.
        """
        while self._put_waiters:
            proc, item = self._put_waiters.popleft()
            if proc.done:
                continue
            self._deliver(engine, item)
            engine.resume(proc, None)
            return
