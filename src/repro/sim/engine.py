"""Generator-based discrete-event engine.

Simulated threads are plain Python generators that ``yield`` command
objects; the engine interprets each command, blocks or resumes the
process, and advances the simulated clock.  Supported commands:

* :class:`~repro.sim.fluid.FluidOp` -- timed work; resumes when complete
  with the op itself (or the value of ``op.on_complete(op)`` if set).
* :class:`Sleep` -- resume after a fixed simulated delay.
* :class:`Spawn` -- create a child process; resumes immediately with the
  new :class:`Process`.
* :class:`Join` -- wait for one process or a list of processes; resumes
  with the result (or list of results).
* :class:`ParallelOps` -- issue several ops at the same instant and
  resume with their results once all complete; avoids spawning a child
  process per op.
* :class:`Now` -- resumes immediately with the current simulated time.
* any object exposing ``_sim_execute(engine, process)`` -- used by the
  synchronisation primitives in :mod:`repro.sim.primitives`.

The engine is single-threaded and deterministic: ready processes run in
FIFO order and ties in event time break by insertion sequence.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.sim.fluid import FluidOp, FluidScheduler, RateModel

SimGenerator = Generator[Any, Any, Any]


class Sleep:
    """Command: suspend the issuing process for ``dt`` simulated seconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"Sleep duration must be >= 0, got {dt}")
        self.dt = dt


class Spawn:
    """Command: create a child process running ``gen``."""

    __slots__ = ("gen", "name")

    def __init__(self, gen: SimGenerator, name: str = ""):
        self.gen = gen
        self.name = name


class Join:
    """Command: block until the target process(es) finish.

    Resumes with the single result when joining one process, or a list
    of results (in argument order) when joining an iterable.
    """

    __slots__ = ("targets", "single")

    def __init__(self, targets: "Process | Iterable[Process]"):
        if isinstance(targets, Process):
            self.targets = [targets]
            self.single = True
        else:
            self.targets = list(targets)
            self.single = False


class Now:
    """Command: resume immediately with the current simulated time."""

    __slots__ = ()


class ParallelOps:
    """Command: run several ops concurrently, resume with all results.

    Semantically identical to spawning one child process per op and
    joining them -- all ops enter the fluid scheduler at the same
    simulated instant either way -- but costs one engine command instead
    of ``2n + 1``.  Resumes with the list of per-op completion values in
    argument order.

    When the engine's ``batch_ops`` flag is set, homogeneous ops in one
    ``ParallelOps`` issue (same kind/tag/attrs) are aggregated into a
    single carrier op with summed work and summed thread count; see
    :meth:`Engine._coalesce_parallel`.
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Iterable[FluidOp]):
        self.ops = list(ops)

    def _sim_execute(self, engine: "Engine", proc: "Process") -> None:
        engine._issue_parallel(self.ops, proc)


class Process:
    """A simulated thread of control wrapping a generator."""

    __slots__ = (
        "gen",
        "name",
        "pid",
        "done",
        "result",
        "cancelled",
        "children",
        "blocked_on",
        "_callbacks",
        "_resume_value",
        "_resume_exc",
    )

    def __init__(self, gen: SimGenerator, name: str, pid: int):
        self.gen = gen
        self.name = name
        self.pid = pid
        self.done = False
        self.result: Any = None
        #: True when torn down by :meth:`Engine.cancel_tree` (the done
        #: flag is also set; result stays None).
        self.cancelled = False
        #: Processes spawned *by* this process (Spawn command), so a
        #: cancellation can take down the whole subtree.
        self.children: list["Process"] = []
        #: What the process currently waits on, maintained by the
        #: engine at every block site: a FluidOp, a list of carrier
        #: FluidOps (ParallelOps), a Sleep/Join command, or a primitive
        #: resource.  None while ready/running.  Lets ``cancel_tree``
        #: withdraw in-flight work and fix blocked-process accounting.
        self.blocked_on: Any = None
        self._callbacks: list[Callable[["Process"], None]] = []
        self._resume_value: Any = None
        self._resume_exc: Optional[BaseException] = None

    def add_done_callback(self, fn: Callable[["Process"], None]) -> None:
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, pid={self.pid}, {state})"


class Engine:
    """The event loop: owns the clock, ready queue and fluid scheduler."""

    def __init__(
        self, rate_model: RateModel, batch_ops: bool = False, start_time: float = 0.0
    ):
        #: ``start_time`` supports post-crash reboots: the replacement
        #: engine continues the simulated clock of its predecessor.
        self.now = start_time
        self.fluid = FluidScheduler(rate_model, start_time=start_time)
        #: Aggregate homogeneous ops issued in one ParallelOps command
        #: into a single carrier op.  Off by default: batching changes
        #: float summation order, so results are equivalent only to
        #: ~1e-9 relative rather than bit-identical.
        self.batch_ops = batch_ops
        self._ready: deque[Process] = deque()
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._pids = itertools.count(1)
        self._blocked = 0
        self._live_processes = 0
        #: True while ``run`` / ``run_until`` is executing; raw storage
        #: access outside the loop (fixtures, post-run validation) is
        #: legitimate and the charge auditor ignores it.
        self.running = False
        #: Optional :class:`repro.analysis.sanitizer.SimSanitizer`.  All
        #: hook sites guard on ``is None`` so the fast path costs one
        #: attribute load when no sanitizer is installed.
        self.sanitizer = None
        #: Optional :class:`repro.trace.Tracer`.  Same contract as the
        #: sanitizer: observe-only, every hook guards on ``is None``.
        self.tracer = None
        #: Optional :class:`repro.analysis.race.RaceDetector`.  Same
        #: contract again: observe-only, hooks guard on ``is None``.
        self.race = None
        #: Optional :class:`repro.analysis.race.SchedulePermuter`.  When
        #: set, same-instant ready-queue order and completion-tie order
        #: are deterministically permuted from its seed; every permuted
        #: schedule is legal, so correct workloads must produce
        #: byte-identical output.  ``None`` keeps the stable FIFO order.
        self.schedule_fuzz = None
        # Self-performance counters (read by repro.perf).
        self.steps = 0
        self.advances = 0
        self.timer_events = 0
        self.batched_ops = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def spawn(self, gen: SimGenerator, name: str = "") -> Process:
        """Register ``gen`` as a new ready process."""
        proc = Process(gen, name or f"proc-{next(self._pids)}", next(self._pids))
        self._live_processes += 1
        self._ready.append(proc)
        if self.race is not None:
            # Spawn edge: the child inherits the spawner's clock (the
            # detector reads its own _current to find the spawner).
            self.race.on_spawn(proc)
        tracer = self.tracer
        if tracer is not None:
            if tracer.analyze:
                tracer.analyze_spawn(proc)
            if tracer.detail:
                tracer.sched_event("spawn", proc)
        return proc

    def resume(
        self,
        proc: Process,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Make a blocked process ready again (used by primitives).

        When ``exc`` is given the process is resumed by *throwing* the
        exception into its generator at the suspended ``yield`` -- the
        retry layer uses this to escalate permanent device faults into
        the issuing simulated thread.
        """
        if proc.done:
            # A cancelled (or already finished) process: its blocked
            # accounting was settled at cancellation time, and late
            # wakeups from in-flight callbacks must not revive it.
            return
        if self.race is not None:
            # Resume edge, before blocked_on clears: the waker's clock
            # (and, for primitives/joins, the resource's) merges in.
            self.race.on_resume(proc, proc.blocked_on)
        tracer = self.tracer
        if tracer is not None:
            if tracer.analyze:
                # Before blocked_on clears: the wait record snapshots
                # what the process was parked on.
                tracer.wait_end(proc)
            if tracer.detail:
                tracer.sched_event("resume", proc)
        proc.blocked_on = None
        self._blocked -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_wake(proc)
        proc._resume_value = value
        proc._resume_exc = exc
        self._ready.append(proc)

    def issue_op(self, op: FluidOp, collector: Callable[[FluidOp], None]) -> None:
        """Issue a fluid op outside any process context.

        ``collector(op)`` runs when the op completes; used by command
        objects (retrying I/O) that manage their own completion logic.
        """
        op._collector = collector
        self.fluid.add(op, self.now)
        if op.finished_at is not None:
            # Zero-work op completed instantly.
            self._complete_op(op)

    def block(
        self, proc: Optional[Process] = None, resource: Any = None, verb: str = "wait"
    ) -> None:
        """Account for a process that a primitive has parked.

        Callers pass the parked process and the resource it waits on so
        an installed sanitizer can maintain the waits-for graph used in
        deadlock diagnostics; both are optional and unused otherwise.
        """
        self._blocked += 1
        if proc is not None:
            proc.blocked_on = resource if resource is not None else verb
        if self.race is not None and proc is not None:
            self.race.on_block(proc, resource, verb)
        if self.sanitizer is not None and proc is not None:
            self.sanitizer.on_wait(proc, resource, verb)
        tracer = self.tracer
        if tracer is not None and proc is not None:
            if tracer.analyze:
                tracer.wait_begin(
                    proc,
                    "primitive",
                    reason=getattr(resource, "reason", None) or verb,
                    resource=resource,
                )
            if tracer.detail:
                tracer.sched_event(f"block:{verb}", proc)

    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute simulated time ``t``."""
        if t < self.now:
            raise SimulationError(f"cannot schedule in the past ({t} < {self.now})")
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def cancel_tree(self, root: Process) -> int:
        """Cancel ``root`` and every process it (transitively) spawned.

        The speculative-execution primitive: when two redundant tasks
        race, the first completion wins and the loser's whole subtree is
        withdrawn at the current instant.  The scheduler is settled
        first, so work the losers performed *up to now* is fully charged
        and observed; only their future work disappears.  For each live
        process in the subtree: its in-flight fluid ops are withdrawn
        (:meth:`FluidScheduler.cancel_op`), its blocked-process
        accounting is reversed, its generator is closed (running
        ``finally`` blocks), and it finishes with result ``None`` --
        done-callbacks (Join waiters) still fire, so a joiner of a
        cancelled process resumes with None rather than deadlocking.
        Processes parked on primitives stay in the waiter queues; the
        primitives skip done processes on wakeup.  Deterministic: the
        subtree is walked in spawn order and op teardown follows it.

        Returns the number of processes actually cancelled.
        """
        self.fluid.settle(self.now)
        cancelled = 0
        stack = [root]
        while stack:
            proc = stack.pop()
            # Children are appended in spawn order; extending first
            # keeps the walk covering processes spawned before this
            # step regardless of proc's own state.
            stack.extend(reversed(proc.children))
            if proc.done:
                continue
            proc.cancelled = True
            if self.tracer is not None and self.tracer.analyze:
                # Close any open wait record while blocked_on is still
                # set, then stamp the process's end time.
                self.tracer.wait_end(proc)
                self.tracer.analyze_finish(proc)
            blocked = proc.blocked_on
            proc.blocked_on = None
            if blocked is not None:
                self._blocked -= 1
                if isinstance(blocked, FluidOp):
                    blocked._waiter = None
                    blocked._collector = None
                    self.fluid.cancel_op(blocked)
                elif isinstance(blocked, list):
                    for op in blocked:
                        if isinstance(op, FluidOp):
                            op._waiter = None
                            op._collector = None
                            self.fluid.cancel_op(op)
            self._live_processes -= 1
            try:
                proc.gen.close()
            except Exception:
                pass  # a finally block misbehaving must not stop teardown
            proc._finish(None)
            # Cancellation is a final event like StopIteration: the
            # sanitizer drops the proc from the waits-for graph and the
            # race detector retires its vector clock, so neither leaks
            # entries for coroutines that will never resume.
            if self.sanitizer is not None:
                self.sanitizer.on_proc_cancel(proc, self.now)
            if self.race is not None:
                self.race.on_cancel(proc, self.now)
            if self.tracer is not None and self.tracer.detail:
                self.tracer.sched_event("cancel", proc)
            cancelled += 1
        return cancelled

    def run(self) -> float:
        """Run until no work remains; returns the final simulated time."""
        self.running = True
        try:
            while True:
                self._drain_ready()
                if self._settle_and_complete():
                    continue
                if not self._advance():
                    break
        finally:
            self.running = False
            if self.tracer is not None:
                self.tracer._current = None
            if self.race is not None:
                self.race._current = None
        if self._blocked:
            raise DeadlockError(
                f"simulation ended with {self._blocked} blocked process(es)"
                + self._deadlock_detail()
            )
        return self.now

    def run_until(self, proc: Process) -> Any:
        """Run until ``proc`` finishes, even if other work remains.

        Used when perpetual background processes (multi-tenant clients)
        share the engine: the clock stops advancing the moment the
        watched process completes, and in-flight background ops are
        simply abandoned.  Raises if the engine runs dry first.
        """
        self.running = True
        try:
            while not proc.done:
                self._drain_ready()
                if proc.done:
                    break
                if self._settle_and_complete():
                    continue
                if not self._advance():
                    raise DeadlockError(
                        f"engine ran out of events before {proc!r} finished"
                        + self._deadlock_detail()
                    )
        finally:
            self.running = False
            if self.tracer is not None:
                self.tracer._current = None
            if self.race is not None:
                self.race._current = None
        return proc.result

    def run_process(self, gen: SimGenerator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, return its result."""
        proc = self.spawn(gen, name)
        self.run()
        if not proc.done:
            raise SimulationError(f"{proc!r} did not finish")
        return proc.result

    def _deadlock_detail(self) -> str:
        """Sanitizer waits-for graph as an error-message suffix.

        Without a sanitizer, points at the ``--sanitize`` flag instead.
        """
        if self.sanitizer is None:
            return " (run with --sanitize for a waits-for graph)"
        return "\n" + self.sanitizer.deadlock_detail()

    # ------------------------------------------------------------------
    # Event loop internals
    # ------------------------------------------------------------------
    def _drain_ready(self) -> None:
        fuzz = self.schedule_fuzz
        if fuzz is None:
            while self._ready:
                self._step(self._ready.popleft())
            return
        # Schedule fuzzing: step an arbitrary (seed-determined) ready
        # process instead of the FIFO head.  The rotate dance pops index
        # i and restores the relative order of the rest, so one pick
        # permutes without reshuffling the whole deque.
        ready = self._ready
        while ready:
            n = len(ready)
            i = fuzz.pick(n) if n > 1 else 0
            if i:
                ready.rotate(-i)
            proc = ready.popleft()
            if i:
                ready.rotate(i)
            self._step(proc)

    def _settle_and_complete(self) -> bool:
        """Re-rate if needed and wake zero-time completions.

        Returns True when progress was made at the current instant.
        """
        fluid = self.fluid
        if not fluid.dirty:
            return False
        now = self.now
        fluid.settle(now)
        fluid.rerate(now)
        # pop_completed coalesces every op finishing at this instant and
        # returns them in ascending op id; completing them in that order
        # keeps waiter wakeups deterministic under both kernel paths.
        done = fluid.pop_completed(now)
        if done:
            if self.schedule_fuzz is not None and len(done) > 1:
                # Completion tie-break fuzzing: any delivery order of
                # ops finishing at the same instant is a legal schedule.
                self.schedule_fuzz.shuffle(done)
            for op in done:
                self._complete_op(op)
            return True
        return False

    def _advance(self) -> bool:
        """Advance the clock to the next event; False when nothing remains."""
        fluid = self.fluid
        t_fluid = fluid.next_completion(self.now)
        t_heap = self._heap[0][0] if self._heap else None
        if t_fluid is None and t_heap is None:
            if fluid.active:
                raise DeadlockError(
                    "all in-flight ops are stalled at rate 0 and no timed "
                    "events remain" + self._deadlock_detail()
                )
            return False
        if t_heap is None or (t_fluid is not None and t_fluid <= t_heap):
            target = t_fluid
        else:
            target = t_heap
        assert target is not None and target >= self.now
        self.now = target
        self.advances += 1
        fluid.settle(target)
        done = fluid.pop_completed(target)
        if self.schedule_fuzz is not None and len(done) > 1:
            self.schedule_fuzz.shuffle(done)
        for op in done:
            self._complete_op(op)
        while self._heap and self._heap[0][0] <= self.now + 1e-15:
            _, _, item = heapq.heappop(self._heap)
            self.timer_events += 1
            if isinstance(item, Process):
                if item.done:
                    # Cancelled while sleeping; accounting already
                    # settled by cancel_tree.
                    continue
                if self.race is not None:
                    self.race.on_resume(item, item.blocked_on)
                if self.tracer is not None and self.tracer.analyze:
                    self.tracer.wait_end(item)
                item.blocked_on = None
                self._blocked -= 1
                if self.sanitizer is not None:
                    self.sanitizer.on_wake(item)
                self._ready.append(item)
            else:
                item()
        return True

    def _complete_op(self, op: FluidOp) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_op_complete(op, self.now)
        if self.tracer is not None:
            self.tracer.on_op_complete(op, self.now)
        collector = op._collector
        if collector is not None:
            op._collector = None
            collector(op)
            return
        proc = op._waiter
        op._waiter = None
        value = op.on_complete(op) if op.on_complete is not None else op
        if proc is not None:
            self.resume(proc, value)

    def _issue_parallel(self, ops: list, proc: Process) -> None:
        """Add ``ops`` to the fluid scheduler at the current instant and
        park ``proc`` until every one has completed.

        Besides plain :class:`FluidOp` items, the list may contain
        command objects exposing ``_collect_execute(engine, callback)``
        (the fault layer's retrying I/O): they run concurrently with the
        fluid ops and deliver their result through the callback.  The
        first command that fails resumes ``proc`` with the exception;
        stragglers complete harmlessly afterwards.
        """
        if not ops:
            proc._resume_value = []
            self._ready.append(proc)
            return
        fluid_items = [(i, op) for i, op in enumerate(ops) if isinstance(op, FluidOp)]
        other_items = [(i, op) for i, op in enumerate(ops) if not isinstance(op, FluidOp)]
        if self.batch_ops and len(fluid_items) > 1:
            groups = self._coalesce_parallel(fluid_items)
        else:
            groups = [(op, ((i, op),)) for i, op in fluid_items]
        self._blocked += 1
        if self.race is not None:
            self.race.on_block(proc, ops, "parallel")
        if self.sanitizer is not None:
            self.sanitizer.on_wait(proc, ops, "parallel")
        if self.tracer is not None and self.tracer.analyze:
            # Begun before carriers issue: a zero-work carrier can
            # resume the process from inside the issue loop below.
            self.tracer.wait_begin(proc, "parallel")
        results: list[Any] = [None] * len(ops)
        pending = [len(groups) + len(other_items)]
        state = {"failed": False}

        def finish_one() -> None:
            pending[0] -= 1
            if pending[0] == 0 and not state["failed"]:
                self.resume(proc, results)

        def on_carrier_done(carrier: FluidOp, members) -> None:
            for i, op in members:
                if op is not carrier:
                    op.started_at = carrier.started_at
                    op.finished_at = carrier.finished_at
                    op.remaining = 0.0
                    op.rate = carrier.rate
                results[i] = (
                    op.on_complete(op) if op.on_complete is not None else op
                )
            finish_one()

        def make_callback(i: int):
            def callback(value: Any = None, exc: Optional[BaseException] = None):
                if exc is not None:
                    if not state["failed"]:
                        state["failed"] = True
                        self.resume(proc, exc=exc)
                    return
                results[i] = value
                finish_one()

            return callback

        proc.blocked_on = [carrier for carrier, _members in groups]
        for carrier, members in groups:
            carrier._collector = (
                lambda c, _members=members: on_carrier_done(c, _members)
            )
            self.fluid.add(carrier, self.now)
            if carrier.finished_at is not None:
                # Zero-work carrier completed instantly.
                self._complete_op(carrier)
        for i, item in other_items:
            item._collect_execute(self, make_callback(i))

    def _coalesce_parallel(self, indexed_ops: list):
        """Merge homogeneous ops into carrier ops with summed work.

        Takes ``(result_index, op)`` pairs.  Ops sharing (kind, tag,
        attrs) progress at identical rates under any attribute-driven
        model, so a carrier with their summed work (and summed
        thread/core count, preserving the device's view of total
        parallelism) finishes exactly when each member would have.
        Stats attribution is unaffected: submissions were credited at op
        creation, and interval observers see the same tag moving the
        same total bytes.
        """
        buckets: dict = {}
        order = []
        for i, op in indexed_ops:
            attrs = op.attrs
            akey = None if attrs is None else tuple(sorted(attrs.items()))
            key = (op.kind, op.tag, akey)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [(i, op)]
                order.append(key)
            else:
                bucket.append((i, op))
        groups = []
        for key in order:
            members = buckets[key]
            if len(members) == 1:
                op = members[0][1]
                groups.append((op, ((members[0][0], op),)))
                continue
            total_work = 0.0
            for _i, op in members:
                total_work += op.work
            first = members[0][1]
            attrs = None
            if first.attrs is not None:
                attrs = dict(first.attrs)
                for par_key in ("threads", "cores"):
                    if par_key in attrs:
                        attrs[par_key] = attrs[par_key] * len(members)
            carrier = FluidOp(total_work, first.kind, tag=first.tag, attrs=attrs)
            self.batched_ops += len(members)
            groups.append((carrier, tuple(members)))
        return groups

    def _step(self, proc: Process) -> None:
        if proc.done:
            return  # cancelled while sitting in the ready queue
        self.steps += 1
        tracer = self.tracer
        if tracer is not None:
            # Span begin/end and op-issue hooks fire synchronously while
            # the generator executes; _current tells the tracer which
            # process (and hence which span stack) they belong to.  It
            # is cleared again below so callbacks running between steps
            # (timers, retry re-issues) are never misattributed.
            tracer._current = proc
        race = self.race
        if race is not None:
            # Same attribution contract: storage accesses and primitive
            # releases during this step belong to proc's vector clock.
            race._current = proc
        try:
            value, proc._resume_value = proc._resume_value, None
            exc, proc._resume_exc = proc._resume_exc, None
            try:
                if exc is not None:
                    command = proc.gen.throw(exc)
                else:
                    command = proc.gen.send(value)
            except StopIteration as stop:
                self._live_processes -= 1
                if self.sanitizer is not None:
                    self.sanitizer.on_proc_finish(proc, self.now)
                if race is not None:
                    race.on_finish(proc, self.now)
                if tracer is not None and tracer.analyze:
                    tracer.analyze_finish(proc)
                proc._finish(stop.value)
                return
            self._dispatch(command, proc)
        finally:
            if tracer is not None:
                tracer._current = None
            if race is not None:
                race._current = None

    def _dispatch(self, command: Any, proc: Process) -> None:
        if isinstance(command, FluidOp):
            command._waiter = proc
            proc.blocked_on = command
            self._blocked += 1
            if self.sanitizer is not None:
                self.sanitizer.on_wait(proc, command, "io")
            if self.tracer is not None and self.tracer.analyze:
                self.tracer.wait_begin(proc, "io")
            self.fluid.add(command, self.now)
            if command.finished_at is not None:
                # Zero-work op completed instantly.
                self._complete_op(command)
        elif isinstance(command, Sleep):
            proc.blocked_on = command
            self._blocked += 1
            if self.sanitizer is not None:
                self.sanitizer.on_wait(proc, command, "sleep")
            if self.tracer is not None and self.tracer.analyze:
                self.tracer.wait_begin(proc, "sleep")
            heapq.heappush(self._heap, (self.now + command.dt, next(self._seq), proc))
        elif isinstance(command, Spawn):
            child = self.spawn(command.gen, command.name)
            proc.children.append(child)
            proc._resume_value = child
            self._ready.append(proc)
        elif isinstance(command, Join):
            self._join(command, proc)
        elif isinstance(command, Now):
            proc._resume_value = self.now
            self._ready.append(proc)
        elif hasattr(command, "_sim_execute"):
            command._sim_execute(self, proc)
        else:
            raise SimulationError(
                f"{proc!r} yielded an unsupported command: {command!r}"
            )

    def _join(self, command: Join, proc: Process) -> None:
        pending = [t for t in command.targets if not t.done]
        if not pending:
            results = [t.result for t in command.targets]
            proc._resume_value = results[0] if command.single else results
            self._ready.append(proc)
            return
        proc.blocked_on = command
        self._blocked += 1
        if self.sanitizer is not None:
            self.sanitizer.on_wait(proc, command, "join")
        if self.tracer is not None and self.tracer.analyze:
            self.tracer.wait_begin(proc, "join")
        remaining = {"n": len(pending)}

        def on_done(_finished: Process) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                results = [t.result for t in command.targets]
                self.resume(proc, results[0] if command.single else results)

        for target in pending:
            target.add_done_callback(on_done)
