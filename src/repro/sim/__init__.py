"""Discrete-event simulation kernel.

The kernel provides generator-based cooperative "simulated threads"
(:class:`~repro.sim.engine.Process`), an event loop
(:class:`~repro.sim.engine.Engine`), synchronisation primitives
(:mod:`repro.sim.primitives`) and a fluid-flow work scheduler
(:mod:`repro.sim.fluid`) that turns resource-sharing descriptions into
completion times.

Device- and host-specific rate logic lives in :mod:`repro.device`; the
kernel only knows about abstract :class:`~repro.sim.fluid.FluidOp` work
items and an injected :class:`~repro.sim.fluid.RateModel`.
"""

from repro.sim.engine import Engine, Process, Sleep, Spawn, Join, Now
from repro.sim.fluid import (
    FluidOp,
    FluidScheduler,
    RateModel,
    UniformRateModel,
    time_eq,
    time_ne,
)
from repro.sim.primitives import Barrier, Semaphore, SimQueue

__all__ = [
    "Engine",
    "Process",
    "Sleep",
    "Spawn",
    "Join",
    "Now",
    "FluidOp",
    "FluidScheduler",
    "RateModel",
    "UniformRateModel",
    "time_eq",
    "time_ne",
    "Barrier",
    "Semaphore",
    "SimQueue",
]
