"""Fluid-flow work scheduling.

In-flight work items (:class:`FluidOp`) progress simultaneously at rates
assigned by a :class:`RateModel`.  Whenever the set of active ops changes,
the scheduler re-rates the affected ops and computes the next completion
time.  This is the standard processor-sharing "fluid" approximation used
by storage and network simulators: instead of modelling individual
requests, each op is a flow whose instantaneous rate depends on who else
is active.

Rate semantics: an op carries ``work`` in arbitrary units (bytes for I/O,
cpu-seconds for compute) and the model assigns a rate in units/second.
The model also exposes max-min *progressive filling* over shared
resources (see :class:`repro.device.host.HostModel`), but the kernel only
requires the ``assign`` callable.

Hot-path design (see DESIGN.md "Simulator performance"):

* **Incremental re-rating** -- ops are partitioned into resource groups
  (:meth:`RateModel.resource_key`); a membership change only re-rates
  ops sharing a dirty group.  Models whose ops are fully coupled (the
  BRAID model: every op shares the host bus and cores) use a single
  shared group and degenerate to the classic full re-rate, but the
  model is then free to memoize whole assignments.
* **Completion heap** -- instead of rescanning every active op to find
  the earliest completion, the scheduler maintains a lazy-deletion heap
  of ``(finish_time, seq, version, op)`` entries.  A constant-rate op's
  absolute finish time is invariant under settling, so entries are only
  (re)pushed when an op's rate actually changes; stale entries are
  skipped via the per-op version counter.
* **Coalesced completions** -- all ops finishing at the same simulated
  instant pop in one call and are returned in FIFO (issue-order) so
  waiters resume deterministically.  Zero-work ops never enter the
  active set at all.
"""

from __future__ import annotations

import heapq
import itertools
from operator import attrgetter
from typing import Callable, Dict, Iterable, Optional

from repro.errors import SimulationError

#: Absolute work units (bytes / cpu-seconds) below which a *stalled*
#: (zero-rate) op is considered complete.  Completion is normally
#: event-driven -- an op finishes exactly when the clock reaches its
#: scheduled finish time -- so this only rescues ops whose rate dropped
#: to zero with nothing but floating-point residue left.  The threshold
#: is deliberately absolute: a relative threshold (fraction of original
#: work) would prematurely complete multi-GB ops with real bytes still
#: outstanding.
_EPSILON = 1e-12

#: Tolerance for comparing simulated-time instants.  Event times are
#: sums of float intervals, so exact ``==`` between independently
#: computed instants is schedule-dependent; reprolint rule SIM004
#: points offenders at these helpers.
_TIME_EPSILON = 1e-12


def time_eq(a: float, b: float, eps: float = _TIME_EPSILON) -> bool:
    """Whether two simulated-time instants coincide (within ``eps``)."""
    return abs(a - b) <= eps


def time_ne(a: float, b: float, eps: float = _TIME_EPSILON) -> bool:
    """Whether two simulated-time instants genuinely differ."""
    return abs(a - b) > eps


_op_counter = itertools.count()

_SEQ_KEY = attrgetter("seq")

#: Default resource-group key for models where all ops are coupled.
_SHARED_GROUP = "*"


class FluidOp:
    """A unit of timed work processed by the fluid scheduler.

    Parameters
    ----------
    work:
        Total amount of work (bytes for I/O ops, cpu-seconds for compute
        ops).  Must be non-negative; zero-work ops complete immediately.
    kind:
        Free-form string consumed by the rate model, e.g. ``"io"`` or
        ``"cpu"``.
    tag:
        Category label used for statistics attribution (e.g. ``"RUN
        read"``).  Not interpreted by the kernel.
    attrs:
        Arbitrary attributes the rate model understands (direction,
        access pattern, host-traffic ratio, ...).  May be passed as a
        prebuilt dict (``attrs=...``) or as keyword arguments; ops with
        no attributes store ``None`` instead of allocating an empty
        dict -- rate models treat ``None`` as empty.
    """

    __slots__ = (
        "work",
        "kind",
        "tag",
        "attrs",
        "remaining",
        "rate",
        "started_at",
        "finished_at",
        "seq",
        "_waiter",
        "on_complete",
        "_collector",
        "_sig",
        "_res_key",
        "_heap_ver",
        "_trace",
    )

    def __init__(
        self,
        work: float,
        kind: str,
        tag: str = "",
        attrs: Optional[dict] = None,
        **extra,
    ):
        if work < 0:
            raise ValueError(f"FluidOp work must be >= 0, got {work}")
        self.work = float(work)
        self.kind = kind
        self.tag = tag
        if attrs is None:
            attrs = extra if extra else None
        elif extra:
            attrs = {**attrs, **extra}
        self.attrs = attrs
        self.remaining = self.work
        self.rate = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.seq = next(_op_counter)
        self._waiter = None  # Process resumed on completion (set by Engine)
        self.on_complete: Optional[Callable[["FluidOp"], object]] = None
        #: Alternative completion sink used by batched parallel issues
        #: (see :class:`repro.sim.engine.ParallelOps`).
        self._collector: Optional[Callable[["FluidOp", object], None]] = None
        #: Rate-model scratch: memoization signature, resource group.
        self._sig = None
        self._res_key = None
        #: Completion-heap entry version (stale entries are skipped).
        self._heap_ver = 0

    @property
    def duration(self) -> float:
        """Elapsed simulated time, valid once the op has finished."""
        if self.started_at is None or self.finished_at is None:
            raise SimulationError("op has not completed yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidOp(kind={self.kind!r}, tag={self.tag!r}, "
            f"work={self.work:.3g}, remaining={self.remaining:.3g})"
        )


class RateModel:
    """Assigns instantaneous rates to the set of active ops.

    Subclasses implement :meth:`assign`.  The kernel calls it every time
    the active-op population of a resource group changes; between calls
    rates are constant.
    """

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        raise NotImplementedError

    def resource_key(self, op: FluidOp):
        """Resource-group key: ops in different groups never interact.

        The default places every op in one shared group (safe for any
        model).  Models whose ops are independent can return per-op keys
        so a membership change re-rates only the affected ops.
        """
        return _SHARED_GROUP


class UniformRateModel(RateModel):
    """Trivial model: every op progresses at a fixed rate.

    Useful for kernel unit tests where device semantics are irrelevant.
    Ops are rate-independent, so each is its own resource group and a
    membership change never re-rates anyone else.
    """

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        return {op: self.rate for op in ops}

    def resource_key(self, op: FluidOp):
        return op.seq


class FluidScheduler:
    """Tracks active ops, advances their work, finds next completion.

    The owning :class:`~repro.sim.engine.Engine` drives this object:
    ``settle`` debits work done since the last settle, ``rerate`` asks the
    model for fresh rates for dirty resource groups, and
    ``next_completion`` reports when the earliest op will finish under
    current rates.
    """

    def __init__(self, model: RateModel, start_time: float = 0.0):
        self.model = model
        self.active: set[FluidOp] = set()
        self._last_settled = start_time
        self.dirty = False
        #: Observers called as fn(t0, t1, ops) for every constant-rate
        #: interval, used by bandwidth timeline recorders.  Ops are
        #: passed in issue order so float accumulations downstream are
        #: run-to-run deterministic.
        self.interval_observers: list[Callable[[float, float, list], None]] = []
        #: Resource groups: key -> set of active ops sharing the key.
        self._groups: Dict[object, set] = {}
        self._dirty_keys: set = set()
        #: Issue-ordered view of ``active``, maintained incrementally so
        #: settle need not sort every interval.  Appends keep it sorted
        #: (op seq numbers are monotone in practice); completions mark it
        #: stale and the next settle filters against ``active``.
        self._ordered: list[FluidOp] = []
        self._ordered_stale = False
        self._ordered_unsorted = False
        #: Lazy-deletion completion heap: (finish_time, seq, version, op).
        self._heap: list = []
        #: Optional :class:`repro.trace.Tracer`; every hook site guards
        #: on ``is not None`` so tracing costs nothing when off.
        self.tracer = None
        # Self-performance counters (read by repro.perf).
        self.ops_added = 0
        self.ops_completed = 0
        self.rerate_calls = 0
        self.ops_rerated = 0
        self.rate_changes = 0

    # ------------------------------------------------------------------
    def add(self, op: FluidOp, now: float) -> None:
        if self.tracer is not None:
            # Single choke point: direct yields, ParallelOps carriers
            # and fault-retry re-issues all pass through here, and the
            # hook runs before the zero-work fast path so even 0-byte
            # ops get records.  Observe-only.
            self.tracer.on_op_issue(op, now)
        if op.remaining <= 0:
            # Zero-work op: mark complete instantly; caller handles wakeup.
            op.started_at = now
            op.finished_at = now
            return
        op.started_at = now
        self.active.add(op)
        ordered = self._ordered
        if ordered and op.seq < ordered[-1].seq:
            self._ordered_unsorted = True
        ordered.append(op)
        key = self.model.resource_key(op)
        op._res_key = key
        group = self._groups.get(key)
        if group is None:
            self._groups[key] = {op}
        else:
            group.add(op)
        self._dirty_keys.add(key)
        self.dirty = True
        self.ops_added += 1

    def settle(self, now: float) -> None:
        """Debit work accomplished between the last settle and ``now``."""
        dt = now - self._last_settled
        if dt < 0:
            raise SimulationError(f"time went backwards: {dt}")
        if dt > 0 and self.active:
            ops = self._ordered
            if self._ordered_stale:
                active = self.active
                ops = [op for op in ops if op in active]
                self._ordered = ops
                self._ordered_stale = False
            if self._ordered_unsorted:
                ops.sort(key=_SEQ_KEY)
                self._ordered_unsorted = False
            for observer in self.interval_observers:
                observer(self._last_settled, now, ops)
            for op in ops:
                op.remaining -= op.rate * dt
        self._last_settled = now

    def rerate(self, now: float) -> None:
        """Recompute rates for ops in dirty resource groups.

        Must be called with the scheduler settled to ``now``; completion
        times are derived from the settled ``remaining`` work.  Ops whose
        rate is unchanged keep their existing completion-heap entry (a
        constant-rate op's absolute finish time is settle-invariant).
        """
        keys = self._dirty_keys
        if keys:
            self.rerate_calls += 1
            groups = self._groups
            if len(groups) == 1 and len(keys) >= 1 and next(iter(keys)) in groups:
                affected: Iterable[FluidOp] = self.active
            else:
                affected = []
                # Dirty-key order cannot leak into results: the rate
                # model canonicalises assignment order by signature and
                # completions are ordered by the (time, seq) heap keys.
                # Keys may mix types (shared "*" vs per-op ints), so
                # sorted() is not an option.
                for key in keys:  # reprolint: disable=SIM003 -- order-independent, see comment above
                    group = groups.get(key)
                    if group:
                        affected.extend(group)
            keys.clear()
            if affected:
                rates = self.model.assign(affected)
                heap = self._heap
                n = 0
                for op in affected:
                    n += 1
                    rate = rates.get(op, 0.0)
                    if rate < 0:
                        raise SimulationError(
                            f"model returned negative rate for {op}"
                        )
                    if rate != op.rate:
                        op.rate = rate
                        op._heap_ver += 1
                        self.rate_changes += 1
                        if rate > 0.0:
                            heapq.heappush(
                                heap,
                                (now + op.remaining / rate, op.seq, op._heap_ver, op),
                            )
                        elif op.remaining <= _EPSILON:
                            # Stalled with only float residue left: let it
                            # complete now instead of deadlocking.
                            heapq.heappush(heap, (now, op.seq, op._heap_ver, op))
                self.ops_rerated += n
                if self.tracer is not None and self.tracer.detail:
                    self.tracer.on_rerate(n)
        self.dirty = False

    def invalidate_rates(self) -> None:
        """Force a full re-rate at the next settle point.

        Used when the rate model's *global* state changes mid-run (e.g.
        a fault-injected throughput-degradation window opening or
        closing): every resource group is marked dirty so the next
        ``rerate`` call recomputes all active rates under the new model
        state.
        """
        self._dirty_keys.update(self._groups)
        if self._groups:
            self.dirty = True

    def pop_completed(self, now: float) -> list[FluidOp]:
        """Remove and return ops whose scheduled finish time has arrived.

        All ops finishing at (or before) ``now`` are coalesced into one
        batch, returned in FIFO issue order so simultaneous completions
        resume their waiters deterministically.
        """
        heap = self._heap
        done: list[FluidOp] = []
        while heap:
            t, _seq, ver, op = heap[0]
            if ver != op._heap_ver:
                heapq.heappop(heap)  # stale entry (rate changed / completed)
                continue
            if t > now:
                break
            heapq.heappop(heap)
            op._heap_ver += 1
            op.remaining = 0.0
            op.finished_at = now
            self.active.discard(op)
            key = op._res_key
            group = self._groups.get(key)
            if group is not None:
                group.discard(op)
                if not group:
                    del self._groups[key]
                self._dirty_keys.add(key)
            done.append(op)
        if done:
            self.dirty = True
            self._ordered_stale = True
            self.ops_completed += len(done)
            if len(done) > 1:
                done.sort(key=_SEQ_KEY)
        return done

    def next_completion(self, now: float) -> Optional[float]:
        """Earliest absolute time an active op completes, or ``None``.

        Ops with zero rate never complete on their own; if *every* active
        op is stalled the scheduler reports ``None`` and the engine will
        raise a deadlock error unless some other event intervenes.
        """
        heap = self._heap
        while heap:
            t, _seq, ver, op = heap[0]
            if ver != op._heap_ver:
                heapq.heappop(heap)
                continue
            return t
        return None
