"""Fluid-flow work scheduling.

In-flight work items (:class:`FluidOp`) progress simultaneously at rates
assigned by a :class:`RateModel`.  Whenever the set of active ops changes,
the scheduler re-rates the affected ops and computes the next completion
time.  This is the standard processor-sharing "fluid" approximation used
by storage and network simulators: instead of modelling individual
requests, each op is a flow whose instantaneous rate depends on who else
is active.

Rate semantics: an op carries ``work`` in arbitrary units (bytes for I/O,
cpu-seconds for compute) and the model assigns a rate in units/second.
The model also exposes max-min *progressive filling* over shared
resources (see :class:`repro.device.host.HostModel`), but the kernel only
requires the ``assign`` callable.

Hot-path design (see DESIGN.md "Simulator core"):

* **Incremental re-rating** -- ops are partitioned into resource groups
  (:meth:`RateModel.resource_key`); a membership change only re-rates
  ops sharing a dirty group.  Models whose ops are fully coupled (the
  BRAID model: every op shares the host bus and cores) use a single
  shared group and degenerate to the classic full re-rate, but the
  model is then free to memoize whole assignments.
* **Vectorized groups** -- resource groups that reach
  ``vector_min_group`` live ops (and whose model implements the vector
  protocol, :meth:`RateModel.vector_state`/:meth:`RateModel.vector_sig`)
  are promoted to :class:`_VectorGroup`: contiguous numpy arrays of
  remaining work, current rate, predicted finish time and interned
  signature class, mirrored from the op objects.  Re-rating such a group
  is a handful of numpy calls -- a signature-population memo lookup, one
  table gather, one changed-mask -- instead of a per-op Python loop, and
  settling is two array operations.  Groups below the threshold (and any
  model without the protocol) keep the scalar path, so tiny workloads
  never pay array overhead.  ``REPRO_SIM_VECTOR=0`` disables promotion
  entirely.
* **Completion structure** -- scalar groups use a lazy-deletion heap of
  ``(finish_time, seq, version, op)`` entries; vector groups keep a
  per-group finish-time array whose running minimum replaces the heap
  top (argmin over predicted-finish arrays).  A constant-rate op's
  absolute finish time is invariant under settling, so entries are only
  (re)computed when an op's rate actually changes -- in both structures
  the finish float is the *same expression evaluated at the same
  instant* (``now + remaining / rate`` at rate-change time), which is
  what keeps the two paths bit-identical.
* **Coalesced completions** -- all ops finishing at the same simulated
  instant pop in one call and are returned sorted by ``seq`` (the op's
  stable integer id) so waiters resume deterministically; see
  :meth:`FluidScheduler.pop_completed` for the ordering invariant.
  Zero-work ops never enter the active set at all.

Determinism invariants the vector path preserves (asserted by the
equivalence suite in ``tests/test_vector_equivalence.py``):

1. rates come from the same ``model.assign`` floats (tables are built
   from one scalar assignment per signature population and reused);
2. settle debits are elementwise ``remaining -= rate * dt`` (numpy
   elementwise arithmetic is IEEE-identical to the scalar expression;
   no reductions are vectorized anywhere results are accumulated);
3. finish times are computed once per rate change, never recomputed on
   settle, with the scalar operand order;
4. completions are collected per group in array (= issue) order and
   globally sorted by op id, exactly like the heap path.
"""

from __future__ import annotations

import heapq
import itertools
import os
from operator import attrgetter
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import SimulationError

try:  # numpy is a hard dependency of the storage layer, but the kernel
    import numpy as _np  # degrades to the scalar path without it.
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

#: Absolute work units (bytes / cpu-seconds) below which a *stalled*
#: (zero-rate) op is considered complete.  Completion is normally
#: event-driven -- an op finishes exactly when the clock reaches its
#: scheduled finish time -- so this only rescues ops whose rate dropped
#: to zero with nothing but floating-point residue left.  The threshold
#: is deliberately absolute: a relative threshold (fraction of original
#: work) would prematurely complete multi-GB ops with real bytes still
#: outstanding.
_EPSILON = 1e-12

#: Tolerance for comparing simulated-time instants.  Event times are
#: sums of float intervals, so exact ``==`` between independently
#: computed instants is schedule-dependent; reprolint rule SIM004
#: points offenders at these helpers.
_TIME_EPSILON = 1e-12

_INF = float("inf")


def time_eq(a: float, b: float, eps: float = _TIME_EPSILON) -> bool:
    """Whether two simulated-time instants coincide (within ``eps``)."""
    return abs(a - b) <= eps


def time_ne(a: float, b: float, eps: float = _TIME_EPSILON) -> bool:
    """Whether two simulated-time instants genuinely differ."""
    return abs(a - b) > eps


def vector_enabled(default: bool = True) -> bool:
    """Whether the vectorized kernel paths are enabled.

    Controlled by the ``REPRO_SIM_VECTOR`` environment variable
    (``0``/``false``/``off``/``no`` disable; unset means enabled).  Read
    dynamically so tests can flip paths per scheduler instance.
    """
    if _np is None:
        return False
    value = os.environ.get("REPRO_SIM_VECTOR")
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "off", "no", "")


def vector_min_group(default: int = 4) -> int:
    """Group-size threshold below which re-rating stays scalar.

    Override with ``REPRO_SIM_VECTOR_MIN_GROUP``; values < 2 are clamped
    (a singleton group gains nothing from arrays).
    """
    value = os.environ.get("REPRO_SIM_VECTOR_MIN_GROUP")
    if value is None:
        return default
    try:
        return max(2, int(value))
    except ValueError:
        return default


def remaining_work(op: "FluidOp") -> float:
    """The op's settled remaining work under either kernel path.

    While an op belongs to a vectorized group its authoritative
    remaining work lives in the group array (the per-op attribute is
    only synced at completion); scalar-path ops keep it on the object.
    External mid-flight readers (the fault injector's progress
    estimate) must use this helper instead of ``op.remaining``.
    """
    vg = op._vg
    if vg is None:
        return op.remaining
    return float(vg.rem[op._vi])


_op_counter = itertools.count()

_SEQ_KEY = attrgetter("seq")

#: Default resource-group key for models where all ops are coupled.
_SHARED_GROUP = "*"


class FluidOp:
    """A unit of timed work processed by the fluid scheduler.

    Parameters
    ----------
    work:
        Total amount of work (bytes for I/O ops, cpu-seconds for compute
        ops).  Must be non-negative; zero-work ops complete immediately.
    kind:
        Free-form string consumed by the rate model, e.g. ``"io"`` or
        ``"cpu"``.
    tag:
        Category label used for statistics attribution (e.g. ``"RUN
        read"``).  Not interpreted by the kernel.
    attrs:
        Arbitrary attributes the rate model understands (direction,
        access pattern, host-traffic ratio, ...).  May be passed as a
        prebuilt dict (``attrs=...``) or as keyword arguments; ops with
        no attributes store ``None`` instead of allocating an empty
        dict -- rate models treat ``None`` as empty.

    Every op carries a stable integer id in ``seq`` (monotone in
    creation order, unique per process); completion batches and the
    issue-ordered observer view are ordered by it.
    """

    __slots__ = (
        "work",
        "kind",
        "tag",
        "attrs",
        "remaining",
        "rate",
        "started_at",
        "finished_at",
        "seq",
        "_waiter",
        "on_complete",
        "_collector",
        "_sig",
        "_res_key",
        "_heap_ver",
        "_trace",
        "_finish",
        "_vg",
        "_vi",
        "_vsig",
        "_obs",
    )

    def __init__(
        self,
        work: float,
        kind: str,
        tag: str = "",
        attrs: Optional[dict] = None,
        **extra,
    ):
        if work < 0:
            raise ValueError(f"FluidOp work must be >= 0, got {work}")
        self.work = float(work)
        self.kind = kind
        self.tag = tag
        if attrs is None:
            attrs = extra if extra else None
        elif extra:
            attrs = {**attrs, **extra}
        self.attrs = attrs
        self.remaining = self.work
        self.rate = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.seq = next(_op_counter)
        self._waiter = None  # Process resumed on completion (set by Engine)
        self.on_complete: Optional[Callable[["FluidOp"], object]] = None
        #: Alternative completion sink used by batched parallel issues
        #: (see :class:`repro.sim.engine.ParallelOps`).
        self._collector: Optional[Callable[["FluidOp", object], None]] = None
        #: Rate-model scratch: memoization signature, resource group.
        self._sig = None
        self._res_key = None
        #: Completion-heap entry version (stale entries are skipped).
        self._heap_ver = 0
        #: Scheduled absolute finish time of the live heap entry (used
        #: to transplant state when a group is promoted to vector form).
        self._finish = _INF
        #: Owning :class:`_VectorGroup` and row index, or ``None``/unset
        #: while the op is scalar-scheduled.
        self._vg = None
        #: Cached interval-observer classification (see
        #: :func:`observer_code`); shared by stats and tracer observers.
        self._obs = None

    @property
    def op_id(self) -> int:
        """Stable integer identity (alias of ``seq``)."""
        return self.seq

    @property
    def duration(self) -> float:
        """Elapsed simulated time, valid once the op has finished."""
        if self.started_at is None or self.finished_at is None:
            raise SimulationError("op has not completed yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidOp(kind={self.kind!r}, tag={self.tag!r}, "
            f"work={self.work:.3g}, remaining={self.remaining:.3g})"
        )


#: Interval-observer classification codes cached on ``op._obs`` so the
#: per-epoch observer callbacks (device stats, tracer counter tracks)
#: classify each op once instead of re-reading kind/attrs every
#: interval.  Purely a lookup cache: the accumulation arithmetic and its
#: order are unchanged.
OBS_IO_READ = 0
OBS_IO_WRITE = 1
OBS_CPU_COMPUTE = 2
OBS_CPU_COPY = 3
OBS_OTHER = 4
OBS_NET = 5


def observer_code(op: FluidOp) -> int:
    """Classify (and cache) an op for interval-observer accumulation."""
    kind = op.kind
    if kind == "io":
        code = (
            OBS_IO_READ
            if op.attrs["direction"] == "read"
            else OBS_IO_WRITE
        )
    elif kind == "cpu":
        attrs = op.attrs
        mode = "compute" if attrs is None else attrs.get("mode", "compute")
        code = OBS_CPU_COMPUTE if mode == "compute" else OBS_CPU_COPY
    elif kind == "net":
        code = OBS_NET
    else:
        code = OBS_OTHER
    op._obs = code
    return code


def predicted_finish(op: FluidOp) -> float:
    """The op's currently scheduled absolute finish time (``inf`` if
    stalled), under either kernel path.

    Like :func:`remaining_work`, the authoritative value lives in the
    group array while the op is vector-scheduled.  Used by straggler
    detection (:meth:`FluidScheduler.predicted_horizon`): the fluid
    model already knows when every in-flight op will finish under
    current rates, so slowness is observable *before* wall-clock
    deadlines expire.
    """
    vg = op._vg
    if vg is None:
        return op._finish
    return float(vg.finish[op._vi])


class RateModel:
    """Assigns instantaneous rates to the set of active ops.

    Subclasses implement :meth:`assign`.  The kernel calls it every time
    the active-op population of a resource group changes; between calls
    rates are constant.

    Models may additionally opt into the vectorized group path by
    implementing :meth:`vector_state` and :meth:`vector_sig`; the
    contract is that ``assign`` must be *signature-pure*: two ops with
    equal ``vector_sig`` in the same population always receive the same
    rate, and rates depend on nothing but the signature multiset and
    the ``vector_state`` token.
    """

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        raise NotImplementedError

    def resource_key(self, op: FluidOp):
        """Resource-group key: ops in different groups never interact.

        The default places every op in one shared group (safe for any
        model).  Models whose ops are independent can return per-op keys
        so a membership change re-rates only the affected ops.
        """
        return _SHARED_GROUP

    def vector_state(self, key) -> Optional[object]:
        """Hashable token of all model state rates depend on, besides
        the group population -- e.g. a fault-degradation multiplier.

        Returning ``None`` (the default) means the model does not
        support the vectorized kernel path for this group and the
        scheduler keeps the scalar path.
        """
        return None

    def vector_sig(self, op: FluidOp):
        """Hashable per-op rate signature (see class docstring).

        Only called when :meth:`vector_state` returned a token.
        """
        raise NotImplementedError


class UniformRateModel(RateModel):
    """Trivial model: every op progresses at a fixed rate.

    Useful for kernel unit tests where device semantics are irrelevant.
    Ops are rate-independent, so each is its own resource group and a
    membership change never re-rates anyone else.
    """

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        return {op: self.rate for op in ops}

    def resource_key(self, op: FluidOp):
        return op.seq


class NetLinkRateModel(RateModel):
    """Max-min fair interconnect: full-duplex per-endpoint links.

    Each flow (``kind="net"`` op) names a source and destination
    endpoint in ``attrs["src"]`` / ``attrs["dst"]`` and consumes
    bandwidth on two resources: the source's transmit link and the
    destination's receive link, each capped at ``link_bw`` bytes/s
    (full duplex -- tx and rx are independent).  Rates are assigned by
    progressive filling (the classic max-min water-fill, cf. the
    BRAID model's channel fill in :mod:`repro.device.device`):
    repeatedly find the most contended link, freeze its flows at an
    equal share, subtract, repeat.  *Incast* falls out naturally: N
    flows converging on one receiver each get ``link_bw / N`` unless
    an even tighter tx link caps them first.

    Deterministic: bottleneck ties break on sorted endpoint name and
    flows freeze in op-id order, so equal populations always produce
    identical float assignments.  The model keeps the scalar kernel
    path (``vector_state`` -> None); shuffle fan-out is a handful of
    flows per epoch, far below vectorization's pay-off point.
    """

    def __init__(self, link_bw: float = 12.5e9):
        if link_bw <= 0:
            raise ValueError(f"link_bw must be positive, got {link_bw}")
        #: Per-endpoint, per-direction link bandwidth in bytes/second
        #: (default 12.5e9 B/s = one 100 GbE port per shard).
        self.link_bw = float(link_bw)

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        flows = sorted(ops, key=_SEQ_KEY)
        rates: Dict[FluidOp, float] = {}
        remaining: Dict[tuple, float] = {}
        counts: Dict[tuple, int] = {}
        flow_links: Dict[FluidOp, tuple] = {}
        for op in flows:
            attrs = op.attrs or {}
            links = []
            src = attrs.get("src")
            dst = attrs.get("dst")
            if src is not None:
                links.append(("tx", src))
            if dst is not None:
                links.append(("rx", dst))
            if not links:
                # Endpoint-less flow: uncontended, full line rate.
                rates[op] = self.link_bw
                continue
            flow_links[op] = tuple(links)
            for link in links:
                remaining.setdefault(link, self.link_bw)
                counts[link] = counts.get(link, 0) + 1
        unfrozen = [op for op in flows if op in flow_links]
        while unfrozen:
            # Bottleneck link: smallest equal share among contended
            # links; sorted() keys make float ties deterministic.
            share = _INF
            bottleneck = None
            for link in sorted(counts):
                n = counts[link]
                if n <= 0:
                    continue
                s = remaining[link] / n
                if s < share:
                    share = s
                    bottleneck = link
            if bottleneck is None:  # pragma: no cover - defensive
                break
            share = max(share, 0.0)
            still = []
            for op in unfrozen:
                if bottleneck in flow_links[op]:
                    rates[op] = share
                    for link in flow_links[op]:
                        remaining[link] -= share
                        counts[link] -= 1
                else:
                    still.append(op)
            unfrozen = still
        return rates


class _VectorGroup:
    """Array-of-structs mirror of one promoted resource group.

    Rows are append-ordered (monotone op id), so array index order *is*
    issue order; completed rows become holes (``ops[i] is None``,
    ``rate == 0``, ``finish == inf``, signature id 0) and are compacted
    once they outnumber the live rows.  ``min_finish`` caches
    ``finish[:size].min()`` so the engine's next-event query and the
    completion sweep are O(1) comparisons between events.
    """

    __slots__ = (
        "key",
        "ops",
        "size",
        "n_live",
        "cap",
        "rem",
        "rate",
        "finish",
        "sig",
        "counts",
        "min_finish",
        "memo",
        "scratch",
    )

    #: Signature id 0 is reserved for holes; assignment tables always
    #: map it to rate 0.0 so dead rows never show up as rate changes.
    DEAD_SIG = 0

    #: Populations memoized per group before the table cache resets
    #: (prevents unbounded growth under adversarial churn; steady-state
    #: workloads cycle through a handful of populations).
    MEMO_LIMIT = 8192

    def __init__(self, key, cap: int = 16):
        self.key = key
        self.ops: List[Optional[FluidOp]] = []
        self.size = 0
        self.n_live = 0
        self.cap = cap
        self.rem = _np.zeros(cap)
        self.rate = _np.zeros(cap)
        self.finish = _np.full(cap, _INF)
        self.sig = _np.zeros(cap, dtype=_np.int64)
        #: Live-op count per signature id (indexable by sig id; the
        #: tuple of this list keys the assignment-table memo).
        self.counts: List[int] = [0]
        self.min_finish = _INF
        #: (state token, population tuple) -> rate table ndarray.
        self.memo: Dict[tuple, object] = {}
        #: Settle work buffer (holds rate*dt); contents are transient.
        self.scratch = _np.zeros(cap)

    def _grow(self) -> None:
        """Double capacity, compacting away holes when they dominate."""
        if self.size - self.n_live > self.n_live:
            self.compact()
            if self.size < self.cap:
                return
        new_cap = self.cap * 2
        for name in ("rem", "rate", "finish", "sig"):
            old = getattr(self, name)
            fresh = _np.full(new_cap, _INF) if name == "finish" else (
                _np.zeros(new_cap, dtype=old.dtype)
            )
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        self.scratch = _np.zeros(new_cap)
        self.cap = new_cap

    def compact(self) -> None:
        """Drop hole rows, preserving order (and thus issue order)."""
        live = [i for i, op in enumerate(self.ops) if op is not None]
        k = len(live)
        idx = _np.asarray(live, dtype=_np.int64)
        for name in ("rem", "rate", "finish", "sig"):
            arr = getattr(self, name)
            arr[:k] = arr[idx]
        self.finish[k : self.size] = _INF
        self.rate[k : self.size] = 0.0
        self.sig[k : self.size] = self.DEAD_SIG
        ops = [self.ops[i] for i in live]
        for j, op in enumerate(ops):
            op._vi = j
        self.ops = ops
        self.size = k


class FluidScheduler:
    """Tracks active ops, advances their work, finds next completion.

    The owning :class:`~repro.sim.engine.Engine` drives this object:
    ``settle`` debits work done since the last settle, ``rerate`` asks the
    model for fresh rates for dirty resource groups, and
    ``next_completion`` reports when the earliest op will finish under
    current rates.
    """

    def __init__(
        self,
        model: RateModel,
        start_time: float = 0.0,
        vector: Optional[bool] = None,
    ):
        self.model = model
        self.active: set[FluidOp] = set()
        self._last_settled = start_time
        self.dirty = False
        #: Observers called as fn(t0, t1, ops) once per constant-rate
        #: interval (settle epoch), used by bandwidth timeline
        #: recorders.  Ops are passed in issue order so float
        #: accumulations downstream are run-to-run deterministic.
        self.interval_observers: list[Callable[[float, float, list], None]] = []
        #: Resource groups: key -> set of active ops sharing the key,
        #: or a :class:`_VectorGroup` once promoted.
        self._groups: Dict[object, object] = {}
        self._dirty_keys: set = set()
        #: Issue-ordered view of ``active``, maintained incrementally so
        #: settle need not sort every interval.  Appends keep it sorted
        #: (op seq numbers are monotone in practice); completions mark it
        #: stale and the next settle filters against ``active``.
        self._ordered: list[FluidOp] = []
        self._ordered_stale = False
        self._ordered_unsorted = False
        #: Lazy-deletion completion heap for scalar groups:
        #: (finish_time, seq, version, op).
        self._heap: list = []
        #: Optional :class:`repro.trace.Tracer`; every hook site guards
        #: on ``is not None`` so tracing costs nothing when off.
        self.tracer = None
        #: Vector-path configuration (see module docstring).
        self.vector = vector_enabled() if vector is None else (
            bool(vector) and _np is not None
        )
        self.vector_min_group = vector_min_group()
        #: Promoted groups (kept registered even when momentarily empty
        #: so steady-state workloads don't re-promote every phase).
        self._vgroups: List[_VectorGroup] = []
        #: Signature -> interned id, shared across groups (id 0 is the
        #: reserved hole marker).
        self._sig_ids: Dict[object, int] = {}
        #: Live ops currently in scalar (set-based) groups; lets settle
        #: skip the per-op debit loop entirely when everything active is
        #: vector-scheduled.
        self._scalar_live = 0
        # Self-performance counters (read by repro.perf).
        self.ops_added = 0
        self.ops_completed = 0
        self.ops_cancelled = 0
        self.rerate_calls = 0
        self.ops_rerated = 0
        self.rate_changes = 0
        self.vector_solves = 0
        self.vector_ops_solved = 0
        self.scalar_fallbacks = 0

    # ------------------------------------------------------------------
    def add(self, op: FluidOp, now: float) -> None:
        if self.tracer is not None:
            # Single choke point: direct yields, ParallelOps carriers
            # and fault-retry re-issues all pass through here, and the
            # hook runs before the zero-work fast path so even 0-byte
            # ops get records.  Observe-only.
            self.tracer.on_op_issue(op, now)
        if op.remaining <= 0:
            # Zero-work op: mark complete instantly; caller handles wakeup.
            op.started_at = now
            op.finished_at = now
            return
        op.started_at = now
        self.active.add(op)
        ordered = self._ordered
        if ordered and op.seq < ordered[-1].seq:
            self._ordered_unsorted = True
        ordered.append(op)
        key = self.model.resource_key(op)
        op._res_key = key
        group = self._groups.get(key)
        if group is None:
            self._groups[key] = {op}
            self._scalar_live += 1
        elif type(group) is _VectorGroup:
            self._vg_insert(group, op)
        else:
            group.add(op)
            self._scalar_live += 1
        self._dirty_keys.add(key)
        self.dirty = True
        self.ops_added += 1

    def settle(self, now: float) -> None:
        """Debit work accomplished between the last settle and ``now``.

        Interval observers fire exactly once per settle epoch with the
        full issue-ordered op list; the work debit itself is elementwise
        (``remaining -= rate * dt``) whether it runs over a group array
        or per op, so both paths produce identical floats.
        """
        dt = now - self._last_settled
        if dt < 0:
            raise SimulationError(f"time went backwards: {dt}")
        if dt > 0 and self.active:
            ops = self._ordered
            if self._ordered_stale:
                active = self.active
                ops = [op for op in ops if op in active]
                self._ordered = ops
                self._ordered_stale = False
            if self._ordered_unsorted:
                ops.sort(key=_SEQ_KEY)
                self._ordered_unsorted = False
            for observer in self.interval_observers:
                observer(self._last_settled, now, ops)
            for vg in self._vgroups:
                size = vg.size
                if size:
                    # Same elementwise multiply-then-subtract as the
                    # expression form; the persistent scratch buffer
                    # just avoids a fresh temporary per settle.
                    buf = vg.scratch[:size]
                    _np.multiply(vg.rate[:size], dt, out=buf)
                    vg.rem[:size] -= buf
            if self._scalar_live:
                for op in ops:
                    if op._vg is None:
                        op.remaining -= op.rate * dt
        self._last_settled = now

    def rerate(self, now: float) -> None:
        """Recompute rates for ops in dirty resource groups.

        Must be called with the scheduler settled to ``now``; completion
        times are derived from the settled ``remaining`` work.  Ops whose
        rate is unchanged keep their existing scheduled finish time (a
        constant-rate op's absolute finish time is settle-invariant).
        Dirty groups are solved per group: promoted groups through the
        vectorized table path, the rest through one scalar ``assign``
        call over all their ops (matching the pre-vector kernel
        exactly).
        """
        keys = self._dirty_keys
        if keys:
            self.rerate_calls += 1
            groups = self._groups
            model = self.model
            use_vector = self.vector
            min_group = self.vector_min_group
            affected: Iterable[FluidOp] = ()
            vgs: Iterable[_VectorGroup] = ()
            if len(groups) == 1 and next(iter(keys)) in groups:
                only_key, only = next(iter(groups.items()))
                if type(only) is _VectorGroup:
                    vgs = (only,)
                elif (
                    use_vector
                    and len(only) >= min_group
                    and model.vector_state(only_key) is not None
                ):
                    vgs = (self._promote(only_key, only),)
                else:
                    affected = self.active
                    if use_vector:
                        self.scalar_fallbacks += 1
            else:
                scalar_affected: List[FluidOp] = []
                vec_todo: List[_VectorGroup] = []
                # Dirty-key order cannot leak into results: the rate
                # model canonicalises assignment order by signature and
                # completions are ordered by (time, op id).  Keys may
                # mix types (shared "*" vs per-op ints), so sorted() is
                # not an option.
                for key in keys:  # reprolint: disable=SIM003 -- order-independent, see comment above
                    group = groups.get(key)
                    if group is None:
                        continue
                    if type(group) is _VectorGroup:
                        vec_todo.append(group)
                    elif group:
                        if (
                            use_vector
                            and len(group) >= min_group
                            and model.vector_state(key) is not None
                        ):
                            vec_todo.append(self._promote(key, group))
                        else:
                            scalar_affected.extend(group)
                            if use_vector:
                                self.scalar_fallbacks += 1
                affected = scalar_affected
                vgs = vec_todo
            keys.clear()
            n = 0
            for vg in vgs:
                n += self._vector_solve(vg, now)
            if affected:
                n += self._scalar_solve(affected, now)
            if n:
                self.ops_rerated += n
                if self.tracer is not None and self.tracer.detail:
                    self.tracer.on_rerate(n)
        self.dirty = False

    def _scalar_solve(self, affected: Iterable[FluidOp], now: float) -> int:
        """The pre-vector per-op re-rate loop (small / opted-out groups)."""
        rates = self.model.assign(affected)
        heap = self._heap
        n = 0
        for op in affected:
            n += 1
            rate = rates.get(op, 0.0)
            if rate < 0:
                raise SimulationError(f"model returned negative rate for {op}")
            if rate != op.rate:
                op.rate = rate
                op._heap_ver += 1
                self.rate_changes += 1
                if rate > 0.0:
                    finish = now + op.remaining / rate
                    op._finish = finish
                    heapq.heappush(heap, (finish, op.seq, op._heap_ver, op))
                elif op.remaining <= _EPSILON:
                    # Stalled with only float residue left: let it
                    # complete now instead of deadlocking.
                    op._finish = now
                    heapq.heappush(heap, (now, op.seq, op._heap_ver, op))
                else:
                    op._finish = _INF
        return n

    # ------------------------------------------------------------------
    # Vectorized group machinery
    # ------------------------------------------------------------------
    def _promote(self, key, members: set) -> _VectorGroup:
        """Switch a scalar group to array form, transplanting live state.

        Rates, settled remaining work and the *already scheduled* finish
        times move over verbatim -- an op whose rate does not change in
        the very next solve must keep the finish float computed when its
        rate last changed, exactly as the heap entry would have.
        """
        ops = sorted(members, key=_SEQ_KEY)
        vg = _VectorGroup(key, cap=max(16, 2 * len(ops)))
        for op in ops:
            op._heap_ver += 1  # retire any live heap entries
            self._vg_insert(vg, op)
            i = op._vi
            vg.rate[i] = op.rate
            vg.finish[i] = op._finish
        vg.min_finish = float(vg.finish[: vg.size].min()) if vg.size else _INF
        self._groups[key] = vg
        self._vgroups.append(vg)
        self._scalar_live -= len(ops)
        return vg

    def _vg_insert(self, vg: _VectorGroup, op: FluidOp) -> None:
        sig = self.model.vector_sig(op)
        sig_ids = self._sig_ids
        sid = sig_ids.get(sig)
        if sid is None:
            sid = len(sig_ids) + 1  # 0 is the reserved hole marker
            sig_ids[sig] = sid
        i = vg.size
        if i == vg.cap:
            vg._grow()
            i = vg.size
        vg.ops.append(op)
        vg.rem[i] = op.remaining
        vg.rate[i] = 0.0
        vg.finish[i] = _INF
        vg.sig[i] = sid
        counts = vg.counts
        while len(counts) <= sid:
            counts.append(0)
        counts[sid] += 1
        vg.size = i + 1
        vg.n_live += 1
        op._vg = vg
        op._vi = i
        op._vsig = sid

    def _vector_solve(self, vg: _VectorGroup, now: float) -> int:
        """Re-rate one promoted group in a handful of numpy calls."""
        n = vg.n_live
        if n == 0:
            return 0
        token = self.model.vector_state(vg.key)
        key = (token, tuple(vg.counts))
        table = vg.memo.get(key)
        if table is None:
            table = self._vg_build_table(vg, key)
        self.vector_solves += 1
        self.vector_ops_solved += n
        size = vg.size
        cur = vg.rate[:size]
        new = table[vg.sig[:size]]
        idx = (new != cur).nonzero()[0]
        k = idx.size
        if k:
            self.rate_changes += k
            nr = new[idx]
            cur[idx] = nr
            rem = vg.rem[idx]
            if nr.min() > 0.0:
                fin = now + rem / nr
            else:
                pos = nr > 0.0
                fin = _np.full(k, _INF)
                fin[pos] = now + rem[pos] / nr[pos]
                fin[~pos & (rem <= _EPSILON)] = now
            vg.finish[idx] = fin
            vg.min_finish = float(vg.finish[:size].min())
            ops = vg.ops
            rate_list = nr.tolist()
            for j, i in enumerate(idx.tolist()):
                ops[i].rate = rate_list[j]
        return n

    def _vg_build_table(self, vg: _VectorGroup, key: tuple):
        """Memo miss: one scalar assignment fills the signature table."""
        ops = [op for op in vg.ops if op is not None]
        rates = self.model.assign(ops)
        table = _np.zeros(len(vg.counts))
        for op in ops:
            table[op._vsig] = rates.get(op, 0.0)
        if table.min() < 0:
            raise SimulationError(
                f"model returned a negative rate for group {vg.key!r}"
            )
        memo = vg.memo
        if len(memo) >= _VectorGroup.MEMO_LIMIT:
            memo.clear()
        memo[key] = table
        return table

    def _vg_pop(self, vg: _VectorGroup, now: float, done: List[FluidOp]) -> None:
        """Sweep one group's finished rows (array order = issue order)."""
        size = vg.size
        finish = vg.finish
        idx = (finish[:size] <= now).nonzero()[0]
        if not idx.size:
            return
        ops = vg.ops
        counts = vg.counts
        active = self.active
        rate = vg.rate
        sig = vg.sig
        for i in idx.tolist():
            op = ops[i]
            op.remaining = 0.0
            op.finished_at = now
            op._vg = None
            ops[i] = None
            counts[op._vsig] -= 1
            sig[i] = _VectorGroup.DEAD_SIG
            rate[i] = 0.0
            finish[i] = _INF
            active.discard(op)
            done.append(op)
        vg.n_live -= idx.size
        vg.min_finish = float(finish[:size].min())
        self._dirty_keys.add(vg.key)

    # ------------------------------------------------------------------
    def cancel_op(self, op: FluidOp) -> bool:
        """Withdraw an in-flight op without completing it.

        Used by speculative-execution loser cancellation
        (:meth:`repro.sim.engine.Engine.cancel_tree`).  The caller must
        settle the scheduler to the current instant first so the op's
        progress up to cancellation is debited and observed -- interval
        observers then account exactly the work that physically
        happened before the cancel, no more.  The op never reaches the
        completion queue: its group slot is freed, its heap entries are
        retired via the version counter, and survivors' rates are
        recomputed at the next rerate (the freed bandwidth speeds them
        up from *now*, not retroactively).  Returns False if the op was
        not active (already completed or never issued).
        """
        if op not in self.active:
            return False
        self.active.discard(op)
        self._ordered_stale = True
        vg = op._vg
        if vg is not None:
            # Mirror the completion sweep's row teardown (_vg_pop) --
            # minus the done-list append.
            i = op._vi
            vg.ops[i] = None
            vg.counts[op._vsig] -= 1
            vg.sig[i] = _VectorGroup.DEAD_SIG
            vg.rate[i] = 0.0
            vg.finish[i] = _INF
            vg.n_live -= 1
            vg.min_finish = (
                float(vg.finish[: vg.size].min()) if vg.size else _INF
            )
            op._vg = None
            self._dirty_keys.add(vg.key)
        else:
            op._heap_ver += 1  # retire live heap entries lazily
            self._scalar_live -= 1
            key = op._res_key
            group = self._groups.get(key)
            if group is not None and type(group) is not _VectorGroup:
                group.discard(op)
                if not group:
                    del self._groups[key]
                self._dirty_keys.add(key)
        op.rate = 0.0
        op._finish = _INF
        self.dirty = True
        self.ops_cancelled += 1
        return True

    def predicted_horizon(self, key) -> Optional[float]:
        """Latest finite scheduled finish time in one resource group.

        For a cluster shard domain this is "when does everything this
        shard currently has in flight drain, at current rates" -- the
        fluid model's native straggler signal.  Returns ``None`` when
        the group has no live ops or every live op is stalled.
        """
        group = self._groups.get(key)
        if group is None:
            return None
        best = None
        if type(group) is _VectorGroup:
            size = group.size
            if size:
                fin = group.finish[:size]
                live = fin[fin < _INF]
                if live.size:
                    best = float(live.max())
        else:
            for op in group:  # reprolint: disable=SIM003 -- max() is order-independent
                f = op._finish
                if f < _INF and (best is None or f > best):
                    best = f
        return best

    # ------------------------------------------------------------------
    def invalidate_rates(self) -> None:
        """Force a full re-rate at the next settle point.

        Used when the rate model's *global* state changes mid-run (e.g.
        a fault-injected throughput-degradation window opening or
        closing): every resource group is marked dirty so the next
        ``rerate`` call recomputes all active rates under the new model
        state.  Vector groups re-key their assignment-table memo on the
        model's state token, so degraded windows never reuse healthy
        tables.
        """
        self._dirty_keys.update(self._groups)
        if self._groups:
            self.dirty = True

    def pop_completed(self, now: float) -> list[FluidOp]:
        """Remove and return ops whose scheduled finish time has arrived.

        Ordering invariant (relied on by the engine's batch completion
        and documented by ``tests/sim/test_fluid_vector.py``): all ops
        finishing at (or before) ``now`` are coalesced into one batch
        and returned in ascending op id (``seq``) order -- *not* in heap
        or group order -- so simultaneous completions resume their
        waiters deterministically under either kernel path.

        Schedule fuzzing (``engine.schedule_fuzz``) deliberately permutes
        this same-instant completion batch *after* it leaves here: the
        engine shuffles the returned list before waking waiters, so
        correct workloads must not depend on the ``seq`` tie order.  The
        ascending-``seq`` contract above is the reproducible baseline,
        not a guarantee workloads may lean on.
        """
        done: list[FluidOp] = []
        for vg in self._vgroups:
            if vg.min_finish <= now:
                self._vg_pop(vg, now, done)
        heap = self._heap
        while heap:
            t, _seq, ver, op = heap[0]
            if ver != op._heap_ver:
                heapq.heappop(heap)  # stale entry (rate changed / completed)
                continue
            if t > now:
                break
            heapq.heappop(heap)
            op._heap_ver += 1
            op.remaining = 0.0
            op.finished_at = now
            self.active.discard(op)
            self._scalar_live -= 1
            key = op._res_key
            group = self._groups.get(key)
            if group is not None and type(group) is not _VectorGroup:
                group.discard(op)
                if not group:
                    del self._groups[key]
                self._dirty_keys.add(key)
            done.append(op)
        if done:
            self.dirty = True
            self._ordered_stale = True
            self.ops_completed += len(done)
            if len(done) > 1:
                done.sort(key=_SEQ_KEY)
        return done

    def next_completion(self, now: float) -> Optional[float]:
        """Earliest absolute time an active op completes, or ``None``.

        Ops with zero rate never complete on their own; if *every* active
        op is stalled the scheduler reports ``None`` and the engine will
        raise a deadlock error unless some other event intervenes.
        """
        best = None
        for vg in self._vgroups:
            m = vg.min_finish
            if m < _INF and (best is None or m < best):
                best = m
        heap = self._heap
        while heap:
            t, _seq, ver, op = heap[0]
            if ver != op._heap_ver:
                heapq.heappop(heap)
                continue
            if best is None or t < best:
                best = t
            break
        return best
