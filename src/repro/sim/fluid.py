"""Fluid-flow work scheduling.

In-flight work items (:class:`FluidOp`) progress simultaneously at rates
assigned by a :class:`RateModel`.  Whenever the set of active ops changes,
the scheduler re-rates every op and computes the next completion time.
This is the standard processor-sharing "fluid" approximation used by
storage and network simulators: instead of modelling individual requests,
each op is a flow whose instantaneous rate depends on who else is active.

Rate semantics: an op carries ``work`` in arbitrary units (bytes for I/O,
cpu-seconds for compute) and the model assigns a rate in units/second.
The model also exposes max-min *progressive filling* over shared
resources (see :class:`repro.device.host.HostModel`), but the kernel only
requires the ``assign`` callable.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Optional

from repro.errors import SimulationError

#: Ops whose remaining work falls below this fraction of their original
#: work (or below an absolute epsilon) are considered complete.  Guards
#: against floating-point residue keeping an op alive forever.
_EPSILON = 1e-9

_op_counter = itertools.count()


class FluidOp:
    """A unit of timed work processed by the fluid scheduler.

    Parameters
    ----------
    work:
        Total amount of work (bytes for I/O ops, cpu-seconds for compute
        ops).  Must be non-negative; zero-work ops complete immediately.
    kind:
        Free-form string consumed by the rate model, e.g. ``"io"`` or
        ``"cpu"``.
    tag:
        Category label used for statistics attribution (e.g. ``"RUN
        read"``).  Not interpreted by the kernel.
    attrs:
        Arbitrary attributes the rate model understands (direction,
        access pattern, host-traffic ratio, ...).
    """

    __slots__ = (
        "work",
        "kind",
        "tag",
        "attrs",
        "remaining",
        "rate",
        "started_at",
        "finished_at",
        "seq",
        "_waiter",
        "on_complete",
    )

    def __init__(self, work: float, kind: str, tag: str = "", **attrs):
        if work < 0:
            raise ValueError(f"FluidOp work must be >= 0, got {work}")
        self.work = float(work)
        self.kind = kind
        self.tag = tag
        self.attrs = attrs
        self.remaining = float(work)
        self.rate = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.seq = next(_op_counter)
        self._waiter = None  # Process resumed on completion (set by Engine)
        self.on_complete: Optional[Callable[["FluidOp"], object]] = None

    @property
    def duration(self) -> float:
        """Elapsed simulated time, valid once the op has finished."""
        if self.started_at is None or self.finished_at is None:
            raise SimulationError("op has not completed yet")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidOp(kind={self.kind!r}, tag={self.tag!r}, "
            f"work={self.work:.3g}, remaining={self.remaining:.3g})"
        )


class RateModel:
    """Assigns instantaneous rates to the set of active ops.

    Subclasses implement :meth:`assign`.  The kernel calls it every time
    the active-op population changes; between calls rates are constant.
    """

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        raise NotImplementedError


class UniformRateModel(RateModel):
    """Trivial model: every op progresses at a fixed rate.

    Useful for kernel unit tests where device semantics are irrelevant.
    """

    def __init__(self, rate: float = 1.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def assign(self, ops: Iterable[FluidOp]) -> Dict[FluidOp, float]:
        return {op: self.rate for op in ops}


class FluidScheduler:
    """Tracks active ops, advances their work, finds next completion.

    The owning :class:`~repro.sim.engine.Engine` drives this object:
    ``settle`` debits work done since the last settle, ``rerate`` asks the
    model for fresh rates, and ``next_completion`` reports when the
    earliest op will finish under current rates.
    """

    def __init__(self, model: RateModel):
        self.model = model
        self.active: set[FluidOp] = set()
        self._last_settled = 0.0
        self.dirty = False
        #: Observers called as fn(t0, t1, ops) for every constant-rate
        #: interval, used by bandwidth timeline recorders.
        self.interval_observers: list[Callable[[float, float, list], None]] = []

    def add(self, op: FluidOp, now: float) -> None:
        if op.remaining <= 0:
            # Zero-work op: mark complete instantly; caller handles wakeup.
            op.started_at = now
            op.finished_at = now
            return
        op.started_at = now
        self.active.add(op)
        self.dirty = True

    def settle(self, now: float) -> None:
        """Debit work accomplished between the last settle and ``now``."""
        dt = now - self._last_settled
        if dt < 0:
            raise SimulationError(f"time went backwards: {dt}")
        if dt > 0 and self.active:
            for observer in self.interval_observers:
                observer(self._last_settled, now, list(self.active))
            for op in self.active:
                op.remaining -= op.rate * dt
        self._last_settled = now

    def rerate(self, now: float) -> None:
        """Recompute rates for all active ops from the model."""
        if self.active:
            rates = self.model.assign(self.active)
            for op in self.active:
                rate = rates.get(op, 0.0)
                if rate < 0:
                    raise SimulationError(f"model returned negative rate for {op}")
                op.rate = rate
        self.dirty = False

    def pop_completed(self, now: float) -> list[FluidOp]:
        """Remove and return ops whose work is (numerically) exhausted."""
        done = [
            op
            for op in self.active
            if op.remaining <= _EPSILON * max(1.0, op.work)
        ]
        for op in done:
            op.remaining = 0.0
            op.finished_at = now
            self.active.discard(op)
        if done:
            self.dirty = True
        return done

    def next_completion(self, now: float) -> Optional[float]:
        """Earliest absolute time an active op completes, or ``None``.

        Ops with zero rate never complete on their own; if *every* active
        op is stalled the scheduler reports ``None`` and the engine will
        raise a deadlock error unless some other event intervenes.
        """
        best: Optional[float] = None
        for op in self.active:
            if op.rate <= 0:
                continue
            t = now + op.remaining / op.rate
            if best is None or t < best:
                best = t
        return best
