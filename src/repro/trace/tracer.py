"""Sim-time structured tracing: spans, events, op attribution, counters.

A :class:`Tracer` is the observe-only twin of the runtime sanitizer: it
installs into a :class:`~repro.machine.Machine` (or a whole
:class:`~repro.cluster.Cluster`) through the same zero-overhead hook
pattern -- every hook site in the engine and fluid scheduler guards on
``tracer is None``, so an uninstalled tracer costs one attribute load
and an installed one never changes simulated results.

What gets recorded (all timestamps are *simulated* seconds):

* **Spans** -- named intervals with parent nesting, opened with
  :meth:`Tracer.span` (usually via :meth:`Machine.trace_span`): sort
  phases, per-chunk runs, merge passes, scheduler job queue/service.
* **Op records** -- one per :class:`~repro.sim.fluid.FluidOp` entering
  the scheduler: tag, device class (direction/pattern), user bytes,
  internal work, write/read amplification, the read-write interference
  multiplier in force at issue time, the issuing coroutine and the
  enclosing span -- so traffic rolls up by phase x device class x shard.
* **Instant events** -- faults, retries, backoff, crashes, slow
  windows, scheduler admissions; plus (``detail=True``) engine
  spawn/block/resume and fluid re-rate events.
* **Counter samples** -- read/write bandwidth and CPU cores per
  machine track (from a private interval observer), DRAM usage (from
  the :class:`~repro.storage.dram.DramTracker` change hook) and
  scheduler queue depth.

Export formats live in :mod:`repro.trace.export`; the typed metrics
registry in :mod:`repro.trace.metrics`.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.sim.fluid import (
    OBS_CPU_COMPUTE,
    OBS_CPU_COPY,
    OBS_IO_READ,
    OBS_IO_WRITE,
    OBS_NET,
    FluidOp,
    observer_code,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.sim.engine import Engine, Process


class Span:
    """One named sim-time interval; ``t1`` is ``None`` while open."""

    __slots__ = (
        "sid", "parent", "name", "cat", "track", "proc", "pid", "t0", "t1",
        "args",
    )

    def __init__(
        self,
        sid: int,
        parent: Optional[int],
        name: str,
        cat: str,
        track: str,
        proc: str,
        t0: float,
        args: Optional[dict],
        pid: Optional[int] = None,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.track = track
        self.proc = proc
        #: Owning engine pid (None for spans opened outside the engine
        #: and for retrospective spans); consumed by the critical-path
        #: analyzer, deliberately absent from :meth:`as_dict`.
        self.pid = pid
        self.t0 = t0
        self.t1: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> Optional[float]:
        if self.t1 is None:
            return None
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
            "proc": self.proc,
            "t0": self.t0,
            "t1": self.t1,
            "args": self.args,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t1 is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {state})"


class Tracer:
    """Collects spans, op records, instants and counter samples.

    All identifiers (span/op ids) are allocated from per-tracer
    counters, never from the module-global :class:`FluidOp` sequence --
    the global sequence does not reset between runs in one process, so
    leaking it into exports would break byte-identical re-runs.

    ``detail=True`` additionally records engine scheduling events
    (spawn/block/resume) and fluid re-rates; these are high-volume and
    off by default.

    ``analyze=True`` arms the blocked-reason hooks consumed by
    :mod:`repro.trace.analyze`: one *wait record* per blocking engine
    command (why each coroutine waited, and on what) and one *process
    record* per spawned coroutine.  Like every other hook these are
    observe-only -- simulated results are bit-identical either way --
    and cost nothing when off (one extra attribute test per block
    site).
    """

    #: Track key used for a standalone machine (cluster shards use
    #: their domain keys instead).
    MAIN_TRACK = "machine"

    def __init__(self, detail: bool = False, analyze: bool = False):
        self.detail = detail
        self.analyze = analyze
        self.spans: List[Span] = []
        self.ops: List[dict] = []
        self.instants: List[dict] = []
        #: ``(t, track, series, value)`` rows, change-suppressed per
        #: ``(track, series)`` so constant stretches cost one sample.
        self.counters: List[Tuple[float, str, str, float]] = []
        #: Closed wait records (``analyze`` mode), in engine-event
        #: order: one dict per blocking command with a positive
        #: duration; see :meth:`wait_end` for the schema.
        self.waits: List[dict] = []
        #: Process lifecycle records (``analyze`` mode):
        #: ``{pid, name, parent, t0, t1}`` per spawned coroutine.
        self.procs: List[dict] = []
        self._sid = itertools.count(1)
        self._oid = itertools.count(1)
        #: Per-process span stacks; key 0 is "outside the engine".
        self._stacks: Dict[int, List[Span]] = {}
        #: Process currently being stepped (set by the engine).
        self._current: Optional["Process"] = None
        self._engine: Optional["Engine"] = None
        #: Track key -> machine, for profile/host lookups at op issue.
        self._machines: Dict[str, "Machine"] = {}
        self._last_counter: Dict[Tuple[str, str], float] = {}
        #: Timestamp of the last *emitted* sample per (track, series);
        #: lets the root-span flush skip tracks already current.
        self._counter_t: Dict[Tuple[str, str], float] = {}
        self._proc_index: Dict[int, dict] = {}
        self._open_waits: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (0.0 before any engine is attached)."""
        return self._engine.now if self._engine is not None else 0.0

    def install(self, machine: "Machine") -> "Tracer":
        """Hook one standalone machine (or one pre-built shard)."""
        key = machine.domain if machine.domain is not None else self.MAIN_TRACK
        self._machines[key] = machine
        machine.tracer = self
        self.attach_engine(machine.engine)
        self._register_machine_hooks(machine, key)
        return self

    def install_cluster(self, cluster) -> "Tracer":
        """Hook a cluster: one tracer watches the shared engine, every
        shard gets its own counter tracks, the interconnect reports
        aggregate bandwidth on a ``"net"`` track, and the cluster-wide
        DRAM pool reports on the ``"cluster"`` track."""
        cluster.tracer = self
        self.attach_engine(cluster.engine)
        for shard in cluster.shards:
            self.watch_shard(shard)
        if cluster.net_stats is not None:
            cluster.engine.fluid.interval_observers.append(
                self._make_net_observer()
            )
        self._hook_dram(cluster.dram, "cluster")
        return self

    def watch_shard(self, shard: "Machine") -> None:
        """Register one cluster shard's counter track (also used when a
        shard is admitted mid-run via :meth:`Cluster.add_shard`)."""
        key = shard.domain
        self._machines[key] = shard
        shard.tracer = self
        shard.engine.fluid.interval_observers.append(
            self._make_interval_observer(shard, key)
        )

    def reattach_cluster(self, cluster) -> None:
        """Post-:meth:`Cluster.reboot` re-install: the shared engine,
        fluid scheduler and DRAM pool were replaced; recorded spans,
        ops and counters survive.  Mirrors :meth:`reattach` for the
        cluster topology."""
        self.attach_engine(cluster.engine)
        for shard in cluster.shards:
            cluster.engine.fluid.interval_observers.append(
                self._make_interval_observer(shard, shard.domain)
            )
        if cluster.net_stats is not None:
            cluster.engine.fluid.interval_observers.append(
                self._make_net_observer()
            )
        self._hook_dram(cluster.dram, "cluster")

    def attach_engine(self, engine: "Engine") -> None:
        """Hook one engine (re-run by :meth:`Machine.reboot` on the
        replacement engine; the old engine's processes died with it)."""
        engine.tracer = self
        engine.fluid.tracer = self
        self._engine = engine
        self._current = None

    def reattach(self, machine: "Machine") -> None:
        """Post-reboot re-install: the machine's engine, fluid scheduler
        and DRAM tracker were all replaced; recorded data survives."""
        key = machine.domain if machine.domain is not None else self.MAIN_TRACK
        self.attach_engine(machine.engine)
        self._register_machine_hooks(machine, key)

    def _register_machine_hooks(self, machine: "Machine", key: str) -> None:
        machine.engine.fluid.interval_observers.append(
            self._make_interval_observer(machine, key)
        )
        self._hook_dram(machine.dram, key)

    def _hook_dram(self, dram, key: str) -> None:
        def on_change(used: int, _key: str = key) -> None:
            self.counter_sample(_key, "dram_used", float(used))

        dram.on_change = on_change
        if self.analyze:
            def on_pressure(requested: int, used: int, _key: str = key) -> None:
                self.instant(
                    "dram_pressure",
                    cat="analyze",
                    track=_key,
                    requested=requested,
                    used=used,
                )

            dram.on_pressure = on_pressure
        # Emit the initial level so the DRAM track exists even for runs
        # that never allocate (OnePass consults would_fit only).
        self._last_counter.pop((key, "dram_used"), None)
        self.counter_sample(key, "dram_used", float(dram.used))

    def _make_interval_observer(self, machine: "Machine", key: str):
        """A private bandwidth/cores sampler for one machine track.

        Mirrors :meth:`repro.device.stats.DeviceStats.observe` but emits
        counter samples instead of accumulating totals; purely
        additive, so installing it cannot change simulated results.
        """
        domain = machine.domain
        io_cpu_bw = machine.host.io_cpu_bw
        copy_bw = machine.host.copy_bw_per_core

        def observe(t0: float, t1: float, ops: list) -> None:
            if t1 - t0 <= 0:
                return
            read_bw = 0.0
            write_bw = 0.0
            cores = 0.0
            for op in ops:
                attrs = op.attrs
                if domain is not None and (
                    attrs is None or attrs.get("domain") != domain
                ):
                    continue
                # Cached classification (see fluid.observer_code); same
                # adds in the same order as the attribute branches.
                code = op._obs
                if code is None:
                    code = observer_code(op)
                if code == OBS_IO_READ:
                    read_bw += op.rate
                    cores += op.rate / io_cpu_bw
                elif code == OBS_IO_WRITE:
                    write_bw += op.rate
                    cores += op.rate / io_cpu_bw
                elif code == OBS_CPU_COMPUTE:
                    cores += op.rate
                elif code == OBS_CPU_COPY:
                    cores += op.rate / copy_bw
            self.counter_sample(key, "read_bw", read_bw, t=t0)
            self.counter_sample(key, "write_bw", write_bw, t=t0)
            self.counter_sample(key, "cores", cores, t=t0)

        return observe

    def _make_net_observer(self):
        """Aggregate interconnect bandwidth sampler (``"net"`` track).

        Counter-sample counterpart of
        :class:`repro.device.stats.InterconnectStats`; purely additive.
        """

        def observe(t0: float, t1: float, ops: list) -> None:
            if t1 - t0 <= 0:
                return
            net_bw = 0.0
            seen = False
            for op in ops:
                code = op._obs
                if code is None:
                    code = observer_code(op)
                if code == OBS_NET:
                    net_bw += op.rate
                    seen = True
            if seen or self._last_counter.get(("net", "net_bw")):
                self.counter_sample("net", "net_bw", net_bw, t=t0)

        return observe

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        cat: str = "phase",
        track: Optional[str] = None,
        **args: Any,
    ) -> Span:
        proc = self._current
        key = proc.pid if proc is not None else 0
        stack = self._stacks.setdefault(key, [])
        parent = stack[-1] if stack else None
        if parent is None and key != 0:
            # A process with no open span of its own nests under the
            # innermost span opened outside the engine (the root sort
            # span), keeping the exported tree connected.
            main = self._stacks.get(0)
            if main:
                parent = main[-1]
        span = Span(
            sid=next(self._sid),
            parent=None if parent is None else parent.sid,
            name=name,
            cat=cat,
            track=track if track is not None else self.MAIN_TRACK,
            proc=proc.name if proc is not None else "main",
            t0=self.now,
            args=args or None,
            pid=proc.pid if proc is not None else None,
        )
        stack.append(span)
        self.spans.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.t1 = self.now
        proc = self._current
        key = proc.pid if proc is not None else 0
        stack = self._stacks.get(key)
        if stack:
            if stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)
        if span.parent is None and key == 0 and not self._stacks.get(0):
            # The root span (e.g. ``sort:wiscsort``) just closed: emit a
            # terminal sample for every counter track.  Samples are
            # change-suppressed, so a track whose value went flat before
            # the end would otherwise stop short of the run's end time.
            self._flush_counters(span.t1)

    def _flush_counters(self, t: float) -> None:
        for skey in sorted(self._last_counter):
            last_t = self._counter_t.get(skey)
            if last_t is None or last_t < t:
                self._counter_t[skey] = t
                self.counters.append((t, skey[0], skey[1], self._last_counter[skey]))

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "phase",
        track: Optional[str] = None,
        **args: Any,
    ):
        """``with tracer.span("phase:runs"):`` -- sim-time scoped span."""
        s = self.begin_span(name, cat=cat, track=track, **args)
        try:
            yield s
        finally:
            self.end_span(s)

    def add_complete_span(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "phase",
        track: Optional[str] = None,
        proc: str = "main",
        parent: Optional[int] = None,
        **args: Any,
    ) -> Span:
        """Record a span with explicit endpoints (retrospective spans:
        scheduler queue/service intervals known only at completion)."""
        span = Span(
            sid=next(self._sid),
            parent=parent,
            name=name,
            cat=cat,
            track=track if track is not None else self.MAIN_TRACK,
            proc=proc,
            t0=t0,
            args=args or None,
        )
        span.t1 = t1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Instants and counters
    # ------------------------------------------------------------------
    def instant(
        self,
        name: str,
        cat: str = "event",
        track: Optional[str] = None,
        **args: Any,
    ) -> None:
        proc = self._current
        self.instants.append(
            {
                "name": name,
                "cat": cat,
                "track": track if track is not None else self.MAIN_TRACK,
                "proc": proc.name if proc is not None else "main",
                "t": self.now,
                "args": args or None,
            }
        )

    def counter_sample(
        self, track: str, series: str, value: float, t: Optional[float] = None
    ) -> None:
        skey = (track, series)
        last = self._last_counter.get(skey)
        if last is not None and last == value:
            return
        self._last_counter[skey] = value
        t_sample = self.now if t is None else t
        self._counter_t[skey] = t_sample
        self.counters.append((t_sample, track, series, value))

    # ------------------------------------------------------------------
    # Engine / fluid hooks (called only when installed)
    # ------------------------------------------------------------------
    def on_op_issue(self, op: "FluidOp", t_issue: float) -> None:
        """Fluid-scheduler hook: every op passes through exactly once."""
        attrs = op.attrs
        domain = None if attrs is None else attrs.get("domain")
        key = domain if domain is not None else self.MAIN_TRACK
        proc = self._current
        stack = (
            self._stacks.get(proc.pid) if proc is not None else self._stacks.get(0)
        )
        span = stack[-1] if stack else None
        rec: dict = {
            "oid": next(self._oid),
            "tag": op.tag,
            "kind": op.kind,
            "track": key,
            "proc": proc.name if proc is not None else "main",
            "span": None if span is None else span.sid,
            "phase": None if span is None else span.name,
            "t0": t_issue,
            "t1": None,
            "work": op.work,
        }
        if op.kind == "io" and attrs is not None:
            user = float(attrs.get("user_bytes", 0.0))
            pattern = attrs.get("pattern")
            rec["direction"] = attrs["direction"]
            rec["pattern"] = getattr(pattern, "value", pattern)
            rec["bytes"] = user
            rec["threads"] = attrs.get("threads", 1)
            rec["amplification"] = (op.work / user) if user > 0 else 0.0
            machine = self._machines.get(key)
            if machine is not None:
                rec["interference"] = self._interference(machine, attrs, domain)
        elif op.kind == "cpu" and attrs is not None:
            rec["mode"] = attrs.get("mode", "compute")
            rec["cores"] = attrs.get("cores", 1)
        op._trace = rec
        self.ops.append(rec)

    def _interference(self, machine: "Machine", attrs: dict, domain) -> float:
        """Read-write interference multiplier in force at issue time.

        Counts concurrent reader/writer threads in the op's domain the
        same way :class:`~repro.device.device.BraidRateModel` does when
        capping per-op bandwidth, then applies the profile's
        interference curve.  Thread counts are integer sums, so the set
        iteration order cannot affect the result.
        """
        fluid = self._engine.fluid
        readers = 0.0
        writers = 0.0
        for other in fluid.active:  # reprolint: disable=SIM003 -- integer sums are order-independent
            oattrs = other.attrs
            if other.kind != "io" or oattrs is None:
                continue
            if domain is not None and oattrs.get("domain") != domain:
                continue
            if oattrs["direction"] == "read":
                readers += oattrs.get("threads", 1)
            else:
                writers += oattrs.get("threads", 1)
        interference = machine.profile.interference
        if attrs["direction"] == "read":
            return interference.read_multiplier(writers)
        return interference.write_multiplier(readers)

    def on_op_complete(self, op: "FluidOp", t_done: float) -> None:
        rec = getattr(op, "_trace", None)
        if rec is not None and rec["t1"] is None:
            rec["t1"] = t_done

    def on_rerate(self, n_ops: int) -> None:
        """Fluid re-rate event (``detail`` mode only; see caller gate)."""
        self.instants.append(
            {
                "name": "rerate",
                "cat": "sched",
                "track": "sched",
                "proc": "fluid",
                "t": self.now,
                "args": {"ops": n_ops},
            }
        )

    def sched_event(self, verb: str, proc: "Process") -> None:
        """Engine spawn/block/resume event (``detail`` mode only)."""
        self.instants.append(
            {
                "name": verb,
                "cat": "sched",
                "track": "sched",
                "proc": proc.name,
                "t": self.now,
                "args": None,
            }
        )

    # ------------------------------------------------------------------
    # Blocked-reason hooks (``analyze`` mode only; see caller gates)
    # ------------------------------------------------------------------
    def analyze_spawn(self, proc: "Process") -> None:
        """Record a process's birth; parent is the spawning coroutine
        (None for processes spawned from outside the engine)."""
        parent = self._current
        rec = {
            "pid": proc.pid,
            "name": proc.name,
            "parent": parent.pid if parent is not None else None,
            "t0": self.now,
            "t1": None,
        }
        self._proc_index[proc.pid] = rec
        self.procs.append(rec)

    def analyze_finish(self, proc: "Process") -> None:
        rec = self._proc_index.get(proc.pid)
        if rec is not None and rec["t1"] is None:
            rec["t1"] = self.now

    def wait_begin(
        self,
        proc: "Process",
        kind: str,
        reason: Optional[str] = None,
        resource: Any = None,
    ) -> None:
        """Open a wait record for ``proc`` at the current instant.

        ``kind`` is one of ``io`` / ``parallel`` / ``sleep`` / ``join``
        / ``primitive``; for primitives ``reason`` carries the
        resource's blocked-reason tag (or the verb) and ``resource``
        the primitive itself (its name is recorded).
        """
        self._open_waits[proc.pid] = {
            "pid": proc.pid,
            "t0": self.now,
            "t1": None,
            "kind": kind,
            "reason": reason,
            "resource": getattr(resource, "name", None) or None,
        }

    def wait_end(self, proc: "Process") -> None:
        """Close ``proc``'s open wait record (no-op without one).

        Must run while ``proc.blocked_on`` is still set: the record
        snapshots what the process was parked on -- the waited-for op's
        kind/track/direction (``io``), each carrier's snapshot plus its
        finish time (``parallel``), or the joined pids (``join``).
        Zero-duration waits are dropped; they contribute nothing to any
        decomposition.
        """
        rec = self._open_waits.pop(proc.pid, None)
        if rec is None:
            return
        t1 = self.now
        if t1 <= rec["t0"]:
            return
        rec["t1"] = t1
        blocked = proc.blocked_on
        kind = rec["kind"]
        if kind == "io" and isinstance(blocked, FluidOp):
            rec["op"] = self._op_snapshot(blocked)
        elif kind == "parallel" and isinstance(blocked, list):
            rec["members"] = [
                self._op_snapshot(op) for op in blocked if isinstance(op, FluidOp)
            ]
        elif kind == "join" and blocked is not None:
            targets = getattr(blocked, "targets", None)
            if targets is not None:
                rec["targets"] = [t.pid for t in targets]
        self.waits.append(rec)

    def _op_snapshot(self, op: FluidOp) -> dict:
        attrs = op.attrs
        domain = None if attrs is None else attrs.get("domain")
        snap: dict = {
            "kind": op.kind,
            "track": domain if domain is not None else self.MAIN_TRACK,
            "t1": op.finished_at,
        }
        if op.kind == "io" and attrs is not None:
            snap["direction"] = attrs.get("direction")
        return snap

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def end_time(self) -> float:
        """Latest timestamp recorded anywhere (used to close open spans
        at export time and to bound counter tracks)."""
        t = 0.0
        for span in self.spans:
            if span.t1 is not None and span.t1 > t:
                t = span.t1
            elif span.t0 > t:
                t = span.t0
        for rec in self.ops:
            done = rec["t1"]
            if done is not None and done > t:
                t = done
        for ev in self.instants:
            if ev["t"] > t:
                t = ev["t"]
        if self.counters:
            last = self.counters[-1][0]
            if last > t:
                t = last
        return t

    def span_names(self) -> List[str]:
        """Distinct span names in first-appearance order."""
        seen: Dict[str, bool] = {}
        for span in self.spans:
            seen.setdefault(span.name, True)
        return list(seen)

    def rollup_rows(self) -> List[Tuple[str, str, str, str, float, float, int]]:
        """Traffic grouped by phase x device class x track.

        Returns ``(phase, tag, class, track, user_bytes, work, ops)``
        rows sorted by descending work -- the attribution table behind
        :func:`repro.trace.export.render_phase_rollup`.
        """
        acc: Dict[Tuple[str, str, str, str], List[float]] = {}
        for rec in self.ops:
            if rec["kind"] == "io":
                klass = f"{rec['direction']}/{rec['pattern']}"
            else:
                klass = f"cpu/{rec.get('mode', 'compute')}"
            gkey = (
                rec["phase"] if rec["phase"] is not None else "(unattributed)",
                rec["tag"] or "(untagged)",
                klass,
                rec["track"],
            )
            slot = acc.get(gkey)
            if slot is None:
                slot = [0.0, 0.0, 0]
                acc[gkey] = slot
            slot[0] += rec.get("bytes", 0.0)
            slot[1] += rec["work"]
            slot[2] += 1
        rows = [
            (phase, tag, klass, trk, vals[0], vals[1], vals[2])
            for (phase, tag, klass, trk), vals in sorted(acc.items())
        ]
        rows.sort(key=lambda r: (-r[5], r[0], r[1], r[2], r[3]))
        return rows
