"""``repro.trace``: sim-time tracing, metrics registry, trace export.

The observability layer for the simulator.  A :class:`Tracer` installs
into a machine or cluster through the same zero-overhead hook pattern
as the runtime sanitizer -- observe-only, so traced runs produce
bit-identical simulated results -- and records sim-time spans, per-op
device events with byte/class/amplification/interference attribution,
fault/scheduler instants and bandwidth/DRAM/queue-depth counters.

Quick start::

    from repro import api

    result = api.sort(api.RunOptions(records=50_000, trace="out.trace.json"))
    # open out.trace.json in https://ui.perfetto.dev

Programmatic::

    from repro.trace import Tracer, dumps_chrome_trace

    tracer = Tracer()
    tracer.install(machine)      # or tracer.install_cluster(cluster)
    ... run the workload ...
    json_text = dumps_chrome_trace(tracer)

``Tracer(analyze=True)`` additionally records blocked-wait and
process-lifetime records for the critical-path analyzer
(:func:`analyze_tracer`, ``python -m repro analyze``), still
observe-only: simulated results stay bit-identical.
"""

from repro.trace.analyze import (
    AnalysisReport,
    PhaseBreakdown,
    analyze_tracer,
    diff_reports,
    parse_what_if,
    render_diff,
)
from repro.trace.critical_path import CATEGORIES, CriticalPath, blame_table
from repro.trace.export import (
    chrome_trace_events,
    dumps_chrome_trace,
    load_chrome_trace,
    load_report_json,
    render_phase_rollup,
    render_trace_report,
    spans_jsonl,
    write_chrome_trace,
    write_report_json,
    write_spans_jsonl,
)
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedSeries,
    counter_windows,
    snapshot_cluster,
    snapshot_machine,
    tracer_histograms,
)
from repro.trace.tracer import Span, Tracer

__all__ = [
    "AnalysisReport",
    "CATEGORIES",
    "Counter",
    "CriticalPath",
    "PhaseBreakdown",
    "WindowedSeries",
    "analyze_tracer",
    "blame_table",
    "counter_windows",
    "diff_reports",
    "parse_what_if",
    "render_diff",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "load_chrome_trace",
    "load_report_json",
    "render_phase_rollup",
    "render_trace_report",
    "snapshot_cluster",
    "snapshot_machine",
    "spans_jsonl",
    "tracer_histograms",
    "write_chrome_trace",
    "write_report_json",
    "write_spans_jsonl",
]
