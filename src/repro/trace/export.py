"""Trace exporters: Chrome/Perfetto JSON, JSONL spans, text rollups.

The Chrome ``trace_event`` export opens directly in
https://ui.perfetto.dev or ``chrome://tracing``: each machine/shard
track becomes a process row, each coroutine a thread row, spans render
as nested slices, per-op device events as slices with byte/class/
amplification/interference args, and bandwidth/DRAM/queue-depth
samples as counter tracks.  Timestamps are *simulated* microseconds.

All exports are deterministic: ids are per-tracer sequence numbers,
pids/tids are assigned by first appearance, and JSON is dumped with
sorted keys and fixed separators -- two runs of the same seed produce
byte-identical files (this is CI-gated).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import Tracer
from repro.units import fmt_bytes, fmt_seconds

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (float; sub-us ops are
    common at PMEM speeds and Perfetto accepts fractional timestamps)."""
    return t * 1e6


class _TrackIds:
    """Deterministic pid/tid assignment by first appearance."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}

    def pid(self, track: str) -> int:
        pid = self._pids.get(track)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[track] = pid
        return pid

    def tid(self, pid: int, proc: str) -> int:
        key = (pid, proc)
        tid = self._tids.get(key)
        if tid is None:
            # tid 0 is reserved for counter tracks on every process row.
            tid = sum(1 for (p, _), _t in self._tids.items() if p == pid) + 1
            self._tids[key] = tid
        return tid

    def metadata_events(self) -> List[dict]:
        events: List[dict] = []
        for track, pid in self._pids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        for (pid, proc), tid in self._tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": proc},
                }
            )
        return events


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The ``traceEvents`` list for one tracer, in deterministic order."""
    ids = _TrackIds()
    end = tracer.end_time()
    body: List[dict] = []

    for span in tracer.spans:
        pid = ids.pid(span.track)
        tid = ids.tid(pid, span.proc)
        t1 = span.t1 if span.t1 is not None else end
        args = dict(span.args) if span.args else {}
        if span.t1 is None:
            args["unclosed"] = True
        event = {
            "ph": "X",
            "name": span.name,
            "cat": span.cat,
            "pid": pid,
            "tid": tid,
            "ts": _us(span.t0),
            "dur": _us(t1 - span.t0),
            "id": span.sid,
        }
        if args:
            event["args"] = args
        body.append(event)

    for rec in tracer.ops:
        pid = ids.pid(rec["track"])
        tid = ids.tid(pid, rec["proc"])
        t1 = rec["t1"] if rec["t1"] is not None else end
        if rec["kind"] == "io":
            args = {
                "class": f"{rec['direction']}/{rec['pattern']}",
                "bytes": rec["bytes"],
                "work": rec["work"],
                "amplification": rec["amplification"],
                "threads": rec["threads"],
            }
            if "interference" in rec:
                args["interference"] = rec["interference"]
        else:
            args = {
                "class": f"cpu/{rec.get('mode', 'compute')}",
                "work": rec["work"],
            }
        if rec["phase"] is not None:
            args["phase"] = rec["phase"]
        body.append(
            {
                "ph": "X",
                "name": rec["tag"] or rec["kind"],
                "cat": f"op.{rec['kind']}",
                "pid": pid,
                "tid": tid,
                "ts": _us(rec["t0"]),
                "dur": _us(t1 - rec["t0"]),
                "id": rec["oid"],
                "args": args,
            }
        )

    for t, track, series, value in tracer.counters:
        pid = ids.pid(track)
        body.append(
            {
                "ph": "C",
                "name": series,
                "pid": pid,
                "tid": 0,
                "ts": _us(t),
                "args": {"value": value},
            }
        )

    for ev in tracer.instants:
        pid = ids.pid(ev["track"])
        tid = ids.tid(pid, ev["proc"])
        event = {
            "ph": "i",
            "s": "t",
            "name": ev["name"],
            "cat": ev["cat"],
            "pid": pid,
            "tid": tid,
            "ts": _us(ev["t"]),
        }
        if ev["args"]:
            event["args"] = ev["args"]
        body.append(event)

    return ids.metadata_events() + body


def dumps_chrome_trace(tracer: Tracer) -> str:
    """Serialize to a byte-deterministic Chrome trace JSON string."""
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.trace"},
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(doc, **_JSON_KW)


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps_chrome_trace(tracer))
        fh.write("\n")


def write_report_json(doc, path: str) -> None:
    """Write a schema-stamped report as canonical byte-deterministic JSON.

    ``doc`` may be a plain dict or anything with an ``as_dict()`` (an
    :class:`~repro.trace.analyze.AnalysisReport`, a
    :class:`~repro.cluster.service.ServiceReport`).  The canonical form
    -- sorted keys, no whitespace, trailing newline -- is what the CI
    byte-identity gates ``cmp`` against.
    """
    if hasattr(doc, "as_dict"):
        doc = doc.as_dict()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, **_JSON_KW))
        fh.write("\n")


def load_report_json(path: str) -> dict:
    """Load a report JSON document (for :func:`repro.trace.diff_reports`)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object report document")
    return doc


def spans_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, issue order, sorted keys per line."""
    return "\n".join(
        json.dumps(span.as_dict(), **_JSON_KW) for span in tracer.spans
    )


def write_spans_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        text = spans_jsonl(tracer)
        if text:
            fh.write(text)
            fh.write("\n")


# ----------------------------------------------------------------------
# Text phase rollup (flamegraph-style)
# ----------------------------------------------------------------------
def render_phase_rollup(tracer: Tracer) -> str:
    """Indented span tree with inclusive times plus a traffic table
    grouped by phase x device class x track."""
    end = tracer.end_time()
    lines: List[str] = ["phase rollup (simulated time)"]
    children: Dict[Optional[int], List] = {}
    for span in tracer.spans:
        children.setdefault(span.parent, []).append(span)

    # Direct per-span op aggregates.
    direct: Dict[Optional[int], List[float]] = {}
    for rec in tracer.ops:
        slot = direct.setdefault(rec["span"], [0.0, 0.0, 0])
        if rec["kind"] == "io":
            if rec["direction"] == "read":
                slot[0] += rec["bytes"]
            else:
                slot[1] += rec["bytes"]
        slot[2] += 1

    def walk(span, depth: int) -> None:
        t1 = span.t1 if span.t1 is not None else end
        agg = [0.0, 0.0, 0]

        def fold(s) -> None:
            d = direct.get(s.sid)
            if d is not None:
                agg[0] += d[0]
                agg[1] += d[1]
                agg[2] += d[2]
            for child in children.get(s.sid, ()):
                fold(child)

        fold(span)
        label = f"{'  ' * depth}{span.name}"
        detail = f"{fmt_seconds(t1 - span.t0)}"
        if agg[2]:
            detail += (
                f"  r {fmt_bytes(agg[0])}  w {fmt_bytes(agg[1])}"
                f"  ops {agg[2]}"
            )
        if span.t1 is None:
            detail += "  (unclosed)"
        lines.append(f"  {label:<34s} {detail}")
        for child in children.get(span.sid, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")

    rows = tracer.rollup_rows()
    if rows:
        lines.append("")
        lines.append("traffic by phase x class x track")
        header = (
            f"  {'phase':<24s} {'tag':<18s} {'class':<14s} "
            f"{'track':<10s} {'user':>10s} {'work':>10s} {'ops':>6s}"
        )
        lines.append(header)
        for phase, tag, klass, track, user, work, n_ops in rows:
            lines.append(
                f"  {phase:<24s} {tag:<18s} {klass:<14s} {track:<10s} "
                f"{fmt_bytes(user):>10s} {fmt_bytes(work):>10s} {n_ops:>6d}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace-report: summarize an exported Chrome trace JSON file
# ----------------------------------------------------------------------
def load_chrome_trace(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return doc


def render_trace_report(doc: dict, source: str = "trace") -> str:
    """Offline summary of an exported trace file: span aggregates by
    name, device traffic by class, counter maxima."""
    events = doc["traceEvents"]
    pids: Dict[int, str] = {}
    spans: Dict[str, List[float]] = {}
    klasses: Dict[str, List[float]] = {}
    counters: Dict[Tuple[str, str], float] = {}
    t_lo: Optional[float] = None
    t_hi = 0.0
    n_spans = 0
    n_ops = 0
    n_instants = 0
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev["name"] == "process_name":
                pids[ev["pid"]] = ev["args"]["name"]
            continue
        ts = ev.get("ts", 0.0)
        t_end = ts + ev.get("dur", 0.0)
        t_lo = ts if t_lo is None or ts < t_lo else t_lo
        t_hi = t_end if t_end > t_hi else t_hi
        if ph == "X":
            cat = ev.get("cat", "")
            if cat.startswith("op."):
                n_ops += 1
                args = ev.get("args", {})
                slot = klasses.setdefault(
                    args.get("class", cat), [0.0, 0.0, 0]
                )
                slot[0] += args.get("bytes", 0.0)
                slot[1] += args.get("work", 0.0)
                slot[2] += 1
            else:
                n_spans += 1
                slot = spans.setdefault(ev["name"], [0.0, 0])
                slot[0] += ev.get("dur", 0.0)
                slot[1] += 1
        elif ph == "C":
            track = pids.get(ev["pid"], str(ev["pid"]))
            key = (track, ev["name"])
            value = ev["args"]["value"]
            if value > counters.get(key, float("-inf")):
                counters[key] = value
        elif ph == "i":
            n_instants += 1

    lines = [f"trace report: {source}"]
    if t_lo is not None:
        lines.append(
            f"  window : {fmt_seconds(t_lo / 1e6)} .. "
            f"{fmt_seconds(t_hi / 1e6)} (simulated)"
        )
    lines.append(
        f"  events : {len(events)} total, {n_spans} spans, "
        f"{n_ops} ops, {n_instants} instants"
    )
    if spans:
        width = max(28, max(len(n) for n in spans))
        lines.append("")
        lines.append(f"  {'span':<{width}s} {'count':>6s} {'total':>12s}")
        for name in sorted(spans, key=lambda n: -spans[n][0]):
            dur, count = spans[name]
            lines.append(
                f"  {name:<{width}s} {count:>6d} "
                f"{fmt_seconds(dur / 1e6):>12s}"
            )
    if klasses:
        lines.append("")
        lines.append(
            f"  {'device class':<20s} {'ops':>6s} {'user':>10s} {'work':>10s}"
        )
        for klass in sorted(klasses, key=lambda k: -klasses[k][1]):
            user, work, count = klasses[klass]
            lines.append(
                f"  {klass:<20s} {count:>6d} "
                f"{fmt_bytes(user):>10s} {fmt_bytes(work):>10s}"
            )
    if counters:
        lines.append("")
        lines.append(f"  {'counter':<28s} {'max':>14s}")
        for (track, series), peak in sorted(counters.items()):
            lines.append(f"  {track + '/' + series:<28s} {peak:>14g}")
    return "\n".join(lines)
