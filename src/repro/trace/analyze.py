"""Offline trace analytics: where did the simulated time go?

Consumes a :class:`~repro.trace.Tracer` armed with ``analyze=True``
(blocked-reason wait records, see :mod:`repro.trace.critical_path`) and
produces:

* a **phase decomposition** -- every ``sort``/``phase`` span split into
  device-busy / queueing / DRAM-stall / net / cpu components that sum
  exactly to the span duration, plus a per-device blame table;
* **what-if projections** -- Amdahl-style re-walks of the attributed
  segments under a hypothetical change (``braid.write_bw*2``,
  ``dram+4GiB``): only the affected segments shrink, everything else is
  assumed invariant;
* **regression diffing** -- :func:`diff_reports` compares two
  schema-stamped JSON documents (analysis reports or selfperf
  baselines) with relative thresholds, the engine behind ``python -m
  repro trace-diff``.

All outputs are byte-deterministic: same seed, same report bytes.

What-if limits (also in DESIGN.md): the estimator scales the critical
path's *attributed* segments and nothing else.  It cannot see second-
order effects -- rebalanced thread pools, interference multipliers
changing with rates, a different merge fan-in chosen under a bigger
DRAM budget -- so projections are upper bounds on phases dominated by
the scaled resource and looser elsewhere.  The acceptance bar (and the
validation test) is agreement within 15% against an actual re-run for
a write-bandwidth change on a write-dominated BRAID workload.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError, SchemaMismatchError
from repro.trace.critical_path import (
    CATEGORIES,
    CriticalPath,
    Segment,
    blame_table,
)
from repro.trace.tracer import Tracer

#: Version stamp shared with :class:`repro.cluster.service.ServiceReport`
#: and ``BENCH_selfperf.json``; ``trace-diff`` refuses to compare
#: documents whose stamps disagree.
REPORT_SCHEMA = 1

#: Canonical JSON rendering for byte-deterministic reports.
_JSON_KW = {"sort_keys": True, "separators": (",", ":")}

_BW_RE = re.compile(
    r"^(?:(?P<scope>[A-Za-z0-9_.-]+)\.)?"
    r"(?P<metric>write_bw|read_bw|net_bw|link_bw)"
    r"\*(?P<factor>[0-9.eE+-]+)$"
)
_DRAM_RE = re.compile(
    r"^dram\+(?P<amount>[0-9.]+)\s*(?P<unit>[KMGT]i?B|B)?$", re.IGNORECASE
)


@dataclass(frozen=True)
class WhatIf:
    """One parsed hypothesis.

    ``kind`` is ``"bw"`` (scale segments of one direction/class by
    ``factor``) or ``"dram"`` (added DRAM; stalls drop to zero).
    ``scope`` optionally names a device track to narrow a ``bw``
    hypothesis; a scope matching no track applies everywhere (it names
    the profile, not the track).
    """

    expr: str
    kind: str
    metric: str = ""
    factor: float = 1.0
    scope: Optional[str] = None
    extra_bytes: int = 0


_UNIT_BYTES = {
    "b": 1,
    "kb": 10**3, "kib": 2**10,
    "mb": 10**6, "mib": 2**20,
    "gb": 10**9, "gib": 2**30,
    "tb": 10**12, "tib": 2**40,
}


def parse_what_if(expr: str) -> WhatIf:
    """Parse ``braid.write_bw*2`` / ``net_bw*4`` / ``dram+4GiB``."""
    text = expr.strip()
    m = _BW_RE.match(text)
    if m is not None:
        try:
            factor = float(m.group("factor"))
        except ValueError:
            raise ConfigError(f"bad what-if factor in {expr!r}") from None
        if factor <= 0:
            raise ConfigError(f"what-if factor must be > 0 in {expr!r}")
        return WhatIf(
            expr=text,
            kind="bw",
            metric=m.group("metric"),
            factor=factor,
            scope=m.group("scope"),
        )
    m = _DRAM_RE.match(text)
    if m is not None:
        unit = (m.group("unit") or "GiB").lower()
        nbytes = int(float(m.group("amount")) * _UNIT_BYTES[unit])
        if nbytes <= 0:
            raise ConfigError(f"what-if DRAM amount must be > 0 in {expr!r}")
        return WhatIf(expr=text, kind="dram", extra_bytes=nbytes)
    raise ConfigError(
        f"bad what-if expression {expr!r}; expected e.g. "
        f"'braid.write_bw*2', 'read_bw*1.5', 'net_bw*4' or 'dram+4GiB'"
    )


@dataclass
class PhaseBreakdown:
    """One decomposed span: components sum exactly to ``duration``."""

    name: str
    sid: int
    track: str
    t0: float
    t1: float
    duration: float
    components: Dict[str, float]
    blame: List[Tuple[str, str, float]]
    segments: List[Segment] = field(default_factory=list, repr=False)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sid": self.sid,
            "track": self.track,
            "t0": self.t0,
            "t1": self.t1,
            "duration": self.duration,
            "components": {c: self.components[c] for c in CATEGORIES},
            "blame": [
                {"category": cat, "blame": blame, "seconds": secs}
                for cat, blame, secs in self.blame
            ],
        }


@dataclass
class AnalysisReport:
    """Phase decomposition of one analyze-mode traced run."""

    phases: List[PhaseBreakdown]
    n_waits: int = 0
    n_procs: int = 0

    def phase(self, name: str) -> PhaseBreakdown:
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "kind": "analysis",
            "n_waits": self.n_waits,
            "n_procs": self.n_procs,
            "phases": [ph.as_dict() for ph in self.phases],
        }

    def to_json(self) -> str:
        """Canonical byte-deterministic JSON."""
        return json.dumps(self.as_dict(), **_JSON_KW)

    # ------------------------------------------------------------------
    def render(self, blame_rows: int = 6) -> str:
        """Deterministic plain-text decomposition + blame tables."""
        head = (
            f"{'phase':<28} {'duration':>12} "
            + " ".join(f"{c:>12}" for c in CATEGORIES)
        )
        lines = ["critical-path decomposition (simulated seconds)", head]
        for ph in self.phases:
            lines.append(
                f"{ph.name:<28} {ph.duration:>12.6g} "
                + " ".join(f"{ph.components[c]:>12.6g}" for c in CATEGORIES)
            )
        lines.append("")
        lines.append("blame (top contributors per phase)")
        for ph in self.phases:
            if not ph.blame:
                continue
            lines.append(f"  {ph.name}")
            for cat, blame, secs in ph.blame[:blame_rows]:
                share = secs / ph.duration if ph.duration > 0 else 0.0
                lines.append(
                    f"    {cat:<12} {blame:<24} {secs:>12.6g}  "
                    f"{share:>6.1%}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def what_if(self, hypothesis: Union[str, WhatIf]) -> dict:
        """Project each phase (and the total) under ``hypothesis``.

        Affected segments are re-timed (``duration / factor`` for a
        bandwidth change, zero for added DRAM); everything else on the
        critical path is held fixed.  Returns a JSON-safe dict with
        per-phase projected durations and speedups.
        """
        wi = parse_what_if(hypothesis) if isinstance(hypothesis, str) else hypothesis
        tracks = {
            seg.track
            for ph in self.phases
            for seg in ph.segments
            if seg.track is not None
        }
        scoped = wi.scope if wi.scope in tracks else None
        rows = []
        for ph in self.phases:
            affected = 0.0
            scaled = 0.0
            for seg in ph.segments:
                if not self._segment_affected(seg, wi, scoped):
                    continue
                affected += seg.duration
                if wi.kind == "bw":
                    scaled += seg.duration / wi.factor
                # dram: stalls vanish entirely (scaled += 0)
            projected = ph.duration - affected + scaled
            rows.append({
                "name": ph.name,
                "duration": ph.duration,
                "affected": affected,
                "projected": projected,
                "speedup": ph.duration / projected if projected > 0 else 0.0,
            })
        return {
            "schema": REPORT_SCHEMA,
            "kind": "what_if",
            "expr": wi.expr,
            "phases": rows,
        }

    @staticmethod
    def _segment_affected(seg: Segment, wi: WhatIf, scope: Optional[str]) -> bool:
        if wi.kind == "dram":
            return seg.category == "dram_stall"
        if wi.metric in ("net_bw", "link_bw"):
            return seg.category == "net"
        if seg.category != "device_busy":
            return False
        if scope is not None and seg.track != scope:
            return False
        direction = "write" if wi.metric == "write_bw" else "read"
        return seg.direction == direction

    @staticmethod
    def render_what_if(projection: dict) -> str:
        lines = [
            f"what-if {projection['expr']}: projected phase times",
            f"{'phase':<28} {'now':>12} {'projected':>12} {'speedup':>9}",
        ]
        for row in projection["phases"]:
            lines.append(
                f"{row['name']:<28} {row['duration']:>12.6g} "
                f"{row['projected']:>12.6g} {row['speedup']:>8.3g}x"
            )
        return "\n".join(lines)


def analyze_tracer(tracer: Tracer) -> AnalysisReport:
    """Build the phase decomposition from an analyze-armed tracer."""
    if not tracer.analyze:
        raise ConfigError(
            "tracer was not armed for analysis; construct it with "
            "Tracer(analyze=True) (or run `repro analyze`)"
        )
    cp = CriticalPath(tracer)
    phases: List[PhaseBreakdown] = []
    for span in tracer.spans:
        if span.cat not in ("sort", "phase"):
            continue
        t1 = span.t1 if span.t1 is not None else tracer.end_time()
        comp, segments = cp.decompose(span)
        phases.append(
            PhaseBreakdown(
                name=span.name,
                sid=span.sid,
                track=span.track,
                t0=span.t0,
                t1=t1,
                duration=t1 - span.t0,
                components=comp,
                blame=blame_table(segments),
                segments=segments,
            )
        )
    return AnalysisReport(
        phases=phases, n_waits=len(tracer.waits), n_procs=len(tracer.procs)
    )


# ----------------------------------------------------------------------
# Regression diffing (``python -m repro trace-diff A B``)
# ----------------------------------------------------------------------
def _require_schema(doc: dict, label: str) -> int:
    schema = doc.get("schema")
    if schema is None:
        raise SchemaMismatchError(
            f"{label} has no 'schema' field; re-generate it with this "
            f"version of repro"
        )
    return schema


def _doc_kind(doc: dict) -> str:
    if "workloads" in doc:
        return "selfperf"
    if "phases" in doc:
        return "analysis"
    if "percentiles" in doc:
        return "service"
    raise SchemaMismatchError(
        "unrecognised report document (expected a selfperf baseline, an "
        "analysis report or a service report)"
    )


def _analysis_rows(doc: dict) -> Dict[str, float]:
    return {ph["name"]: ph["duration"] for ph in doc["phases"]}


def _selfperf_rows(doc: dict) -> Dict[str, float]:
    rows = {}
    for name, wl in doc["workloads"].items():
        fp = wl.get("fingerprint", {})
        total = fp.get("total_time")
        rows[name] = (
            float.fromhex(total) if isinstance(total, str) else wl["sim_seconds"]
        )
    return rows


def _service_rows(doc: dict) -> Dict[str, float]:
    rows = {"makespan": doc["makespan"]}
    for metric, pcts in doc["percentiles"].items():
        for p, value in pcts.items():
            rows[f"{metric}:{p}"] = value
    return rows


def diff_reports(
    doc_a: dict, doc_b: dict, threshold: float = 0.05
) -> dict:
    """Compare two schema-stamped report documents.

    A *regression* is a row (phase duration, workload simulated time,
    service percentile) whose value grew by more than ``threshold``
    relative; shrinking rows are reported as improvements.  Raises
    :class:`~repro.errors.SchemaMismatchError` on schema or kind
    disagreements instead of a ``KeyError`` deep in a comparison.
    """
    schema_a = _require_schema(doc_a, "document A")
    schema_b = _require_schema(doc_b, "document B")
    if schema_a != schema_b:
        raise SchemaMismatchError(
            f"schema mismatch: document A is v{schema_a}, document B is "
            f"v{schema_b}"
        )
    kind = _doc_kind(doc_a)
    kind_b = _doc_kind(doc_b)
    if kind != kind_b:
        raise SchemaMismatchError(
            f"document kinds differ: {kind} vs {kind_b}"
        )
    extract = {
        "analysis": _analysis_rows,
        "selfperf": _selfperf_rows,
        "service": _service_rows,
    }[kind]
    rows_a = extract(doc_a)
    rows_b = extract(doc_b)
    regressions: List[dict] = []
    improvements: List[dict] = []
    missing: List[str] = sorted(
        set(rows_a).symmetric_difference(rows_b)
    )
    for name in sorted(set(rows_a) & set(rows_b)):
        old, new = rows_a[name], rows_b[name]
        if old == new:
            continue
        rel = (new - old) / old if old != 0 else float(new != old)
        row = {"name": name, "old": old, "new": new, "rel": rel}
        if rel > threshold:
            regressions.append(row)
        elif rel < -threshold:
            improvements.append(row)
    return {
        "schema": REPORT_SCHEMA,
        "kind": f"diff:{kind}",
        "threshold": threshold,
        "regressions": regressions,
        "improvements": improvements,
        "missing": missing,
    }


def render_diff(diff: dict) -> str:
    lines = [
        f"trace-diff ({diff['kind']}, threshold "
        f"{diff['threshold']:.1%}): "
        f"{len(diff['regressions'])} regression(s), "
        f"{len(diff['improvements'])} improvement(s)"
    ]
    for label, rows in (
        ("REGRESSION", diff["regressions"]),
        ("improvement", diff["improvements"]),
    ):
        for row in rows:
            lines.append(
                f"  {label} {row['name']}: {row['old']:.6g} -> "
                f"{row['new']:.6g} ({row['rel']:+.1%})"
            )
    for name in diff["missing"]:
        lines.append(f"  missing-in-one: {name}")
    return "\n".join(lines)
