"""Typed metrics registry: counters, gauges, histograms with labels.

Unifies the repo's ad-hoc counter surfaces -- ``collect_counters``
kernel counters, :class:`~repro.device.stats.DeviceStats` totals,
:class:`~repro.cluster.stats.ClusterStats` merges and
:class:`~repro.faults.injector.FaultStats` -- behind one snapshot/diff
API:

    >>> reg = snapshot_machine(machine)
    >>> snap = reg.snapshot()
    >>> snap["engine_steps"]
    1234.0
    >>> reg.diff(snap)     # after more work: only what changed
    {...}

Metric keys render as ``name{label=value,...}`` with labels sorted by
label name, so snapshots are deterministic dictionaries suitable for
JSON dumps and fingerprint comparison.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)


def _render_key(name: str, labels: Optional[dict]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically non-decreasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite with an externally accumulated total (bridges)."""
        self.value = float(value)

    def sample(self) -> Dict[str, float]:
        return {_render_key(self.name, self.labels): self.value}


class Gauge:
    """Point-in-time value; goes up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def sample(self) -> Dict[str, float]:
        return {_render_key(self.name, self.labels): self.value}


class Histogram:
    """Cumulative-bucket histogram (Prometheus-style ``le`` buckets)."""

    __slots__ = (
        "name", "labels", "buckets", "counts", "total", "count",
        "vmin", "vmax",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[dict] = None,
        buckets: Sequence[float] = _DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.total = 0.0
        self.count = 0
        #: Exact observed extrema: tighten the percentile estimate's
        #: first/overflow buckets (a bucket edge never over-reports the
        #: true max, nor under-reports the true min).
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0-100), interpolated in-bucket.

        Linear interpolation between bucket edges, clamped to the exact
        observed ``[vmin, vmax]`` so degenerate single-bucket and
        overflow cases stay honest.  Deterministic: the same observation
        sequence always reproduces the same float.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        cumulative = 0
        for i, edge in enumerate(self.buckets):
            n = self.counts[i]
            if n and cumulative + n >= rank:
                lo = self.buckets[i - 1] if i else self.vmin
                lo = max(lo, self.vmin)
                hi = min(edge, self.vmax)
                if hi <= lo:
                    return lo
                frac = (rank - cumulative) / n
                return lo + frac * (hi - lo)
            cumulative += n
        # Overflow bucket: between the last finite edge and the true max.
        lo = max(self.buckets[-1], self.vmin) if self.buckets else self.vmin
        n = self.counts[-1]
        if n == 0 or self.vmax <= lo:
            return self.vmax
        frac = (rank - cumulative) / n
        return lo + frac * (self.vmax - lo)

    def sample(self) -> Dict[str, float]:
        base = _render_key(self.name, self.labels)
        out = {
            f"{base}.count": float(self.count),
            f"{base}.sum": self.total,
        }
        cumulative = 0
        for edge, n in zip(self.buckets, self.counts):
            cumulative += n
            label = "inf" if math.isinf(edge) else repr(edge)
            out[f"{base}.le_{label}"] = float(cumulative)
        out[f"{base}.le_inf"] = float(self.count)
        return out


class MetricsRegistry:
    """Keyed store of typed metrics with one snapshot/diff API.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    ``(name, labels)`` pair always returns the same instrument, so
    bridge functions can be re-run to refresh totals in place.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, labels: Optional[dict], **kwargs):
        key = _render_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[dict] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[dict] = None,
        buckets: Sequence[float] = _DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{rendered_key: value}`` dict, keys sorted."""
        flat: Dict[str, float] = {}
        for key in sorted(self._metrics):
            flat.update(self._metrics[key].sample())
        return dict(sorted(flat.items()))

    def diff(self, before: Dict[str, float]) -> Dict[str, float]:
        """Changes since a prior :meth:`snapshot` (new keys included)."""
        after = self.snapshot()
        out: Dict[str, float] = {}
        for key, value in after.items():
            prev = before.get(key, 0.0)
            if value != prev:
                out[key] = value - prev
        return out

    def render(self) -> str:
        """Plain-text dump, one ``key value`` line per sample."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics registered)"
        width = max(len(k) for k in snap)
        return "\n".join(f"{k:<{width}}  {v:g}" for k, v in snap.items())


# ----------------------------------------------------------------------
# Windowed time-series rollups (sim-time windows)
# ----------------------------------------------------------------------
class WindowedSeries:
    """Event observations bucketed into fixed sim-time windows.

    Each window keeps its own :class:`Histogram`, so rolling p50/p99
    come straight from the same interpolation the registry uses
    elsewhere.  Deterministic: the same ``(t, value)`` stream always
    produces the same rows.  This is the rollup surface behind the SLO
    burn-rate monitor and the ``analyze`` CLI's service view.
    """

    def __init__(
        self,
        name: str,
        window: float,
        buckets: Sequence[float] = _DEFAULT_BUCKETS,
    ):
        if window <= 0:
            raise ValueError(f"series {name!r} window must be > 0")
        self.name = name
        self.window = window
        self.buckets = tuple(buckets)
        self._windows: Dict[int, Histogram] = {}

    def observe(self, t: float, value: float) -> None:
        idx = int(t // self.window)
        hist = self._windows.get(idx)
        if hist is None:
            hist = Histogram(self.name, buckets=self.buckets)
            self._windows[idx] = hist
        hist.observe(value)

    def __len__(self) -> int:
        return len(self._windows)

    def rows(
        self, percentiles: Sequence[float] = (50.0, 99.0)
    ) -> List[dict]:
        """One dict per non-empty window, in time order."""
        out = []
        for idx in sorted(self._windows):
            hist = self._windows[idx]
            row = {
                "t0": idx * self.window,
                "t1": (idx + 1) * self.window,
                "count": hist.count,
                "mean": hist.mean,
            }
            for q in percentiles:
                row[f"p{q:g}".replace(".", "_")] = hist.percentile(q)
            out.append(row)
        return out


def counter_windows(
    counters: Sequence[Tuple[float, str, str, float]],
    track: str,
    series: str,
    window: float,
    t_end: Optional[float] = None,
) -> List[dict]:
    """Time-weighted rollup of one counter track into sim-time windows.

    Counter samples are change-points of a step function (utilization,
    queue depth); this integrates that step function per window and
    reports the time-weighted mean plus the max level seen.  ``t_end``
    bounds the final sample's reach (defaults to the last sample time).
    Returns ``{"t0", "t1", "avg", "max"}`` rows for covered windows.
    """
    if window <= 0:
        raise ValueError("window must be > 0")
    points = [
        (t, value) for (t, trk, ser, value) in counters
        if trk == track and ser == series
    ]
    if not points:
        return []
    points.sort(key=lambda p: p[0])
    end = t_end if t_end is not None else points[-1][0]
    acc: Dict[int, List[float]] = {}  # idx -> [integral, max]
    for i, (t0, value) in enumerate(points):
        t1 = points[i + 1][0] if i + 1 < len(points) else end
        if t1 <= t0:
            continue
        lo = t0
        while lo < t1:
            idx = int(lo // window)
            hi = min((idx + 1) * window, t1)
            slot = acc.get(idx)
            if slot is None:
                slot = [0.0, value]
                acc[idx] = slot
            slot[0] += (hi - lo) * value
            if value > slot[1]:
                slot[1] = value
            lo = hi
    out = []
    for idx in sorted(acc):
        integral, peak = acc[idx]
        lo = idx * window
        hi = min((idx + 1) * window, end)
        covered = hi - lo
        out.append({
            "t0": lo,
            "t1": idx * window + window,
            "avg": integral / covered if covered > 0 else 0.0,
            "max": peak,
        })
    return out


# ----------------------------------------------------------------------
# Bridges from the existing ad-hoc stat surfaces
# ----------------------------------------------------------------------
def _bridge_kernel(registry: MetricsRegistry, counters: Dict[str, float],
                   labels: Optional[dict] = None) -> None:
    for name, value in counters.items():
        if name.endswith("hit_rate"):
            registry.gauge(name, labels).set(value)
        elif name == "sim_seconds":
            registry.gauge(name, labels).set(value)
        else:
            registry.counter(name, labels).set_total(value)


def _bridge_device_stats(registry: MetricsRegistry, stats,
                         labels: Optional[dict] = None) -> None:
    registry.counter("device_bytes_read_internal", labels).set_total(
        stats.bytes_read_internal
    )
    registry.counter("device_bytes_written_internal", labels).set_total(
        stats.bytes_written_internal
    )
    for tag, tstats in stats.tag_table():
        tl = dict(labels) if labels else {}
        tl["tag"] = tag
        registry.counter("device_busy_seconds", tl).set_total(tstats.busy_time)
        registry.counter("device_user_bytes", tl).set_total(tstats.user_bytes)
        registry.counter("device_ops", tl).set_total(tstats.op_count)


def _bridge_dram(registry: MetricsRegistry, dram,
                 labels: Optional[dict] = None) -> None:
    registry.gauge("dram_used_bytes", labels).set(dram.used)
    registry.gauge("dram_peak_bytes", labels).set(dram.peak)


def _bridge_faults(registry: MetricsRegistry, injector,
                   labels: Optional[dict] = None) -> None:
    for name, value in injector.stats.as_dict().items():
        if name == "by_kind":
            for kind, count in value.items():
                kl = dict(labels) if labels else {}
                kl["kind"] = kind
                registry.counter("fault_injected_by_kind", kl).set_total(count)
            continue
        registry.counter(f"fault_{name}", labels).set_total(value)


def snapshot_machine(
    machine, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """One registry covering a standalone machine: kernel counters,
    device totals, DRAM watermarks and (if armed) fault counters."""
    from repro.perf.profiler import collect_counters

    registry = registry if registry is not None else MetricsRegistry()
    counters = collect_counters(machine)
    fault_keys = {k for k in counters if k.startswith("fault_")}
    _bridge_kernel(
        registry, {k: v for k, v in counters.items() if k not in fault_keys}
    )
    _bridge_device_stats(registry, machine.stats)
    _bridge_dram(registry, machine.dram)
    if machine.faults is not None:
        _bridge_faults(registry, machine.faults)
    return registry


def snapshot_cluster(
    cluster, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """One registry covering a cluster: shared kernel counters once,
    then per-shard device totals labelled ``shard=<domain>``."""
    from repro.perf.profiler import collect_cluster_counters

    registry = registry if registry is not None else MetricsRegistry()
    counters = collect_cluster_counters(cluster)
    _bridge_kernel(
        registry, {k: v for k, v in counters.items() if "." not in k}
    )
    for shard in cluster.shards:
        labels = {"shard": shard.domain}
        _bridge_device_stats(registry, shard.stats, labels)
        if shard.faults is not None:
            _bridge_faults(registry, shard.faults, labels)
    _bridge_dram(registry, cluster.dram)
    return registry


def tracer_histograms(
    tracer, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Span/op duration histograms from a finished tracer.

    Spans feed ``span_seconds{name=...}``; completed ops feed
    ``op_seconds{kind=...,track=...}`` and ``op_bytes{...}``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for span in tracer.spans:
        if span.t1 is None:
            continue
        registry.histogram("span_seconds", {"name": span.name}).observe(
            span.t1 - span.t0
        )
    for rec in tracer.ops:
        done = rec["t1"]
        if done is None:
            continue
        labels = {"kind": rec["kind"], "track": rec["track"]}
        registry.histogram("op_seconds", labels).observe(done - rec["t0"])
        if rec["kind"] == "io":
            registry.histogram(
                "op_bytes",
                {"direction": rec["direction"], "track": rec["track"]},
                buckets=(4096.0, 65536.0, 1048576.0, 16777216.0, 268435456.0),
            ).observe(rec["bytes"])
    return registry


def registry_rows(snapshot: Dict[str, float]) -> List[Tuple[str, float]]:
    """Snapshot as sorted rows (convenience for table renderers)."""
    return sorted(snapshot.items())
