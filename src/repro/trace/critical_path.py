"""Critical-path extraction over analyze-mode trace records.

The engine advances simulated time only while *every* live process is
blocked, so a process's lifetime is tiled exactly by its wait records
(the gaps between them -- generator steps, fast-path acquires -- take
zero simulated time).  That invariant is what makes span decomposition
exact: given a phase span owned by process P, P's waits clipped to the
span tell where every simulated second went.

:class:`CriticalPath` indexes the records once and answers interval
queries:

* A wait on a fluid op is billed to the op's class: ``device_busy``
  for storage I/O (with a per-device ``track:direction`` blame key),
  ``net`` for interconnect transfers, ``cpu`` for compute/copy ops.
* A wait on a primitive is billed by its *blocked reason*: ``dram``
  becomes ``dram_stall``; everything else (``write-slot``,
  ``barrier``, queue verbs, sleeps) is ``queueing`` with the reason as
  the blame key.
* A ``Join`` wait descends into the last-finishing child and classifies
  *its* waits inside the window -- recursively, so nested fan-out
  (spawned writers joining sub-writers) resolves to leaf causes.  This
  is the critical-path choice: the last finisher is the binding
  constraint of the join.
* A ``ParallelOps`` wait is billed to its last-finishing carrier op.

Whatever the walk cannot attribute (explicit cpu segments plus the
zero-measure scheduling gaps and float dust) is the phase's residual
``cpu`` component -- computed so the five components sum *exactly* to
the span duration (see :meth:`CriticalPath.decompose`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import Span, Tracer

#: Decomposition component keys, in the fixed summation order.
CATEGORIES = ("device_busy", "queueing", "dram_stall", "net", "cpu")

#: Recursion bound for join descent (spawn chains are shallow; this is
#: a safety net, not a tuning knob).
_MAX_DEPTH = 64


class Segment:
    """One attributed stretch of a decomposed interval."""

    __slots__ = ("category", "blame", "t0", "t1", "track", "direction")

    def __init__(
        self,
        category: str,
        blame: str,
        t0: float,
        t1: float,
        track: Optional[str] = None,
        direction: Optional[str] = None,
    ):
        self.category = category
        self.blame = blame
        self.t0 = t0
        self.t1 = t1
        self.track = track
        self.direction = direction

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.category}, {self.blame!r}, "
            f"{self.duration:.6g}s)"
        )


class CriticalPath:
    """Interval decomposition over one tracer's analyze records."""

    def __init__(self, tracer: "Tracer"):
        self.tracer = tracer
        self._waits_by_pid: Dict[int, List[dict]] = {}
        for rec in tracer.waits:
            self._waits_by_pid.setdefault(rec["pid"], []).append(rec)
        self._procs: Dict[int, dict] = {rec["pid"]: rec for rec in tracer.procs}
        #: Processes spawned from outside the engine, in spawn order --
        #: the roots used for spans opened outside any process.
        self._root_procs: List[dict] = [
            rec for rec in tracer.procs if rec["parent"] is None
        ]

    # ------------------------------------------------------------------
    def segments_for_span(self, span: "Span") -> List[Segment]:
        """Leaf segments attributing ``span``'s interval."""
        t1 = span.t1 if span.t1 is not None else self.tracer.end_time()
        return self.segments_for_interval(span.pid, span.t0, t1)

    def segments_for_interval(
        self, pid: Optional[int], t0: float, t1: float
    ) -> List[Segment]:
        """Attribute ``[t0, t1]`` as seen by process ``pid``.

        ``pid=None`` means "outside the engine": the interval is
        decomposed through the root processes (parentless spawns) alive
        inside it, which tile it exactly for sequential ``Machine.run``
        calls.
        """
        out: List[Segment] = []
        if pid is None:
            for rec in self._root_procs:
                p_t1 = rec["t1"] if rec["t1"] is not None else t1
                lo = max(rec["t0"], t0)
                hi = min(p_t1, t1)
                if hi > lo:
                    self._walk_pid(rec["pid"], lo, hi, out, 0)
        else:
            self._walk_pid(pid, t0, t1, out, 0)
        return out

    # ------------------------------------------------------------------
    def _walk_pid(
        self, pid: int, t0: float, t1: float, out: List[Segment], depth: int
    ) -> None:
        for w in self._waits_by_pid.get(pid, ()):
            if w["t1"] <= t0:
                continue
            if w["t0"] >= t1:
                break  # waits are recorded in time order per pid
            lo = max(w["t0"], t0)
            hi = min(w["t1"], t1)
            if hi > lo:
                self._classify_wait(w, lo, hi, out, depth)

    def _classify_wait(
        self, w: dict, t0: float, t1: float, out: List[Segment], depth: int
    ) -> None:
        kind = w["kind"]
        if kind == "io":
            out.append(self._op_segment(w.get("op"), t0, t1))
        elif kind == "parallel":
            members = w.get("members") or ()
            last = None
            for snap in members:
                snap_t1 = snap["t1"] if snap["t1"] is not None else w["t1"]
                if last is None or snap_t1 > last[0]:
                    last = (snap_t1, snap)
            if last is None:
                out.append(Segment("cpu", "parallel", t0, t1))
            else:
                out.append(self._op_segment(last[1], t0, t1))
        elif kind == "sleep":
            out.append(Segment("queueing", "sleep", t0, t1))
        elif kind == "join":
            self._descend_join(w, t0, t1, out, depth)
        else:  # primitive
            reason = w.get("reason") or "wait"
            if reason == "dram":
                out.append(Segment("dram_stall", "dram", t0, t1))
            else:
                out.append(Segment("queueing", reason, t0, t1))

    def _op_segment(self, snap: Optional[dict], t0: float, t1: float) -> Segment:
        if snap is None:
            return Segment("device_busy", "unknown", t0, t1)
        kind = snap["kind"]
        track = snap.get("track")
        if kind == "cpu":
            return Segment("cpu", "cpu", t0, t1, track=track)
        if kind == "net":
            return Segment("net", "net", t0, t1, track="net")
        direction = snap.get("direction")
        blame = f"{track}:{direction}" if direction is not None else str(track)
        return Segment(
            "device_busy", blame, t0, t1, track=track, direction=direction
        )

    def _descend_join(
        self, w: dict, t0: float, t1: float, out: List[Segment], depth: int
    ) -> None:
        if depth >= _MAX_DEPTH:
            out.append(Segment("queueing", "join", t0, t1))
            return
        # The join's binding constraint is the last-finishing target
        # (ties break toward the first in target order, i.e. spawn
        # order -- deterministic either way).
        last: Optional[Tuple[float, int]] = None
        for pid in w.get("targets") or ():
            rec = self._procs.get(pid)
            if rec is None:
                continue
            p_t1 = rec["t1"] if rec["t1"] is not None else w["t1"]
            if last is None or p_t1 > last[0]:
                last = (p_t1, pid)
        if last is None:
            out.append(Segment("queueing", "join", t0, t1))
            return
        self._walk_pid(last[1], t0, t1, out, depth + 1)

    # ------------------------------------------------------------------
    def decompose(self, span: "Span") -> Tuple[Dict[str, float], List[Segment]]:
        """Decompose ``span`` into the five components plus its segments.

        The non-cpu components are direct sums over the attributed
        segments (in record order).  ``cpu`` is the residual -- explicit
        compute-op waits plus everything the walk cannot see (generator
        steps, fast-path acquires), all of which take zero simulated
        time except the compute ops -- adjusted so the left-to-right
        component sum reproduces the span duration *bit-exactly*.
        """
        t1 = span.t1 if span.t1 is not None else self.tracer.end_time()
        duration = t1 - span.t0
        segments = self.segments_for_interval(span.pid, span.t0, t1)
        comp = {c: 0.0 for c in CATEGORIES}
        for seg in segments:
            if seg.category != "cpu":
                comp[seg.category] += seg.duration
        others = (
            (comp["device_busy"] + comp["queueing"]) + comp["dram_stall"]
        ) + comp["net"]
        cpu = duration - others
        # Float fixup: force the canonical left-to-right sum to equal
        # the duration exactly (one correction step almost always
        # suffices; the loop is a guarantee, not a tuning pass).
        for _ in range(4):
            total = (
                (
                    (comp["device_busy"] + comp["queueing"])
                    + comp["dram_stall"]
                )
                + comp["net"]
            ) + cpu
            if total == duration:
                break
            cpu += duration - total
        comp["cpu"] = cpu
        return comp, segments


def blame_table(segments: List[Segment]) -> List[Tuple[str, str, float]]:
    """Aggregate segments into ``(category, blame, seconds)`` rows.

    Rows are sorted by descending seconds, then category/blame for
    deterministic ties.  Explicit cpu segments appear here even though
    the component table folds them into the residual.
    """
    acc: Dict[Tuple[str, str], float] = {}
    for seg in segments:
        key = (seg.category, seg.blame)
        acc[key] = acc.get(key, 0.0) + seg.duration
    rows = [(cat, blame, secs) for (cat, blame), secs in sorted(acc.items())]
    rows.sort(key=lambda r: (-r[2], r[0], r[1]))
    return rows
