"""Byte and time unit helpers used throughout the simulator.

All simulated times are in seconds (float) and all sizes in bytes (int).
These constants keep magic numbers out of configuration code.
"""

from __future__ import annotations

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

NS = 1e-9
US = 1e-6
MS = 1e-3

#: A conventional cache line, used by the CXL-emulation profiles (Sec 4.5
#: of the paper injects delays "per cache line access (64B)").
CACHE_LINE = 64

#: Intel Optane DC PMEM internal access granularity (the "XPLine").
PMEM_GRANULE = 256


def fmt_bytes(n: float) -> str:
    """Render a byte count in a human-friendly unit (binary multiples)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_seconds(t: float) -> str:
    """Render a simulated duration with a sensible unit."""
    if t >= 1.0:
        return f"{t:.3f}s"
    if t >= MS:
        return f"{t / MS:.3f}ms"
    if t >= US:
        return f"{t / US:.3f}us"
    return f"{t / NS:.1f}ns"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in GB/s (decimal, matching device datasheets)."""
    return f"{bytes_per_second / GB:.2f}GB/s"


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for positive operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple
