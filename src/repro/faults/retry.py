"""Bounded retries with simulated-time exponential backoff.

When the injector decides an operation will fault, the storage layer
returns a :class:`_RetryingIO` *command object* instead of a plain
:class:`~repro.sim.fluid.FluidOp`.  The issuing simulated thread yields
it exactly as it would yield the op; the engine recognises the
``_sim_execute`` protocol (direct yields) and the ``_collect_execute``
protocol (inside :class:`~repro.sim.engine.ParallelOps`), so no sort
code changes to become fault-aware.

Each attempt re-invokes the attempt factory, which rebuilds the fluid op
-- so every retry is charged to the device model and shows up in
bandwidth timelines -- and reports whether *this* attempt faults
(scripted faults fire a bounded number of times; probabilistic faults
re-roll per attempt).  Transient faults back off exponentially in
simulated time with seeded jitter; permanent faults and exhausted
budgets are thrown into the issuing thread as
:class:`~repro.errors.RetryExhaustedError` (or the fault itself).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.errors import FaultError, RetryExhaustedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultStats
    from repro.sim.engine import Engine, Process
    from repro.sim.fluid import FluidOp


@dataclass(frozen=True)
class RetryPolicy:
    """How the I/O layer responds to transient device faults.

    ``delay(attempt)`` for attempt k (1-based count of *completed*
    attempts) is ``base_delay * multiplier**(k-1)``, scaled by a seeded
    jitter factor in ``[1, 1+jitter)``.  Delays elapse in simulated
    time, so backoff is visible in run duration and timelines.
    """

    max_attempts: int = 4
    base_delay: float = 1e-4
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.multiplier < 1.0 or self.jitter < 0:
            raise ValueError("invalid retry policy parameters")

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = self.base_delay * self.multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter * rng.random())


#: An attempt factory: ``attempt(k)`` performs the data effects of the
#: k-th attempt (k starts at 0), returns the charged fluid op and the
#: fault this attempt suffers (``None`` = clean attempt).
AttemptFn = Callable[[int], Tuple["FluidOp", Optional[FaultError]]]


class _RetryingIO:
    """Engine command driving one logical I/O through fault retries."""

    __slots__ = (
        "_engine",
        "_policy",
        "_rng",
        "_stats",
        "_attempt_fn",
        "_tag",
        "_attempts",
        "_pending_fault",
        "_proc",
        "_callback",
    )

    def __init__(
        self,
        engine: "Engine",
        policy: RetryPolicy,
        rng: random.Random,
        stats: "FaultStats",
        attempt_fn: AttemptFn,
        tag: str,
    ):
        self._engine = engine
        self._policy = policy
        self._rng = rng
        self._stats = stats
        self._attempt_fn = attempt_fn
        self._tag = tag
        self._attempts = 0
        self._pending_fault: Optional[FaultError] = None
        self._proc: Optional["Process"] = None
        self._callback = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics aid
        return f"RetryingIO({self._tag!r}, attempt {self._attempts})"

    # -- engine command protocols --------------------------------------
    def _sim_execute(self, engine: "Engine", proc: "Process") -> None:
        """Direct ``yield simfile.read(...)`` path."""
        self._proc = proc
        engine.block(proc, self, "retrying-io")
        self._launch()

    def _collect_execute(self, engine: "Engine", callback) -> None:
        """ParallelOps path: deliver through ``callback(value=, exc=)``."""
        self._callback = callback
        self._launch()

    # -- attempt loop ---------------------------------------------------
    def _launch(self) -> None:
        op, fault = self._attempt_fn(self._attempts)
        self._attempts += 1
        self._pending_fault = fault
        # The attempt op always runs to completion (the device worked on
        # the request before the failure was observed), so even faulted
        # attempts consume simulated time and bandwidth.
        self._engine.issue_op(op, self._op_done)

    def _op_done(self, op: "FluidOp") -> None:
        fault = self._pending_fault
        self._pending_fault = None
        if fault is None:
            value = op.on_complete(op) if op.on_complete is not None else op
            self._deliver(value)
            return
        self._stats.note_fault(fault)
        tracer = self._engine.tracer
        if tracer is not None:
            tracer.instant(
                "fault", cat="fault", track="faults",
                kind=type(fault).__name__, tag=self._tag,
                attempt=self._attempts, transient=fault.transient,
            )
        if fault.transient and self._attempts < self._policy.max_attempts:
            delay = self._policy.delay(self._attempts, self._rng)
            self._stats.retries += 1
            self._stats.backoff_seconds += delay
            if tracer is not None:
                tracer.instant(
                    "retry", cat="fault", track="faults",
                    tag=self._tag, attempt=self._attempts, backoff=delay,
                )
            self._engine.call_at(self._engine.now + delay, self._launch)
            return
        if fault.transient:
            self._stats.exhausted += 1
            fault = RetryExhaustedError(
                f"{self._tag}: gave up after {self._attempts} attempts "
                f"({fault})",
                attempts=self._attempts,
                last_fault=fault,
            )
        self._fail(fault)

    # -- completion delivery -------------------------------------------
    def _deliver(self, value) -> None:
        if self._callback is not None:
            self._callback(value=value)
        else:
            self._engine.resume(self._proc, value)

    def _fail(self, exc: FaultError) -> None:
        if self._callback is not None:
            self._callback(exc=exc)
        else:
            self._engine.resume(self._proc, exc=exc)
