"""Crash / reboot / recover orchestration for fault-injected sorts.

:func:`run_with_faults` is the one-call entry point used by the CLI and
the chaos tests: install a :class:`~repro.faults.plan.FaultPlan`, start
the sort, and whenever a :class:`~repro.errors.SimulatedCrash` unwinds
the event loop, reboot the machine and re-enter through the system's
``recover()`` path -- repeatedly, because recovery itself can crash if
the plan scripts several crash points.

The loop is bounded by ``max_recoveries``: a plan whose faults outpace
forward progress raises :class:`~repro.errors.RecoveryError` instead of
spinning forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import RecoveryError, SimulatedCrash

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import SortResult, SortSystem
    from repro.machine import Machine
    from repro.storage.file import SimFile

    from .plan import FaultPlan


@dataclass
class FaultRunReport:
    """What happened to one fault-injected sort, end to end."""

    #: Number of simulated crashes survived.
    crashes: int = 0
    #: Number of successful ``recover()`` re-entries (== crashes when the
    #: sort finally completed).
    recoveries: int = 0
    #: ``(at_time, at_op)`` of every crash, in order.
    crash_points: List[Tuple[float, int]] = field(default_factory=list)
    #: Snapshot of :class:`~repro.faults.injector.FaultStats` at the end.
    stats: dict = field(default_factory=dict)

    def summary(self) -> str:
        if not self.crashes:
            return "no crashes"
        pts = ", ".join(f"t={t:.4f}s/op {op}" for t, op in self.crash_points)
        return f"{self.crashes} crash(es) [{pts}], {self.recoveries} recovery(ies)"


def run_with_faults(
    system: "SortSystem",
    machine: "Machine",
    input_file: "SimFile",
    plan: Optional["FaultPlan"] = None,
    validate: bool = True,
    max_recoveries: int = 8,
) -> Tuple["SortResult", FaultRunReport]:
    """Drive ``system`` to completion under ``plan``, surviving crashes.

    With ``plan=None`` (or an already-installed injector) the existing
    machine state is used unchanged; passing a plan installs it first.
    Returns the final :class:`~repro.core.base.SortResult` together with
    a :class:`FaultRunReport`.  Non-crash faults (media errors past the
    retry budget, genuine ENOSPC) propagate to the caller -- only
    :class:`~repro.errors.SimulatedCrash` is survivable by design.
    """
    if plan is not None:
        machine.install_faults(plan)
    report = FaultRunReport()
    t0 = machine.now
    read0 = machine.stats.bytes_read_internal
    written0 = machine.stats.bytes_written_internal
    try:
        result = system.run(machine, input_file, validate=validate)
    except SimulatedCrash as crash:
        result = _recover_loop(
            system, machine, input_file, crash, validate, max_recoveries, report
        )
        # The recovery result only timed its own segment; re-span it over
        # the whole workload (the clock and device stats survive reboots).
        result.total_time = machine.now - t0
        result.internal_read = machine.stats.bytes_read_internal - read0
        result.internal_written = machine.stats.bytes_written_internal - written0
    if machine.faults is not None:
        report.stats = machine.faults.stats.as_dict()
    return result, report


def _recover_loop(
    system, machine, input_file, crash, validate, max_recoveries, report
):
    while True:
        report.crashes += 1
        report.crash_points.append((crash.at_time, crash.at_op))
        if report.recoveries >= max_recoveries:
            raise RecoveryError(
                f"gave up after {max_recoveries} recovery attempts "
                f"({report.crashes} crashes)"
            ) from crash
        machine.reboot()
        if machine.faults is not None:
            machine.faults.stats.recoveries += 1
        report.recoveries += 1
        try:
            return system.recover(machine, input_file, validate=validate)
        except SimulatedCrash as next_crash:
            crash = next_crash


def run_cluster_with_faults(
    system,
    cluster,
    sharded_input,
    plan: Optional["FaultPlan"] = None,
    validate: bool = True,
    max_recoveries: int = 8,
) -> Tuple["SortResult", FaultRunReport]:
    """Cluster twin of :func:`run_with_faults`: survive shard crashes.

    A :class:`~repro.errors.SimulatedCrash` raised by any shard's
    injector unwinds the whole shared event loop; the crash names the
    dead shard via its ``domain`` attribute, so the loop reboots that
    shard (:meth:`~repro.cluster.cluster.Cluster.reboot` -- which also
    resets every survivor's volatile state) and re-enters through the
    system's ``recover()`` path, which salvages all manifest-covered
    partitions and re-executes only the lost work.
    """
    if plan is not None:
        cluster.install_faults(plan)
    report = FaultRunReport()
    t0 = cluster.now
    read0 = cluster.stats.bytes_read_internal
    written0 = cluster.stats.bytes_written_internal
    try:
        result = system.run(cluster, sharded_input, validate=validate)
    except SimulatedCrash as crash:
        result = _cluster_recover_loop(
            system, cluster, sharded_input, crash, validate,
            max_recoveries, report,
        )
        result.total_time = cluster.now - t0
        result.internal_read = cluster.stats.bytes_read_internal - read0
        result.internal_written = cluster.stats.bytes_written_internal - written0
    if cluster.faults is not None:
        report.stats = cluster.faults.as_dict()
    return result, report


def _cluster_recover_loop(
    system, cluster, sharded_input, crash, validate, max_recoveries, report
):
    while True:
        report.crashes += 1
        report.crash_points.append((crash.at_time, crash.at_op))
        if report.recoveries >= max_recoveries:
            raise RecoveryError(
                f"gave up after {max_recoveries} recovery attempts "
                f"({report.crashes} crashes)"
            ) from crash
        cluster.reboot(crash.domain)
        if cluster.faults is not None:
            cluster.faults.stats.recoveries += 1
            cluster.faults.shards_recovered += 1
        report.recoveries += 1
        try:
            return system.recover(cluster, sharded_input, validate=validate)
        except SimulatedCrash as next_crash:
            crash = next_crash
