"""The fault injector: wraps the storage layer, executes a FaultPlan.

The injector installs into a machine's filesystem
(:meth:`repro.machine.Machine.install_faults`); every *timed* SimFile
operation then consults it at issue time.  Three things can happen:

* **clean** -- the op's build closure runs and the plain fluid op is
  returned; with an empty plan this is the only path and the op stream
  is bit-identical to an injector-free run (zero overhead when idle).
* **fault** -- a :class:`~repro.faults.retry._RetryingIO` command is
  returned instead; transient faults retry with simulated-time backoff,
  permanent ones are thrown into the issuing simulated thread.
* **crash** -- :class:`~repro.errors.SimulatedCrash` is raised.  Before
  it propagates, every in-flight write is *torn*: only a 64-byte-aligned
  prefix proportional to the op's fluid progress survives (always
  strictly shorter than the full write); the rest of the target region
  is rolled back to its pre-image and any file extension is truncated.

Op indexing is global and monotonic across crash/reboot cycles, so an
``op:N`` trigger means the Nth timed file operation of the whole
workload, not of the current boot.  All randomness (probabilistic
faults, torn-prefix lengths, retry jitter) comes from one
``random.Random(plan.seed)`` stream, making the entire fault schedule
reproducible from the seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.device.profile import Pattern
from repro.errors import (
    MediaReadError,
    OutOfSpaceError,
    SimulatedCrash,
    TornWriteError,
    TransientDeviceError,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.retry import _RetryingIO
from repro.sim.fluid import remaining_work

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.sim.fluid import FluidOp
    from repro.storage.file import SimFile

#: Persistence granularity for torn writes (cache-line flush unit).
_TEAR_ALIGN = 64


class FaultStats:
    """Counters accumulated by the injector across crashes and reboots."""

    def __init__(self):
        self.ops_seen = 0
        self.faults_injected = 0
        self.by_kind: Dict[str, int] = {}
        self.retries = 0
        self.backoff_seconds = 0.0
        self.exhausted = 0
        self.crashes = 0
        self.torn_writes = 0
        self.torn_bytes_discarded = 0
        self.slow_windows = 0
        self.recoveries = 0
        self.salvaged_bytes = 0
        self.redone_bytes = 0

    def note_fault(self, fault: BaseException) -> None:
        self.faults_injected += 1
        name = type(fault).__name__
        self.by_kind[name] = self.by_kind.get(name, 0) + 1

    def as_dict(self) -> dict:
        return {
            "ops_seen": self.ops_seen,
            "faults_injected": self.faults_injected,
            "by_kind": dict(self.by_kind),
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "retries_exhausted": self.exhausted,
            "crashes": self.crashes,
            "torn_writes": self.torn_writes,
            "torn_bytes_discarded": self.torn_bytes_discarded,
            "slow_windows": self.slow_windows,
            "recoveries": self.recoveries,
            "salvaged_bytes": self.salvaged_bytes,
            "redone_bytes": self.redone_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultStats({self.as_dict()})"


class _InflightWrite:
    """Pre-image of a write that may be torn by a crash."""

    __slots__ = ("op", "file", "offset", "nbytes", "pre", "old_size")

    def __init__(self, op, file, offset, nbytes, pre, old_size):
        self.op = op
        self.file = file
        self.offset = offset
        self.nbytes = nbytes
        self.pre = pre
        self.old_size = old_size


class FaultInjector:
    """Executes a :class:`~repro.faults.plan.FaultPlan` against a machine.

    ``count_only=True`` arms the injector purely as an op counter (used
    by the CLI's probe run to resolve ``crash@50%`` triggers): every op
    is counted and passed through untouched.
    """

    def __init__(self, plan: FaultPlan, count_only: bool = False):
        if plan.needs_probe and not count_only:
            raise ValueError(
                "plan has unresolved fractional triggers; call "
                "plan.resolve_fractions(total_ops) first"
            )
        self.plan = plan
        self.count_only = count_only
        self.stats = FaultStats()
        self.machine: Optional["Machine"] = None
        #: Global op index, monotone across crash/reboot cycles.
        self.op_index = 0
        self._rng = random.Random(plan.seed)
        self._inflight: Dict[int, _InflightWrite] = {}
        self._crash_op: List[FaultEvent] = []
        self._crash_time: List[FaultEvent] = []
        self._slow: List[FaultEvent] = []
        self._scripted: List[FaultEvent] = []
        self._prob: List[FaultEvent] = []
        for ev in plan.events:
            if ev.kind == "crash":
                (self._crash_time if ev.at_time is not None else self._crash_op).append(ev)
            elif ev.kind == "slow":
                self._slow.append(ev)
            elif ev.p is not None:
                self._prob.append(ev)
            else:
                self._scripted.append(ev)

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """False for an installed-but-empty injector: the storage layer
        then takes the exact fault-free fast path (zero overhead)."""
        return self.count_only or bool(self.plan.events)

    @property
    def _crash_pending(self) -> bool:
        return any(
            not ev.fired for ev in self._crash_op
        ) or any(not ev.fired for ev in self._crash_time)

    def attach(self, machine: "Machine") -> None:
        """Install into ``machine`` (also re-arms timers after a reboot)."""
        self.machine = machine
        machine.fs.injector = self
        engine = machine.engine
        now = engine.now
        for ev in self._crash_time:
            if ev.fired:
                continue
            if ev.at_time <= now:
                # A reboot carried the clock past this trigger without it
                # firing (it raced a sibling crash); retire it.
                ev.fired = True
                continue
            engine.call_at(ev.at_time, lambda ev=ev: self._crash_now(ev))
        for ev in self._slow:
            t0, t1 = ev.at_time, ev.at_time + ev.duration
            if now >= t1:
                continue
            if now >= t0:
                self._set_degrade(ev.factor)
            else:
                engine.call_at(
                    t0, lambda f=ev.factor: self._begin_slow_window(f)
                )
            engine.call_at(t1, lambda: self._set_degrade(1.0))

    # ------------------------------------------------------------------
    # Storage-layer entry points (see repro.storage.file.SimFile)
    # ------------------------------------------------------------------
    def issue_read(self, f: "SimFile", nbytes: int, tag: str, build):
        """Route one timed read.  ``build()`` constructs the charged op
        (and its payload) -- called once per attempt so retries show up
        in device stats and timelines."""
        idx = self._register_op("read")
        if self.count_only:
            return build()
        fault = self._fault_for("read", idx, 0, nbytes)
        if fault is None:
            return build()

        def attempt(k: int):
            fl = fault if k == 0 else self._fault_for("read", idx, k, nbytes)
            return build(), fl

        return _RetryingIO(
            self.machine.engine, self.plan.retry, self._rng, self.stats, attempt, tag
        )

    def issue_write(
        self, f: "SimFile", offset: int, arr: np.ndarray, tag: str, threads: int
    ):
        """Route one timed write; performs the data movement itself so
        faulted attempts can persist a prefix (torn) or nothing at all."""
        idx = self._register_op("write")
        n = int(arr.size)
        if self.count_only:
            return self._write_attempt(f, offset, arr, n, tag, threads, None)
        fault = self._fault_for("write", idx, 0, n)
        if fault is None:
            return self._write_attempt(f, offset, arr, n, tag, threads, None)

        def attempt(k: int):
            fl = fault if k == 0 else self._fault_for("write", idx, k, n)
            return self._write_attempt(f, offset, arr, n, tag, threads, fl), fl

        return _RetryingIO(
            self.machine.engine, self.plan.retry, self._rng, self.stats, attempt, tag
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register_op(self, direction: str) -> int:
        idx = self.op_index
        self.op_index += 1
        self.stats.ops_seen += 1
        for ev in self._crash_op:
            if not ev.fired and idx >= ev.at_op:
                self._crash_now(ev, idx)
        return idx

    def _fault_for(
        self, direction: str, idx: int, attempt: int, nbytes: int
    ) -> Optional[BaseException]:
        """Decide the fault for attempt ``attempt`` of op ``idx``.

        Scripted one-shot events fire on the first eligible attempt and
        are then retired (so retries succeed); ``enospc`` bursts cover a
        *window* of virtual indices ``[at_op, at_op+count)`` -- retries
        advance through the window (``idx + attempt``) and escape it.
        Probabilistic events re-roll on every attempt.
        """
        for ev in self._scripted:
            if ev.direction is not None and ev.direction != direction:
                continue
            if ev.kind == "enospc":
                if ev.at_op <= idx + attempt < ev.at_op + ev.count:
                    return OutOfSpaceError(
                        f"injected ENOSPC burst (op {idx}, attempt {attempt})",
                        requested=nbytes,
                        available=0,
                        transient=True,
                    )
                continue
            if ev.fired or idx < ev.at_op:
                continue
            if attempt == 0:
                ev.fired = True
                return self._make_fault(ev, idx, nbytes)
        for ev in self._prob:
            if ev.direction is not None and ev.direction != direction:
                continue
            if self._rng.random() < ev.p:
                return self._make_fault(ev, idx, nbytes)
        return None

    def _make_fault(self, ev: FaultEvent, idx: int, nbytes: int) -> BaseException:
        if ev.kind == "readerr":
            return MediaReadError(f"uncorrectable media error (read op {idx})")
        if ev.kind == "transient":
            return TransientDeviceError(f"transient device fault (op {idx})")
        if ev.kind == "torn":
            durable = self._tear_point(nbytes, self._rng.random())
            return TornWriteError(
                f"torn write (op {idx}): {durable} of {nbytes} B durable",
                durable_bytes=durable,
                expected_bytes=nbytes,
            )
        raise AssertionError(f"unexpected scripted kind {ev.kind!r}")

    @staticmethod
    def _tear_point(nbytes: int, fraction: float) -> int:
        """Aligned durable-prefix length, always strictly < ``nbytes``."""
        durable = int(fraction * nbytes) // _TEAR_ALIGN * _TEAR_ALIGN
        if durable >= nbytes:
            durable = max(0, (nbytes - 1) // _TEAR_ALIGN * _TEAR_ALIGN)
        return max(0, durable)

    def _write_attempt(
        self,
        f: "SimFile",
        offset: int,
        arr: np.ndarray,
        n: int,
        tag: str,
        threads: int,
        fault: Optional[BaseException],
    ) -> "FluidOp":
        """Data effects + charged op for one write attempt.

        Clean attempts persist everything (and register a pre-image while
        a crash is pending, so the write can be torn mid-flight).  Torn
        attempts persist only the fault's durable prefix.  Other faulted
        attempts (transient, ENOSPC) persist nothing.  Every attempt is
        charged for the full transfer -- the device worked on the request
        before the failure surfaced.
        """
        rec = None
        # The audit scope announces the attempt's full transfer: even torn
        # and failed attempts are charged for n bytes (the device worked
        # on the request before the failure surfaced).
        with f._audit("write", n):
            if fault is None:
                if self._crash_pending:
                    pre_end = min(f.size, offset + n)
                    pre = (
                        f._data[offset:pre_end].copy()
                        if pre_end > offset
                        else np.zeros(0, dtype=np.uint8)
                    )
                    rec = _InflightWrite(None, f, offset, n, pre, f.size)
                f.poke(offset, arr)
            elif isinstance(fault, TornWriteError):
                self.stats.torn_writes += 1
                self.stats.torn_bytes_discarded += n - fault.durable_bytes
                if fault.durable_bytes > 0:
                    f.poke(offset, arr[: fault.durable_bytes])
            op = f._machine_io("write", Pattern.SEQ, n, tag, threads=threads)
        if rec is not None:
            rec.op = op
            self._track(op, rec)
        return op

    def _track(self, op: "FluidOp", rec: _InflightWrite) -> None:
        self._inflight[op.seq] = rec
        orig = op.on_complete

        def done(o, _orig=orig, _seq=op.seq):
            self._inflight.pop(_seq, None)
            return _orig(o) if _orig is not None else o

        op.on_complete = done

    # ------------------------------------------------------------------
    # Crash machinery
    # ------------------------------------------------------------------
    def _crash_now(self, ev: FaultEvent, idx: int = -1) -> None:
        ev.fired = True
        engine = self.machine.engine
        engine.fluid.settle(engine.now)
        self._tear_inflight()
        self.stats.crashes += 1
        if engine.tracer is not None:
            engine.tracer.instant(
                "crash", cat="fault", track="faults", at_op=idx
            )
        domain = getattr(self.machine, "domain", None)
        raise SimulatedCrash(
            f"simulated crash at t={engine.now:.6f}s"
            + (f" (op {idx})" if idx >= 0 else "")
            + (f" on {domain}" if domain else ""),
            at_time=engine.now,
            at_op=idx,
            domain=domain,
        )

    def _tear_inflight(self) -> None:
        for _seq, rec in sorted(self._inflight.items()):
            self._tear(rec)
        self._inflight.clear()

    def clear_inflight(self) -> None:
        """Drop in-flight write tracking without tearing anything.

        Cluster reboot path: when a *sibling* shard crashes, this
        shard's tracked writes are treated as durable (the device had
        committed them when the shared engine unwound), so the records
        must not leak into the next boot's tear set.
        """
        self._inflight.clear()

    def forget_file(self, f) -> None:
        """Drop in-flight tracking for one file about to be deleted.

        Cancelled speculative work leaves nothing durable to tear: its
        partial files are scrubbed, and a crash after the scrub must not
        resurrect them via an orphaned tear record (which would truncate
        a dead file and corrupt the filesystem's used-byte accounting).
        """
        for seq in sorted(self._inflight):
            if self._inflight[seq].file is f:
                del self._inflight[seq]

    def _tear(self, rec: _InflightWrite) -> None:
        """Roll an in-flight write back to an aligned durable prefix."""
        op, f, n = rec.op, rec.file, rec.nbytes
        if op.work > 0:
            # remaining_work, not op.remaining: vector-scheduled ops
            # keep their settled remainder in the group array.
            progress = max(0.0, min(1.0, 1.0 - remaining_work(op) / op.work))
        else:
            progress = 0.0
        durable = self._tear_point(n, progress)
        end = rec.offset + n
        if end > rec.old_size:
            keep = max(rec.old_size, rec.offset + durable)
            if keep < f.size:
                f.truncate(keep)
        if durable < rec.pre.size:
            f._data[rec.offset + durable : rec.offset + rec.pre.size] = rec.pre[
                durable:
            ]
        self.stats.torn_writes += 1
        self.stats.torn_bytes_discarded += n - durable

    # ------------------------------------------------------------------
    # Throughput-degradation windows
    # ------------------------------------------------------------------
    def _begin_slow_window(self, factor: float) -> None:
        self.stats.slow_windows += 1
        self._set_degrade(factor)

    def _set_degrade(self, factor: float) -> None:
        machine = self.machine
        machine.rate_model.degrade = factor
        machine.engine.fluid.invalidate_rates()
        tracer = machine.engine.tracer
        if tracer is not None:
            tracer.instant(
                "slow-window" if factor < 1.0 else "slow-window-end",
                cat="fault", track="faults", factor=factor,
            )
