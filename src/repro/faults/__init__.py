"""Deterministic fault injection and crash recovery (:mod:`repro.faults`).

The subsystem has four parts:

* :mod:`repro.faults.plan` -- :class:`FaultPlan`: a seeded, declarative
  schedule of faults (scripted per-op events, per-op probabilities,
  timed crash points, throughput-degradation windows) plus the
  ``crash@50%``-style spec-string parser used by the CLI.
* :mod:`repro.faults.injector` -- :class:`FaultInjector`: wraps the
  storage layer; every timed file op consults it and may fail, retry or
  crash.  Installed via :meth:`repro.machine.Machine.install_faults`.
* :mod:`repro.faults.retry` -- :class:`RetryPolicy` and the engine
  command implementing bounded retries with simulated-time exponential
  backoff and seeded jitter.
* :mod:`repro.faults.harness` -- :func:`run_with_faults`: drives a
  sorting system through crash / reboot / ``recover()`` cycles.

Everything is deterministic given ``FaultPlan.seed``: the same seed
yields the same fault schedule, the same retry jitter and (because the
simulation kernel is deterministic) the same final statistics.
"""

from repro.faults.harness import FaultRunReport, run_with_faults
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultEvent, FaultPlan, parse_fault_spec
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRunReport",
    "FaultStats",
    "RetryPolicy",
    "parse_fault_spec",
    "run_with_faults",
]
