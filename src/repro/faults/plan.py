"""Declarative fault schedules and the ``--faults`` spec mini-language.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultEvent`\\ s.
Events come in three trigger flavours:

* **op-indexed** (``at_op``): fires at the Nth timed file operation the
  injector sees (reads and writes share one counter).  Events whose
  direction does not match op N fire at the first eligible op after N.
* **timed** (``at_time``): fires at an absolute simulated time
  (crashes, throughput-degradation windows).
* **probabilistic** (``p``): an independent seeded coin flip per
  eligible op.

``crash@50%`` carries a *fractional* trigger that must be resolved
against a probe run's total op count before the plan can arm (see
:meth:`FaultPlan.resolve_fractions`); the CLI does this automatically.

Spec grammar (comma-separated, whitespace ignored)::

    crash@op:1234        crash at file-op index 1234
    crash@t:0.005        crash at simulated time 0.005 s
    crash@50%            crash at 50% of the fault-free run's op count
    readerr@op:N         uncorrectable MediaReadError at/after op N
    readerr@p:0.001      each read fails permanently with prob. 0.001
    transient@op:N       one transient failure at/after op N (retried)
    transient@p:0.01     each op fails transiently with prob. 0.01
    torn@op:N            write at/after op N persists only a prefix
    enospc@op:N+K        writes at ops [N, N+K) raise ENOSPC (transient)
    slow@t:T+D:xF        device rates x F during [T, T+D)
    seed:S               RNG seed for probabilities / jitter / tear points

Any event token may carry a ``shardN:`` prefix (``shard1:crash@50%``,
``shard0:slow@t:0.1+0.2:x0.25``) restricting it to one cluster shard;
untargeted tokens apply to every shard.  Standalone-machine runs ignore
the targeting field entirely (:meth:`Cluster.install_faults` is the
only consumer, via :meth:`FaultPlan.for_shard`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import ConfigError
from repro.faults.retry import RetryPolicy

#: Event kinds and the op direction they apply to (None = any).
_KIND_DIRECTION = {
    "crash": None,
    "readerr": "read",
    "transient": None,
    "torn": "write",
    "enospc": "write",
    "slow": None,
}


@dataclass
class FaultEvent:
    """One scheduled fault.  See the module docstring for semantics."""

    kind: str
    at_op: Optional[int] = None
    at_time: Optional[float] = None
    at_frac: Optional[float] = None
    p: Optional[float] = None
    #: ``slow`` window length (seconds) / ``enospc`` burst length (ops).
    duration: float = 0.0
    count: int = 1
    #: ``slow`` throughput multiplier.
    factor: float = 1.0
    #: Cluster shard domain the event targets (None = every shard).
    shard: Optional[str] = None
    #: Set once a one-shot event has fired (survives reboots).
    fired: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.kind not in _KIND_DIRECTION:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        triggers = [
            t for t in (self.at_op, self.at_time, self.at_frac, self.p)
            if t is not None
        ]
        if len(triggers) != 1:
            raise ConfigError(
                f"{self.kind} event needs exactly one trigger "
                f"(at_op / at_time / at_frac / p)"
            )
        if self.p is not None and not (0.0 <= self.p <= 1.0):
            raise ConfigError(f"probability must be in [0, 1], got {self.p}")
        if self.at_frac is not None and not (0.0 < self.at_frac <= 1.0):
            raise ConfigError(f"fraction must be in (0, 1], got {self.at_frac}")
        if self.kind == "slow" and self.at_time is None:
            raise ConfigError("slow windows need a t: trigger")
        if self.kind == "slow" and self.duration <= 0:
            raise ConfigError(
                f"slow window duration must be positive, got {self.duration}"
            )
        if self.factor <= 0:
            raise ConfigError(
                f"slow factor must be positive, got {self.factor}"
            )

    @property
    def direction(self) -> Optional[str]:
        """Op direction the event applies to (None = any)."""
        return _KIND_DIRECTION[self.kind]


@dataclass
class FaultPlan:
    """A seeded schedule of faults plus the retry policy for transients."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise ConfigError(f"not a FaultEvent: {ev!r}")

    @property
    def empty(self) -> bool:
        return not self.events

    @property
    def needs_probe(self) -> bool:
        """True while any event still carries an unresolved ``at_frac``."""
        return any(ev.at_frac is not None for ev in self.events)

    @property
    def has_crash(self) -> bool:
        return any(ev.kind == "crash" for ev in self.events)

    def resolve_fractions(self, total_ops: int) -> "FaultPlan":
        """Turn ``crash@50%``-style fractions into concrete op indices.

        ``total_ops`` is the file-op count of a fault-free probe run of
        the same workload.  Returns a new plan; the original is
        unmodified.
        """
        if total_ops < 1:
            raise ConfigError("total_ops must be >= 1 to resolve fractions")
        events = []
        for ev in self.events:
            if ev.at_frac is not None:
                at_op = min(total_ops - 1, max(0, int(ev.at_frac * total_ops)))
                events.append(replace(ev, at_frac=None, at_op=at_op))
            else:
                events.append(replace(ev))
        return FaultPlan(events=events, seed=self.seed, retry=self.retry)

    def for_shard(self, domain: str) -> "FaultPlan":
        """Sub-plan for one cluster shard: events targeting ``domain``
        plus all untargeted events.

        Events are copied (``fired`` state included), so each shard's
        injector consumes its own one-shot events independently; an
        untargeted ``slow@`` window therefore degrades *every* shard.
        The sub-plan keeps the parent's seed -- per-shard RNG streams
        diverge anyway because each injector sees a different op stream.
        """
        events = [
            replace(ev)
            for ev in self.events
            if ev.shard is None or ev.shard == domain
        ]
        return FaultPlan(events=events, seed=self.seed, retry=self.retry)


_TOKEN = re.compile(r"^(?P<kind>[a-z]+)@(?P<trigger>.+)$")
_SHARD_PREFIX = re.compile(r"^(?P<shard>shard\d+):(?P<rest>.+)$")


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigError(f"bad {what} in fault spec: {text!r}") from None


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"bad {what} in fault spec: {text!r}") from None


def _parse_event(token: str) -> FaultEvent:
    m = _TOKEN.match(token)
    if m is None:
        raise ConfigError(
            f"bad fault token {token!r} (expected kind@trigger, e.g. crash@50%)"
        )
    kind, trigger = m.group("kind"), m.group("trigger")
    if kind == "slow":
        # slow@t:T+D:xF
        m2 = re.match(r"^t:(?P<t>[^+]+)\+(?P<d>[^:]+):x(?P<f>.+)$", trigger)
        if m2 is None:
            raise ConfigError(
                f"bad slow window {token!r} (expected slow@t:T+D:xF)"
            )
        return FaultEvent(
            kind="slow",
            at_time=_parse_float(m2.group("t"), "time"),
            duration=_parse_float(m2.group("d"), "duration"),
            factor=_parse_float(m2.group("f"), "factor"),
        )
    if trigger.endswith("%"):
        frac = _parse_float(trigger[:-1], "percentage") / 100.0
        return FaultEvent(kind=kind, at_frac=frac)
    if trigger.startswith("op:"):
        body = trigger[3:]
        if "+" in body:
            at, burst = body.split("+", 1)
            return FaultEvent(
                kind=kind,
                at_op=_parse_int(at, "op index"),
                count=_parse_int(burst, "burst length"),
            )
        return FaultEvent(kind=kind, at_op=_parse_int(body, "op index"))
    if trigger.startswith("t:"):
        return FaultEvent(kind=kind, at_time=_parse_float(trigger[2:], "time"))
    if trigger.startswith("p:"):
        return FaultEvent(kind=kind, p=_parse_float(trigger[2:], "probability"))
    raise ConfigError(f"bad fault trigger {trigger!r} in {token!r}")


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a comma-separated fault spec string into a :class:`FaultPlan`."""
    events: List[FaultEvent] = []
    plan_seed = seed
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        if token.startswith("seed:"):
            plan_seed = _parse_int(token[5:], "seed")
            continue
        shard = None
        m = _SHARD_PREFIX.match(token)
        if m is not None:
            shard, token = m.group("shard"), m.group("rest")
        ev = _parse_event(token)
        if shard is not None:
            ev = replace(ev, shard=shard)
        events.append(ev)
    return FaultPlan(events=events, seed=plan_seed)
