"""Modified-key sort (Hubbard, CACM 1963 [44]; paper Sec 2.4.3).

The six-decade-old ancestor of key-value separation: sort only the keys
(with pointers), then -- because random reads on drum/disk storage were
prohibitive -- gather the values by *repeated sequential passes* over
the input, collecting into memory whichever sorted-output prefix fits
("they convert all random reads to sequential reads for gathering the
values, thus performing more sorts than required").

Table 1 classifies it as complying with (A) only: it trades extra
sequential reads for fewer writes but ignores byte addressability,
random-read bandwidth, interference and device concurrency.  On BRAID
devices its gather passes read the whole input ``ceil(data / memory)``
times, which is exactly why WiscSort revisits the idea with random
reads instead (Sec 2.4.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.base import SortConfig, SortSystem
from repro.core.indexmap import IndexMap
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import RecordFormat
from repro.records.validate import validate_sorted_file
from repro.registry import register_system
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@register_system("modified-key-sort")
class ModifiedKeySort(SortSystem):
    """Key-pointer sort with sequential-pass value gathering.

    ``gather_memory`` bounds how many output records fit in memory per
    gather pass; it defaults to the read buffer.  The implementation is
    deliberately single-threaded on the gather path (the 1963 algorithm
    predates device parallelism), but sorts keys with all cores -- the
    generous interpretation the paper's Table 1 takes.
    """

    name = "modified-key-sort"

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        gather_memory: Optional[int] = None,
        output_name: str = "mks.out",
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.gather_memory = (
            gather_memory if gather_memory is not None else self.config.read_buffer
        )
        if self.gather_memory < self.fmt.record_size:
            raise ConfigError("gather_memory must hold at least one record")
        self.output_name = output_name
        self.gather_passes: Optional[int] = None

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        output = machine.fs.create(self.output_name)
        machine.run(self._drive(machine, input_file, output), name="mks")
        return output

    def _drive(self, machine, input_file, output):
        fmt = self.fmt
        n = input_file.size // fmt.record_size
        if n == 0:
            return
        # Phase 1: key-pointer extraction by a sequential scan (the 1963
        # machine reads the full records; only keys are retained).
        data = yield input_file.read(
            0, input_file.size, tag="KEY scan", threads=1
        )
        records = data.reshape(-1, fmt.record_size)
        yield machine.copy(n * fmt.key_size, tag="KEY scan", cores=1)
        imap = IndexMap.for_fixed_records(
            records[:, : fmt.key_size], 0, fmt.record_size, fmt.pointer_size
        )
        # Phase 2: sort the key-pointer table (in-memory).
        yield machine.sort_compute(n, tag="KEY sort", cores=machine.host.ncores)
        imap = imap.sorted()
        # Phase 3: gather passes.  Each pass scans the input
        # sequentially and keeps the records belonging to the next
        # window of the sorted output, then appends them.
        window_records = max(1, self.gather_memory // fmt.record_size)
        self.gather_passes = ceil_div(n, window_records)
        out_offset = 0
        for start in range(0, n, window_records):
            stop = min(n, start + window_records)
            part = imap.slice(start, stop)
            # Full sequential sweep of the input (user payload: what we keep).
            sweep = machine.io_raw(
                machine.profile.io_work(Pattern.SEQ, input_file.size),
                "read",
                Pattern.SEQ,
                user_bytes=(stop - start) * fmt.record_size,
                tag="GATHER sweep",
                threads=1,
            )
            yield sweep
            wanted = records[part.pointers // fmt.record_size]
            yield machine.compute(
                machine.host.touch_seconds(n), tag="GATHER filter", cores=1
            )
            yield output.write(
                out_offset,
                wanted.reshape(-1),
                tag="GATHER write",
                threads=1,
            )
            out_offset += wanted.size
