"""Baseline sorting systems the paper compares against.

* :class:`~repro.baselines.external_merge_sort.ExternalMergeSort` --
  classic record-moving external merge sort, in the three concurrency
  flavours of Fig 2 (the NO_IO_OVERLAP flavour is the paper's
  "competitive" I+D-aware comparison point).
* :class:`~repro.baselines.pmsort.PMSort` /
  :class:`~repro.baselines.pmsort.PMSortPlus` -- the single-threaded
  key-value-separating PM sort of Hua et al. [43] and the paper's own
  multi-threaded extensions.
* :class:`~repro.baselines.sample_sort.SampleSort` -- in-place
  concurrent sample sort (IPS4o-style) operating directly on the device.
"""

from repro.baselines.external_merge_sort import ExternalMergeSort
from repro.baselines.modified_key_sort import ModifiedKeySort
from repro.baselines.pmsort import PMSort, PMSortPlus
from repro.baselines.sample_sort import SampleSort, SampleSortCostModel

__all__ = [
    "ExternalMergeSort",
    "ModifiedKeySort",
    "PMSort",
    "PMSortPlus",
    "SampleSort",
    "SampleSortCostModel",
]
