"""PMSort (Hua et al. [43]) and the paper's PMSort+ extensions.

PMSort separates keys from values (it writes only key-pointer runs),
but -- per the paper's critique (Sec 2.4.3) -- it:

1. loads *both* keys and values into DRAM during the RUN phase
   (sequential full-record reads, then an in-memory gather of keys:
   "causing two copies rather than one"),
2. sorts with single-threaded quicksort,
3. avoids concurrent random reads -- the published system is
   single-threaded end to end.

``PMSortPlus`` is the paper's own multi-threaded extension used in
Fig 7: same data movement, but with the Fig 2a (NO_SYNC) or Fig 2b
(IO_OVERLAP) concurrency models; its merge phase queues random-read
offsets so value gathering is concurrent, like WiscSort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.base import ConcurrencyModel, SortConfig, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.indexmap import IndexMap
from repro.core.kway import (
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.core.scheduler import _op_runner, run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import RecordFormat
from repro.records.validate import validate_sorted_file
from repro.registry import register_system
from repro.sim.engine import Join, Spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@register_system("pmsort")
class PMSort(SortSystem):
    """Faithful single-threaded PMSort."""

    name = "pmsort[single-thread]"

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        output_name: str = "pmsort.out",
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.output_name = output_name

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        output = machine.fs.create(self.output_name)
        machine.run(self._drive(machine, input_file, output), name="pmsort")
        return output

    def _drive(self, machine, input_file, output):
        run_names = yield from self._run_phase(machine, input_file)
        yield from self._merge_phase(machine, input_file, output, run_names)
        for name in run_names:
            machine.fs.delete(name)

    def _run_phase(self, machine, input_file):
        """Sequential full-record reads + single-thread quicksort."""
        fmt = self.fmt
        rec = fmt.record_size
        chunk_records = max(1, self.config.read_buffer // rec)
        chunk_bytes = chunk_records * rec
        run_names: List[str] = []
        for i, offset in enumerate(range(0, input_file.size, chunk_bytes)):
            nbytes = min(chunk_bytes, input_file.size - offset)
            data = yield input_file.read(offset, nbytes, tag="RUN read", threads=1)
            records = data.reshape(-1, rec)
            n = records.shape[0]
            first_record = offset // rec
            # In-memory gather of keys+pointers from the record buffer
            # (the "redundant read" copy the paper criticises).
            yield machine.copy(n * fmt.key_size, tag="RUN other", cores=1)
            yield machine.compute(
                machine.host.touch_seconds(n), tag="RUN other", cores=1
            )
            imap = IndexMap.for_fixed_records(
                records[:, : fmt.key_size], first_record, rec, fmt.pointer_size
            )
            # Single-threaded quicksort.
            yield machine.sort_compute(n, tag="RUN sort", cores=1)
            run_name = f"{self.output_name}.indexmap.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            yield run_file.write(
                0, imap.sorted().to_bytes(), tag="RUN write", threads=1
            )
        return run_names

    def _merge_phase(self, machine, input_file, output, run_names):
        """Single-threaded merge; values fetched serially (1 thread)."""
        fmt = self.fmt
        entry = fmt.index_entry_size
        k = len(run_names)
        if k == 0:
            return
        window = window_bytes_per_run(self.config.read_buffer, k, entry)
        cursors = [
            RunCursor(machine.fs.open(name), entry, fmt.key_size, window)
            for name in run_names
        ]
        queue_records = max(1, self.config.write_buffer // fmt.record_size)
        pending: List[np.ndarray] = []
        pending_count = 0
        out_offset = 0

        def flush(final: bool):
            nonlocal pending, pending_count, out_offset
            while pending_count >= queue_records or (final and pending_count):
                take = min(queue_records, pending_count)
                flat = np.concatenate(pending, axis=0)
                batch, rest = flat[:take], flat[take:]
                pending = [rest] if rest.shape[0] else []
                pending_count = rest.shape[0]
                imap = IndexMap.from_bytes(
                    batch.reshape(-1), fmt.key_size, fmt.pointer_size
                )
                # PMSort sorts the offset queue and collects the values
                # in a single-threaded *monotone* scan of the input
                # ("avoids performing random reads", like Hubbard [44]):
                # ascending offsets keep the device in its sequential
                # regime, but every record still pays the per-access
                # overhead, and one thread caps the bandwidth.  A second
                # in-memory copy puts records back in key order.
                file_order = np.argsort(imap.pointers, kind="stable")
                sweep = machine.io_raw(
                    machine.profile.random_batch_work(
                        np.full(take, fmt.record_size, dtype=np.int64)
                    ),
                    "read",
                    Pattern.SEQ,
                    user_bytes=take * fmt.record_size,
                    tag="RECORD read",
                    threads=1,
                )
                yield sweep
                with machine.fs.unaudited("PMSort record sweep, charged via io_raw above"):
                    all_records = input_file.peek().reshape(-1, fmt.record_size)  # reprolint: disable=DEV001 -- charged via the io_raw sweep op above
                data = all_records[imap.pointers[file_order] // fmt.record_size]
                key_order = np.empty_like(file_order)
                key_order[file_order] = np.arange(file_order.size)
                yield machine.copy(
                    take * fmt.record_size, tag="MERGE other", cores=1
                )
                yield output.write(
                    out_offset, data[key_order].reshape(-1),
                    tag="MERGE write", threads=1,
                )
                out_offset += take * fmt.record_size

        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            for cursor in refills:
                data = yield cursor.refill_op(tag="MERGE read", threads=1)
                cursor.accept(data)
            emitted, ways = merge_step(cursors)
            if emitted.shape[0]:
                yield machine.compute(
                    machine.host.merge_compare_seconds(emitted.shape[0], ways),
                    tag="MERGE other", cores=1,
                )
                pending.append(emitted)
                pending_count += emitted.shape[0]
                yield from flush(final=False)
            redistribute_on_drain(cursors)
        yield from flush(final=True)


@register_system("pmsort+")
class PMSortPlus(SortSystem):
    """PMSort's data movement under Fig 2a/2b concurrency (the paper's
    own extension for a fair multi-threaded comparison)."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        output_name: str = "pmsort-plus.out",
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig(
            concurrency=ConcurrencyModel.IO_OVERLAP
        )
        if self.config.concurrency is ConcurrencyModel.NO_IO_OVERLAP:
            raise ConfigError(
                "PMSortPlus models Fig 2a/2b only; NO_IO_OVERLAP with "
                "key-value separation is WiscSort"
            )
        self.output_name = output_name
        self.name = f"pmsort+[{self.config.concurrency}]"

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        controller = ThreadPoolController(machine, self.config)
        output = machine.fs.create(self.output_name)
        machine.run(
            self._drive(machine, input_file, output, controller), name="pmsort+"
        )
        return output

    def _drive(self, machine, input_file, output, controller):
        run_names = yield from self._run_phase(machine, input_file, controller)
        yield from self._merge_phase(
            machine, input_file, output, controller, run_names
        )
        for name in run_names:
            machine.fs.delete(name)

    def _run_phase(self, machine, input_file, controller):
        """PMSort data movement, multi-threaded: sequential full-record
        reads, concurrent sort, IndexMap runs; chunk writes overlap the
        next chunk's read (both Fig 2a and 2b lack the read/write
        barrier)."""
        fmt = self.fmt
        rec = fmt.record_size
        chunk_records = max(1, self.config.read_buffer // rec)
        chunk_bytes = chunk_records * rec
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        run_names: List[str] = []
        pending = None
        for i, offset in enumerate(range(0, input_file.size, chunk_bytes)):
            nbytes = min(chunk_bytes, input_file.size - offset)
            data = yield input_file.read(
                offset, nbytes, tag="RUN read", threads=read_pool
            )
            records = data.reshape(-1, rec)
            n = records.shape[0]
            yield machine.copy(
                n * fmt.key_size, tag="RUN other", cores=controller.sort_cores()
            )
            imap = IndexMap.for_fixed_records(
                records[:, : fmt.key_size], offset // rec, rec, fmt.pointer_size
            )
            yield machine.sort_compute(
                n, tag="RUN sort", cores=controller.sort_cores()
            )
            run_name = f"{self.output_name}.indexmap.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            write_op = run_file.write(
                0, imap.sorted().to_bytes(), tag="RUN write", threads=write_pool
            )
            if pending is not None:
                yield Join(pending)
            pending = yield Spawn(_op_runner(write_op), "pmsort-run-write")
        if pending is not None:
            yield Join(pending)
        return run_names

    def _merge_phase(self, machine, input_file, output, controller, run_names):
        """Concurrent offset-queue gathers; NO_SYNC moves values straight
        from input to output (no write buffer), IO_OVERLAP double-buffers."""
        fmt = self.fmt
        entry = fmt.index_entry_size
        k = len(run_names)
        if k == 0:
            return
        window = window_bytes_per_run(self.config.read_buffer, k, entry)
        cursors = [
            RunCursor(machine.fs.open(name), entry, fmt.key_size, window)
            for name in run_names
        ]
        read_pool = controller.read_threads(Pattern.SEQ)
        gather_pool = controller.read_threads(Pattern.RAND)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        queue_records = max(1, self.config.write_buffer // fmt.record_size)
        pending_entries: List[np.ndarray] = []
        pending_count = 0
        out_offset = 0
        overlap_writes: List = []

        def flush(final: bool):
            nonlocal pending_entries, pending_count, out_offset
            while pending_count >= queue_records or (final and pending_count):
                take = min(queue_records, pending_count)
                flat = np.concatenate(pending_entries, axis=0)
                batch, rest = flat[:take], flat[take:]
                pending_entries = [rest] if rest.shape[0] else []
                pending_count = rest.shape[0]
                imap = IndexMap.from_bytes(
                    batch.reshape(-1), fmt.key_size, fmt.pointer_size
                )
                gather_op = input_file.read_gather(
                    imap.pointers, fmt.record_size, tag="RECORD read",
                    threads=gather_pool,
                )
                write_at = out_offset
                out_offset += take * fmt.record_size
                if model is ConcurrencyModel.NO_SYNC:
                    data = gather_op.on_complete(gather_op)
                    gather_op.on_complete = None
                    write_op = output.write(
                        write_at, data.reshape(-1), tag="MERGE write",
                        threads=write_pool,
                    )
                    yield from run_ops_parallel(machine, [gather_op, write_op])
                else:  # IO_OVERLAP
                    data = yield gather_op
                    write_op = output.write(
                        write_at, data.reshape(-1), tag="MERGE write",
                        threads=write_pool,
                    )
                    proc = yield Spawn(_op_runner(write_op), "pmsort-merge-write")
                    overlap_writes.append(proc)

        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            if refills:
                per_op = max(1, read_pool // len(refills))
                ops = [c.refill_op(tag="MERGE read", threads=per_op) for c in refills]
                datas = yield from run_ops_parallel(machine, ops)
                for cursor, data in zip(refills, datas):
                    cursor.accept(data)
            emitted, ways = merge_step(cursors)
            if emitted.shape[0]:
                yield machine.compute(
                    machine.host.merge_compare_seconds(emitted.shape[0], ways),
                    tag="MERGE other", cores=1,
                )
                pending_entries.append(emitted)
                pending_count += emitted.shape[0]
                yield from flush(final=False)
            redistribute_on_drain(cursors)
        yield from flush(final=True)
        if overlap_writes:
            yield Join(overlap_writes)
