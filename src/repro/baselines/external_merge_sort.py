"""External merge sort over whole records (the paper's main baseline).

This is the "competitive" implementation of Sec 2.4/4.1: unlike a naive
port it *is* given the thread-pool controller and (in the default
NO_IO_OVERLAP flavour) interference-aware scheduling, i.e. it satisfies
BRAID properties I and D -- but it still bundles keys with values, so it
reads and writes the full record stream twice (run + merge), violating
B, R and A.

Phase tags follow Fig 4's legend: RUN read / RUN sort / RUN other /
RUN write / MERGE read / MERGE other / MERGE write.  "RUN other" is the
copying of records between the read buffer, key array and output buffer;
"MERGE other" is the single-threaded min-finding plus the single-
threaded record copy into the write buffer which the paper calls out as
impossible to parallelise for record runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.base import ConcurrencyModel, SortConfig, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.kway import (
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.core.recovery import CheckpointLog, pack_entries, unpack_entries
from repro.core.scheduler import _op_runner, run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import ConfigError, RecoveryError
from repro.records.format import RecordFormat, record_sort_indices
from repro.records.validate import validate_sorted_file
from repro.registry import register_system
from repro.sim.engine import Join, Spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@register_system("ems")
class ExternalMergeSort(SortSystem):
    """Record-moving external merge sort with configurable concurrency."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        output_name: str = "ems.out",
        checkpoint: bool = False,
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.output_name = output_name
        self.name = f"ems[{self.config.concurrency}]"
        #: Number of merge phases M of the last run (Sec 2.4.1 traffic
        #: formula: (1+M) x dataset; M = 1 in dominant cases).
        self.merge_passes: int = 0
        #: Crash-consistent checkpointing (comparison baseline for the
        #: fault-injection experiments); see repro.core.recovery.
        self.checkpoint = checkpoint
        self._ckpt: Optional[CheckpointLog] = None
        self._inter_seq = 0
        self.last_recovery: dict = {}

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        self._check_checkpoint_config()
        controller = ThreadPoolController(machine, self.config)
        output = machine.fs.create(self.output_name)
        self._ckpt = (
            CheckpointLog(machine.fs, self._manifest_name())
            if self.checkpoint
            else None
        )
        self._inter_seq = 0
        machine.run(
            self._drive(machine, input_file, output, controller), name="ems"
        )
        return output

    def _manifest_name(self) -> str:
        return f"{self.output_name}.manifest"

    def _check_checkpoint_config(self) -> None:
        if self.checkpoint and (
            self.config.concurrency is not ConcurrencyModel.NO_IO_OVERLAP
        ):
            raise ConfigError(
                "checkpointing requires the no-io-overlap concurrency "
                "model: a checkpoint must only commit after the writes it "
                "describes are durable"
            )

    def _drive(self, machine, input_file, output, controller):
        run_names = yield from self._run_phase(machine, input_file, controller)
        yield from self._merge_tail(machine, output, controller, run_names)

    def _merge_tail(self, machine, output, controller, run_names):
        """Intermediate merge rounds + the final merge to the output."""
        from repro.core.multipass import grouped, max_fanin, merge_rounds

        fanin = max_fanin(self.config.read_buffer, self.fmt.record_size)
        self.merge_passes = merge_rounds(len(run_names), fanin)
        # Multiple merge phases (Sec 2.1) when the run count exceeds the
        # read buffer's fan-in: merge groups into intermediate runs.
        while len(run_names) > fanin:
            next_names: List[str] = []
            groups = list(grouped(run_names, fanin))
            for gi, group in enumerate(groups):
                if len(group) == 1:
                    next_names.append(group[0])
                    continue
                inter_name = self._next_inter_name(machine.fs)
                machine.fs.create(inter_name)
                yield from self._merge_phase(
                    machine, machine.fs.open(inter_name), controller, group
                )
                next_names.append(inter_name)
                if self._ckpt is not None:
                    # Commit the new live set before deleting its inputs.
                    live = next_names + [
                        nm for g in groups[gi + 1 :] for nm in g
                    ]
                    yield from self._ckpt.save(
                        {"phase": "intermediate", "run_names": live}
                    )
                for name in group:
                    machine.fs.delete(name)
            run_names = next_names
        if self._ckpt is not None:
            yield from self._ckpt.save(
                {
                    "phase": "merge",
                    "run_names": list(run_names),
                    "out_records": 0,
                    "consumed": [0] * len(run_names),
                    "residual": "",
                }
            )
        yield from self._merge_phase(
            machine, output, controller, run_names, names_for_ckpt=run_names
        )
        for name in run_names:
            machine.fs.delete(name)
        if self._ckpt is not None:
            yield from self._ckpt.save({"phase": "done"})

    def _next_inter_name(self, fs) -> str:
        self._inter_seq += 1
        name = f"{self.output_name}.merge.{self._inter_seq}"
        while fs.exists(name):
            self._inter_seq += 1
            name = f"{self.output_name}.merge.{self._inter_seq}"
        return name

    # ------------------------------------------------------------------
    def _run_phase(self, machine, input_file, controller):
        """Read record chunks, sort them, write sorted run files."""
        fmt = self.fmt
        rec = fmt.record_size
        chunk_records = max(1, self.config.read_buffer // rec)
        chunk_bytes = chunk_records * rec
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        run_names: List[str] = []
        pending = None
        offsets = list(range(0, input_file.size, chunk_bytes))
        for i, offset in enumerate(offsets):
            nbytes = min(chunk_bytes, input_file.size - offset)
            data = yield input_file.read(
                offset, nbytes, tag="RUN read", threads=read_pool
            )
            records = data.reshape(-1, rec)
            n = records.shape[0]
            # Build the key array (key + read-buffer pointer).
            yield machine.copy(
                n * fmt.key_size, tag="RUN other",
                cores=controller.sort_cores(),
            )
            yield machine.sort_compute(
                n, tag="RUN sort", cores=controller.sort_cores()
            )
            order = record_sort_indices(records, fmt.key_size)
            # Copy full records from read buffer to the output buffer.
            yield machine.copy(
                nbytes, tag="RUN other", cores=controller.sort_cores()
            )
            run_name = f"{self.output_name}.run.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            write_op = run_file.write(
                0, records[order].reshape(-1), tag="RUN write",
                threads=write_pool,
            )
            if model is ConcurrencyModel.NO_IO_OVERLAP:
                yield write_op
                if self._ckpt is not None:
                    yield from self._ckpt.save(
                        {
                            "phase": "run",
                            "runs_done": len(run_names),
                            "n_runs": len(offsets),
                        }
                    )
            else:
                # Overlap the run write with the next chunk's read
                # (IO_OVERLAP deliberately, NO_SYNC by lack of
                # coordination between worker threads).
                if pending is not None:
                    yield Join(pending)
                pending = yield Spawn(_op_runner(write_op), "run-write")
        if pending is not None:
            yield Join(pending)
        return run_names

    # ------------------------------------------------------------------
    def _merge_phase(self, machine, output, controller, run_names,
                     names_for_ckpt=None, resume=None):
        """Single merge pass: windowed cursors, single-threaded merging.

        ``names_for_ckpt`` enables per-flush manifest commits (the final
        merge of a checkpointed run); ``resume`` re-enters such a merge
        from its last committed state after a crash.
        """
        fmt = self.fmt
        rec = fmt.record_size
        k = len(run_names)
        if k == 0:
            return
        window = window_bytes_per_run(self.config.read_buffer, k, rec)
        cursors = [
            RunCursor(machine.fs.open(name), rec, fmt.key_size, window)
            for name in run_names
        ]
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        flush_records = max(1, self.config.write_buffer // rec)
        pending_chunks: List[np.ndarray] = []
        pending_count = 0
        out_offset = 0
        if resume is not None:
            for cursor, consumed in zip(cursors, resume["consumed"]):
                cursor.skip_entries(consumed)
            residual = unpack_entries(resume["residual"], rec)
            if residual.shape[0]:
                pending_chunks = [residual]
                pending_count = residual.shape[0]
            out_offset = resume["out_records"] * rec
        overlap_writes: List = []

        def flush(final: bool):
            nonlocal pending_chunks, pending_count, out_offset
            while pending_count >= flush_records or (final and pending_count):
                take = min(flush_records, pending_count)
                flat = np.concatenate(pending_chunks, axis=0)
                batch, rest = flat[:take], flat[take:]
                pending_chunks = [rest] if rest.shape[0] else []
                pending_count = rest.shape[0]
                write_op = output.write(
                    out_offset, batch.reshape(-1), tag="MERGE write",
                    threads=write_pool,
                )
                out_offset += take * rec
                if model is ConcurrencyModel.NO_IO_OVERLAP:
                    yield write_op
                    if self._ckpt is not None and names_for_ckpt is not None:
                        rest_flat = (
                            np.concatenate(pending_chunks, axis=0)
                            if pending_chunks
                            else np.zeros((0, rec), dtype=np.uint8)
                        )
                        yield from self._ckpt.save(
                            {
                                "phase": "merge",
                                "run_names": list(names_for_ckpt),
                                "out_records": out_offset // rec,
                                "consumed": [c.taken for c in cursors],
                                "residual": pack_entries(rest_flat),
                            }
                        )
                else:
                    proc = yield Spawn(_op_runner(write_op), "merge-write")
                    overlap_writes.append(proc)

        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            if refills:
                per_op = max(1, read_pool // len(refills))
                ops = [
                    c.refill_op(tag="MERGE read", threads=per_op)
                    for c in refills
                ]
                datas = yield from run_ops_parallel(machine, ops)
                for cursor, data in zip(refills, datas):
                    cursor.accept(data)
            emitted, ways = merge_step(cursors)
            n = emitted.shape[0]
            if n:
                # Single-threaded min-finding AND single-threaded
                # record copy to the write buffer (Sec 4.1).
                yield machine.compute(
                    machine.host.merge_compare_seconds(n, ways),
                    tag="MERGE other", cores=1,
                )
                yield machine.copy(n * rec, tag="MERGE other", cores=1)
                pending_chunks.append(emitted)
                pending_count += n
                yield from flush(final=False)
            redistribute_on_drain(cursors)
        yield from flush(final=True)
        if overlap_writes:
            yield Join(overlap_writes)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _execute_recover(self, machine: "Machine", input_file: "SimFile"):
        """Resume after a :class:`~repro.errors.SimulatedCrash`.

        Same manifest protocol as WiscSort's recovery (see DESIGN.md):
        salvage record runs whose on-device size matches their expected
        exact size, discard torn artifacts, and re-enter the sort at the
        last committed phase.
        """
        if not self.checkpoint:
            raise RecoveryError(
                f"{self.name}: recovery requires checkpoint=True"
            )
        self._check_checkpoint_config()
        fs = machine.fs
        controller = ThreadPoolController(machine, self.config)
        output = (
            fs.open(self.output_name)
            if fs.exists(self.output_name)
            else fs.create(self.output_name)
        )
        self._ckpt = CheckpointLog(fs, self._manifest_name())
        state = self._ckpt.load()
        self.last_recovery = metrics = {
            "salvaged_bytes": 0,
            "redone_bytes": 0,
            "salvaged_runs": 0,
            "redone_runs": 0,
        }
        machine.run(
            self._recover_driver(
                machine, input_file, output, controller, state, metrics
            ),
            name="ems-recover",
        )
        return output

    def _recover_driver(self, machine, input_file, output, controller,
                        state, metrics):
        fmt = self.fmt
        rec = fmt.record_size
        fs = machine.fs
        phase = state.get("phase") if state else None
        if phase == "done":
            metrics["salvaged_bytes"] += output.size
            return
        if phase == "merge":
            run_names = state["run_names"]
            metrics["redone_bytes"] += self._drop_strays(fs, run_names)
            keep = state["out_records"] * rec
            if output.size > keep:
                metrics["redone_bytes"] += output.size - keep
                output.truncate(keep)
            metrics["salvaged_bytes"] += keep
            for name in run_names:
                metrics["salvaged_bytes"] += fs.open(name).size
            metrics["salvaged_runs"] += len(run_names)
            resume = {
                "consumed": state["consumed"],
                "out_records": state["out_records"],
                "residual": state.get("residual", ""),
            }
            yield from self._merge_phase(
                machine, output, controller, run_names,
                names_for_ckpt=run_names, resume=resume,
            )
            for name in run_names:
                fs.delete(name)
            yield from self._ckpt.save({"phase": "done"})
            return
        if phase == "intermediate":
            run_names = state["run_names"]
            metrics["redone_bytes"] += self._drop_strays(fs, run_names)
            if output.size:
                metrics["redone_bytes"] += output.size
                output.truncate(0)
            for name in run_names:
                metrics["salvaged_bytes"] += fs.open(name).size
            metrics["salvaged_runs"] += len(run_names)
            yield from self._merge_tail(machine, output, controller, run_names)
            return
        # phase is "run" or None: salvage complete record runs by exact
        # expected size (torn writes are strict prefixes) and redo the
        # rest chunk by chunk.
        if output.size:
            metrics["redone_bytes"] += output.size
            output.truncate(0)
        chunk_records = max(1, self.config.read_buffer // rec)
        chunk_bytes = chunk_records * rec
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        offsets = list(range(0, input_file.size, chunk_bytes))
        run_names: List[str] = []
        for i, offset in enumerate(offsets):
            nbytes = min(chunk_bytes, input_file.size - offset)
            name = f"{self.output_name}.run.{i}"
            run_names.append(name)
            if fs.exists(name) and fs.open(name).size == nbytes:
                metrics["salvaged_bytes"] += nbytes
                metrics["salvaged_runs"] += 1
                continue
            if fs.exists(name):
                metrics["redone_bytes"] += fs.open(name).size
                fs.delete(name)
            metrics["redone_bytes"] += nbytes
            metrics["redone_runs"] += 1
            data = yield input_file.read(
                offset, nbytes, tag="RUN read", threads=read_pool
            )
            records = data.reshape(-1, rec)
            n = records.shape[0]
            yield machine.copy(
                n * fmt.key_size, tag="RUN other",
                cores=controller.sort_cores(),
            )
            yield machine.sort_compute(
                n, tag="RUN sort", cores=controller.sort_cores()
            )
            order = record_sort_indices(records, fmt.key_size)
            yield machine.copy(
                nbytes, tag="RUN other", cores=controller.sort_cores()
            )
            run_file = fs.create(name)
            yield run_file.write(
                0, records[order].reshape(-1), tag="RUN write",
                threads=write_pool,
            )
            yield from self._ckpt.save(
                {"phase": "run", "runs_done": i + 1, "n_runs": len(offsets)}
            )
        yield from self._merge_tail(machine, output, controller, run_names)

    def _drop_strays(self, fs, live) -> int:
        """Delete artifacts the manifest disowns; returns bytes dropped."""
        keep = set(live)
        keep.update(
            (self.output_name, self._manifest_name(), self._ckpt.tmp_name)
        )
        prefix = self.output_name + "."
        dropped = 0
        for name in list(fs.list()):
            if name.startswith(prefix) and name not in keep:
                dropped += fs.open(name).size
                fs.delete(name)
        return dropped
