"""External merge sort over whole records (the paper's main baseline).

This is the "competitive" implementation of Sec 2.4/4.1: unlike a naive
port it *is* given the thread-pool controller and (in the default
NO_IO_OVERLAP flavour) interference-aware scheduling, i.e. it satisfies
BRAID properties I and D -- but it still bundles keys with values, so it
reads and writes the full record stream twice (run + merge), violating
B, R and A.

Phase tags follow Fig 4's legend: RUN read / RUN sort / RUN other /
RUN write / MERGE read / MERGE other / MERGE write.  "RUN other" is the
copying of records between the read buffer, key array and output buffer;
"MERGE other" is the single-threaded min-finding plus the single-
threaded record copy into the write buffer which the paper calls out as
impossible to parallelise for record runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.base import ConcurrencyModel, SortConfig, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.kway import (
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.core.scheduler import _op_runner, run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import RecordFormat, record_sort_indices
from repro.records.validate import validate_sorted_file
from repro.sim.engine import Join, Spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


class ExternalMergeSort(SortSystem):
    """Record-moving external merge sort with configurable concurrency."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        output_name: str = "ems.out",
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.output_name = output_name
        self.name = f"ems[{self.config.concurrency}]"
        #: Number of merge phases M of the last run (Sec 2.4.1 traffic
        #: formula: (1+M) x dataset; M = 1 in dominant cases).
        self.merge_passes: int = 0

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        controller = ThreadPoolController(machine, self.config)
        output = machine.fs.create(self.output_name)
        machine.run(
            self._drive(machine, input_file, output, controller), name="ems"
        )
        return output

    def _drive(self, machine, input_file, output, controller):
        from repro.core.multipass import grouped, max_fanin, merge_rounds

        run_names = yield from self._run_phase(machine, input_file, controller)
        fanin = max_fanin(self.config.read_buffer, self.fmt.record_size)
        self.merge_passes = merge_rounds(len(run_names), fanin)
        # Multiple merge phases (Sec 2.1) when the run count exceeds the
        # read buffer's fan-in: merge groups into intermediate runs.
        round_no = 0
        while len(run_names) > fanin:
            round_no += 1
            next_names: List[str] = []
            for gi, group in enumerate(grouped(run_names, fanin)):
                if len(group) == 1:
                    next_names.append(group[0])
                    continue
                inter_name = f"{self.output_name}.merge{round_no}.{gi}"
                machine.fs.create(inter_name)
                yield from self._merge_phase(
                    machine, machine.fs.open(inter_name), controller, group
                )
                for name in group:
                    machine.fs.delete(name)
                next_names.append(inter_name)
            run_names = next_names
        yield from self._merge_phase(machine, output, controller, run_names)
        for name in run_names:
            machine.fs.delete(name)

    # ------------------------------------------------------------------
    def _run_phase(self, machine, input_file, controller):
        """Read record chunks, sort them, write sorted run files."""
        fmt = self.fmt
        rec = fmt.record_size
        chunk_records = max(1, self.config.read_buffer // rec)
        chunk_bytes = chunk_records * rec
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        run_names: List[str] = []
        pending = None
        offsets = list(range(0, input_file.size, chunk_bytes))
        for i, offset in enumerate(offsets):
            nbytes = min(chunk_bytes, input_file.size - offset)
            data = yield input_file.read(
                offset, nbytes, tag="RUN read", threads=read_pool
            )
            records = data.reshape(-1, rec)
            n = records.shape[0]
            # Build the key array (key + read-buffer pointer).
            yield machine.copy(
                n * fmt.key_size, tag="RUN other",
                cores=controller.sort_cores(),
            )
            yield machine.sort_compute(
                n, tag="RUN sort", cores=controller.sort_cores()
            )
            order = record_sort_indices(records, fmt.key_size)
            # Copy full records from read buffer to the output buffer.
            yield machine.copy(
                nbytes, tag="RUN other", cores=controller.sort_cores()
            )
            run_name = f"{self.output_name}.run.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            write_op = run_file.write(
                0, records[order].reshape(-1), tag="RUN write",
                threads=write_pool,
            )
            if model is ConcurrencyModel.NO_IO_OVERLAP:
                yield write_op
            else:
                # Overlap the run write with the next chunk's read
                # (IO_OVERLAP deliberately, NO_SYNC by lack of
                # coordination between worker threads).
                if pending is not None:
                    yield Join(pending)
                pending = yield Spawn(_op_runner(write_op), "run-write")
        if pending is not None:
            yield Join(pending)
        return run_names

    # ------------------------------------------------------------------
    def _merge_phase(self, machine, output, controller, run_names):
        """Single merge pass: windowed cursors, single-threaded merging."""
        fmt = self.fmt
        rec = fmt.record_size
        k = len(run_names)
        if k == 0:
            return
        window = window_bytes_per_run(self.config.read_buffer, k, rec)
        cursors = [
            RunCursor(machine.fs.open(name), rec, fmt.key_size, window)
            for name in run_names
        ]
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        flush_records = max(1, self.config.write_buffer // rec)
        pending_chunks: List[np.ndarray] = []
        pending_count = 0
        out_offset = 0
        overlap_writes: List = []

        def flush(final: bool):
            nonlocal pending_chunks, pending_count, out_offset
            while pending_count >= flush_records or (final and pending_count):
                take = min(flush_records, pending_count)
                flat = np.concatenate(pending_chunks, axis=0)
                batch, rest = flat[:take], flat[take:]
                pending_chunks = [rest] if rest.shape[0] else []
                pending_count = rest.shape[0]
                write_op = output.write(
                    out_offset, batch.reshape(-1), tag="MERGE write",
                    threads=write_pool,
                )
                out_offset += take * rec
                if model is ConcurrencyModel.NO_IO_OVERLAP:
                    yield write_op
                else:
                    proc = yield Spawn(_op_runner(write_op), "merge-write")
                    overlap_writes.append(proc)

        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            if refills:
                per_op = max(1, read_pool // len(refills))
                ops = [
                    c.refill_op(tag="MERGE read", threads=per_op)
                    for c in refills
                ]
                datas = yield from run_ops_parallel(machine, ops)
                for cursor, data in zip(refills, datas):
                    cursor.accept(data)
            emitted, ways = merge_step(cursors)
            n = emitted.shape[0]
            if n:
                # Single-threaded min-finding AND single-threaded
                # record copy to the write buffer (Sec 4.1).
                yield machine.compute(
                    machine.host.merge_compare_seconds(n, ways),
                    tag="MERGE other", cores=1,
                )
                yield machine.copy(n * rec, tag="MERGE other", cores=1)
                pending_chunks.append(emitted)
                pending_count += n
                yield from flush(final=False)
            redistribute_on_drain(cursors)
        yield from flush(final=True)
        if overlap_writes:
            yield Join(overlap_writes)
