"""In-place concurrent sample sort on the device (IPS4o-style).

The paper's Sec 2.4.1 baseline: treat the BRAID device as slow DRAM and
sort records in place.  The algorithm is interference- and
concurrency-unaware (Fig 2a behaviour): all its read, write and compute
streams run fully overlapped at maximum thread count.

Cost model (documented substitution -- we do not re-implement IPS4o's
block permutations byte-for-byte, we model its *device traffic*):

* a distribution pass reads the data as scattered blocks once
  (``rand_read_passes``) and streams it sequentially for the remaining
  classification passes (``seq_read_passes``);
* record movement writes the dataset ``write_passes`` times (in-place
  block permutation + base-case fix-ups);
* every element is touched ``penalty_touches`` times directly on the
  device, paying the profile's in-place access penalty -- this is the
  dominant cost on PMEM and the reason in-place sorting on DRAM is ~10x
  faster (Fig 1);
* plus the usual ``n log n`` comparison work, spread over all cores.

The actual record permutation is performed eagerly (the output file is a
real sorted permutation); the ops only account time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.base import SortConfig, SortSystem
from repro.core.scheduler import run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import RecordFormat, record_sort_indices
from repro.records.validate import validate_sorted_file
from repro.registry import register_system
from repro.units import NS

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@dataclass(frozen=True)
class SampleSortCostModel:
    """Traffic/touch constants of the in-place sort (see module docs)."""

    rand_read_passes: float = 1.0
    seq_read_passes: float = 2.0
    write_passes: float = 1.4
    penalty_touches: float = 6.0
    #: Block size of the scattered distribution reads/writes.
    block_bytes: int = 1024
    #: Uncontrolled device concurrency: the algorithm oversubscribes the
    #: device with more threads than cores (Fig 2a behaviour).  This is
    #: what costs it on PMEM (write-scaling collapse) yet happens to be
    #: fine on interference-free devices (Fig 11b/c).
    device_threads: int = 32

    def __post_init__(self):
        for name in ("rand_read_passes", "seq_read_passes", "write_passes"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")


@register_system("sample-sort")
class SampleSort(SortSystem):
    """In-place concurrent sample sort directly on the device.

    Accepts the uniform ``(fmt, config=...)`` constructor surface shared
    by every :class:`~repro.core.base.SortSystem`.  The algorithm is
    deliberately concurrency-unaware, so only ``config.validate`` and
    explicit thread overrides are meaningful.  Cost-model overrides go
    through the ``cost=`` keyword (the pre-2.0 positional shim that
    accepted a cost model as the second argument is gone).
    """

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        cost: Optional[SampleSortCostModel] = None,
        output_name: str = "samplesort.out",
    ):
        if config is not None and not isinstance(config, SortConfig):
            # The pre-2.0 positional surface SampleSort(fmt, cost_model)
            # was removed; the cost model goes through the cost= keyword.
            raise ConfigError(
                f"SampleSort config must be a SortConfig, not "
                f"{type(config).__name__}; pass a cost model via cost="
            )
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.cost = cost if cost is not None else SampleSortCostModel()
        self.output_name = output_name
        self.name = "sample-sort[in-place]"

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        if input_file.size % self.fmt.record_size:
            raise ConfigError("input size not a multiple of record size")
        output = machine.fs.create(self.output_name)
        # Real data movement (untimed): in-place semantics, but we leave
        # the input intact so valsort can compare input vs output.  The
        # device cost is charged analytically by _drive() below.
        records = input_file.peek().reshape(-1, self.fmt.record_size)  # reprolint: disable=DEV001 -- analytic model, charged in _drive
        order = record_sort_indices(records, self.fmt.key_size)
        output.poke(0, records[order].reshape(-1))  # reprolint: disable=DEV001 -- analytic model, charged in _drive
        machine.run(self._drive(machine, input_file), name="sample-sort")
        return output

    def _drive(self, machine, input_file):
        """All streams overlap: reads, writes and compute, max threads."""
        total = input_file.size
        n = total // self.fmt.record_size
        ncores = machine.host.ncores
        cost = self.cost
        # Explicit config overrides win; the default is the cost model's
        # deliberately oversubscribed pool (Fig 2a behaviour).
        read_threads = self.config.read_threads or cost.device_threads
        write_threads = self.config.write_threads or cost.device_threads
        ops = []
        if cost.rand_read_passes > 0:
            nbytes = int(total * cost.rand_read_passes)
            ops.append(
                machine.io(
                    "read", Pattern.RAND, nbytes, tag="SORT read",
                    accesses=max(1, nbytes // cost.block_bytes),
                    threads=read_threads,
                )
            )
        if cost.seq_read_passes > 0:
            ops.append(
                machine.io(
                    "read", Pattern.SEQ, int(total * cost.seq_read_passes),
                    tag="SORT read", threads=read_threads,
                )
            )
        if cost.write_passes > 0:
            ops.append(
                machine.io(
                    "write", Pattern.SEQ, int(total * cost.write_passes),
                    tag="SORT write", threads=write_threads,
                )
            )
        # Direct-on-device element touches (pointer chasing, swaps).
        # Total cpu-seconds across all threads; the op spreads it over
        # all cores.
        penalty = n * cost.penalty_touches * machine.profile.inplace_penalty_ns * NS
        ops.append(machine.compute(penalty, tag="SORT compute", cores=ncores))
        ops.append(machine.sort_compute(n, tag="SORT compute", cores=ncores))
        yield from run_ops_parallel(machine, ops)
