"""repro -- a reproduction of WiscSort (PVLDB 16(9), 2023).

WiscSort is a BRAID-conscious external sorting system for
byte-addressable storage (PMEM, CXL memory-semantic SSDs).  This
package reproduces the full system on a simulated BRAID device: the
device model exposes the five BRAID properties (Byte addressability,
Random-read performance, Asymmetric read/write cost, read-write
Interference, Device-constrained concurrency) as calibrated parameters,
and every sorting system moves real bytes while accruing simulated time.

Quickstart::

    from repro import Machine, pmem_profile, generate_dataset, WiscSort

    machine = Machine(profile=pmem_profile())
    data = generate_dataset(machine, "input", n_records=100_000)
    result = WiscSort().run(machine, data)
    print(result.summary())
"""

from repro.baselines import (
    ExternalMergeSort,
    ModifiedKeySort,
    PMSort,
    PMSortPlus,
    SampleSort,
)
from repro.core import (
    ConcurrencyModel,
    IndexMap,
    NaturalRunWiscSort,
    SortConfig,
    SortResult,
    SortSystem,
    ThreadPoolController,
    WiscSort,
    WiscSortKLV,
)
from repro.calibrate import CalibrationResult, calibrate_device
from repro.device import (
    BraidRateModel,
    DeviceProfile,
    DeviceStats,
    HostModel,
    InterferenceModel,
    Pattern,
    PROFILE_FACTORIES,
    ScalingCurve,
    bard_device_profile,
    bd_device_profile,
    block_ssd_profile,
    brd_device_profile,
    dram_profile,
    pmem_profile,
)
from repro.errors import (
    ConfigError,
    DramBudgetError,
    RecordFormatError,
    ReproError,
    SimulationError,
    StorageError,
    ValidationError,
)
from repro.errors import UnknownSystemError
from repro.machine import Machine
from repro import api
from repro.api import RunOptions
from repro.cluster import (
    AdmissionPolicy,
    Cluster,
    ClusterStats,
    Job,
    JobScheduler,
    SLO,
    ServiceReport,
    ShardedFile,
    ShardedWiscSort,
    SortService,
    generate_cluster_dataset,
    parse_slo,
)
from repro.query import JoinResult, QueryResult, SortedIndex, indexmap_join
from repro.registry import (
    available,
    create_system,
    get_experiment,
    get_policy,
    get_profile,
    get_system,
    register_experiment,
    register_policy,
    register_profile,
    register_system,
)
from repro.core.compression import CompressionModel, estimate_benefit
from repro.records import (
    KLVFormat,
    RecordFormat,
    generate_dataset,
    generate_klv_dataset,
    validate_sorted_file,
    validate_sorted_klv,
)
from repro.workloads import (
    ArrivalProcess,
    BackgroundClients,
    BurstyArrivals,
    JobSpec,
    PoissonArrivals,
    TraceArrivals,
    sortbenchmark_records_for_gb,
    stream_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    # machine & device model
    "Machine",
    "DeviceProfile",
    "HostModel",
    "ScalingCurve",
    "InterferenceModel",
    "Pattern",
    "BraidRateModel",
    "DeviceStats",
    "pmem_profile",
    "dram_profile",
    "block_ssd_profile",
    "bd_device_profile",
    "brd_device_profile",
    "bard_device_profile",
    "PROFILE_FACTORIES",
    # sorting systems
    "WiscSort",
    "WiscSortKLV",
    "NaturalRunWiscSort",
    "ExternalMergeSort",
    "ModifiedKeySort",
    "PMSort",
    "PMSortPlus",
    "SampleSort",
    "SortSystem",
    "SortConfig",
    "SortResult",
    "ConcurrencyModel",
    "IndexMap",
    "ThreadPoolController",
    "CalibrationResult",
    "calibrate_device",
    # records & workloads
    "RecordFormat",
    "KLVFormat",
    "generate_dataset",
    "generate_klv_dataset",
    "validate_sorted_file",
    "validate_sorted_klv",
    "BackgroundClients",
    "sortbenchmark_records_for_gb",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "JobSpec",
    "stream_fingerprint",
    # late materialization & compression extensions (paper Sec 5)
    "SortedIndex",
    "QueryResult",
    "indexmap_join",
    "JoinResult",
    "CompressionModel",
    "estimate_benefit",
    # facade & registry
    "api",
    "RunOptions",
    "available",
    "create_system",
    "get_experiment",
    "get_policy",
    "get_profile",
    "get_system",
    "register_experiment",
    "register_policy",
    "register_profile",
    "register_system",
    # cluster (scale-out & service)
    "AdmissionPolicy",
    "Cluster",
    "ClusterStats",
    "Job",
    "JobScheduler",
    "SLO",
    "ServiceReport",
    "ShardedFile",
    "ShardedWiscSort",
    "SortService",
    "generate_cluster_dataset",
    "parse_slo",
    # errors
    "ReproError",
    "SimulationError",
    "StorageError",
    "RecordFormatError",
    "ValidationError",
    "ConfigError",
    "DramBudgetError",
    "UnknownSystemError",
]
