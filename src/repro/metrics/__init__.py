"""Reporting helpers: text tables, phase breakdowns, I/O efficiency."""

from repro.metrics.cluster_report import render_job_table, render_shard_table
from repro.metrics.efficiency import io_efficiency_rows
from repro.metrics.report import BenchTable, format_table, speedup
from repro.metrics.timeline import render_timeline, sparkline

__all__ = [
    "BenchTable",
    "format_table",
    "speedup",
    "io_efficiency_rows",
    "render_job_table",
    "render_shard_table",
    "render_timeline",
    "sparkline",
]
