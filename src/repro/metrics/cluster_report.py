"""Textual reports for cluster runs: per-job and per-shard tables."""

from __future__ import annotations

from typing import List

from repro.metrics.report import format_table
from repro.units import fmt_bytes, fmt_seconds


def render_job_table(jobs: List) -> str:
    """Queue/service/slowdown table for scheduler jobs, plus aggregates."""
    rows = []
    for job in jobs:
        rows.append(
            [
                job.name,
                job.tenant,
                job.system,
                job.shard.domain if job.shard is not None else "-",
                fmt_seconds(job.queue_time),
                fmt_seconds(job.service_time),
                f"{job.slowdown:.2f}x",
            ]
        )
    table = format_table(
        ["job", "tenant", "system", "shard", "queue", "service", "slowdown"],
        rows,
    )
    if not jobs:
        return table
    slowdowns = [job.slowdown for job in jobs]
    mean = sum(slowdowns) / len(slowdowns)
    worst = max(slowdowns)
    makespan = max(job.finish_time or 0.0 for job in jobs)
    summary = (
        f"{len(jobs)} jobs, makespan {fmt_seconds(makespan)}, "
        f"slowdown mean {mean:.2f}x / max {worst:.2f}x"
    )
    return table + "\n" + summary


def render_shard_table(cluster) -> str:
    """Per-shard device traffic and peak-bandwidth table."""
    rows = []
    for shard in cluster.shards:
        stats = shard.stats
        rows.append(
            [
                shard.domain,
                shard.profile.describe(),
                fmt_bytes(stats.bytes_read_internal),
                fmt_bytes(stats.bytes_written_internal),
                f"{fmt_bytes(stats.peak_read_bw())}/s",
                f"{fmt_bytes(stats.peak_write_bw())}/s",
            ]
        )
    return format_table(
        ["shard", "device", "read", "written", "peak-read", "peak-write"],
        rows,
    )
