"""Textual bandwidth/CPU timeline plots (the visual half of Figs 5-6).

Renders a machine's recorded resource usage as aligned sparkline rows:
read bandwidth, write bandwidth and CPU cores over simulated time, with
the per-class peaks marked -- the same information as the paper's
resource-usage figures, in monospace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine

#: Eight-level vertical bar glyphs (empty -> full).
_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[float], peak: float) -> str:
    """Map values in [0, peak] to bar glyphs (values above peak clamp)."""
    if peak <= 0:
        return " " * len(values)
    chars = []
    for value in values:
        level = min(1.0, max(0.0, value / peak))
        chars.append(_BARS[round(level * (len(_BARS) - 1))])
    return "".join(chars)


def render_timeline(machine: "Machine", width: int = 72) -> str:
    """Multi-row resource-usage plot for one finished run."""
    rows = machine.stats.coarse_timeline(buckets=width)
    if not rows:
        return "(no activity recorded)"
    reads = [r[1] for r in rows]
    writes = [r[2] for r in rows]
    cores = [r[3] for r in rows]
    read_peak = max(machine.profile.seq_read.peak, machine.profile.rand_read.peak)
    write_peak = machine.profile.write.peak
    ncores = float(machine.host.ncores)
    t_end = machine.now
    # Interference multipliers or degraded windows can push an observed
    # rate past the nominal class peak the bar is scaled to; the bar
    # clamps, so say so instead of silently flattening the excursion.
    # The epsilon absorbs bucket-resampling float jitter at exact peak.
    def over(seen: float, peak: float) -> str:
        if peak > 0 and seen > peak * (1.0 + 1e-9):
            return " (exceeds profile peak)"
        return ""

    read_over = over(max(reads), read_peak)
    write_over = over(max(writes), write_peak)
    lines = [
        f"resource usage over {t_end * 1e3:.3f} simulated ms "
        f"({width} buckets; bar height = share of peak)",
        f"read  bw |{sparkline(reads, read_peak)}| peak "
        f"{read_peak / 1e9:.1f} GB/s, max seen "
        f"{max(reads) / 1e9:.1f}{read_over}",
        f"write bw |{sparkline(writes, write_peak)}| peak "
        f"{write_peak / 1e9:.1f} GB/s, max seen "
        f"{max(writes) / 1e9:.1f}{write_over}",
        f"cpu cores|{sparkline(cores, ncores)}| of {int(ncores)}, "
        f"max seen {max(cores):.1f}",
    ]
    return "\n".join(lines)
