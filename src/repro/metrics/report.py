"""Plain-text tables for benchmark output.

The benchmark harness prints the same rows/series each paper figure
reports; these helpers keep the formatting consistent and dependency
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def speedup(baseline: float, candidate: float) -> float:
    """How many times faster ``candidate`` is than ``baseline``."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    if candidate <= 0:
        raise ValueError("candidate time must be positive")
    return baseline / candidate


@dataclass
class BenchTable:
    """One reproduced table/figure: title, headers, rows, commentary."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.title} ==", format_table(self.headers, self.rows)]
        for note in self.notes:
            parts.append(f"   note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]
