"""I/O-efficiency accounting (the annotation in the paper's Figs 5-6).

"I/O efficiency compares actual time to ideal time for data operation.
Ideal time = operation size / peak bandwidth."  We compute, per phase
tag, the internal traffic it moved, the peak bandwidth of its access
class, and the ratio of ideal to busy time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.device.profile import Pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def io_efficiency_rows(machine: "Machine") -> List[Tuple[str, float, float, float]]:
    """Per-tag ``(tag, internal_GB, ideal_s, efficiency)`` rows.

    Efficiency is ideal/actual in (0, 1]; compute-only tags are skipped.
    """
    rows = []
    profile = machine.profile
    for tag, stats in machine.stats.tag_table():
        if not stats.direction or stats.internal_bytes <= 0:
            continue
        if stats.direction == "write":
            peak = profile.write.peak
        elif stats.pattern == Pattern.SEQ.value:
            peak = profile.seq_read.peak
        else:
            peak = profile.rand_read.peak
        ideal = stats.internal_bytes / peak
        efficiency = min(1.0, ideal / stats.busy_time) if stats.busy_time > 0 else 0.0
        rows.append((tag, stats.internal_bytes / 1e9, ideal, efficiency))
    return rows
