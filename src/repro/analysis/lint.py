"""``reprolint`` driver: lint files/trees, print findings, set exit code.

Run it as a module::

    PYTHONPATH=src python -m repro.analysis.lint src/repro
    PYTHONPATH=src python -m repro.analysis.lint src tests --format json
    PYTHONPATH=src python -m repro.analysis.lint --list-rules

Exit status is 0 when no findings survive the pragma filter, 1 when any
do, 2 on usage errors.  The rules themselves live in
:mod:`repro.analysis.rules`; the pragma escape hatch in
:mod:`repro.analysis.pragmas`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.rules import (
    RULES,
    Finding,
    check_module,
    collect_metric_registrations,
    metric_collisions,
    rules_for_path,
)

#: Directories never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", ".ruff_cache"}


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(part for part in f.parts))
            )
        elif p.suffix == ".py":
            out.append(p)
    return out


def lint_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every python file under ``paths``; returns all findings.

    Runs the per-file rules, then the cross-file half of OBS001
    (metric-name kind collisions) over every file OBS001 applies to.
    """
    findings: List[Finding] = []
    registrations: List[tuple] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(str(path), 0, 0, "IO000", f"cannot read file: {exc}")
            )
            continue
        try:
            findings.extend(check_module(source, str(path), select))
            if "OBS001" in rules_for_path(str(path), select):
                registrations.extend(
                    collect_metric_registrations(source, str(path))
                )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    str(path),
                    exc.lineno or 0,
                    exc.offset or 0,
                    "E999",
                    f"syntax error: {exc.msg}",
                )
            )
    findings.extend(metric_collisions(registrations))
    return findings


def lint_source(
    source: str, path: str = "<string>", select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint an in-memory module (used by the rule unit tests)."""
    return check_module(source, path, select)


def _render_text(findings: List[Finding], checked: int) -> str:
    lines = [f.render() for f in findings]
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {checked} file(s) checked"
    )
    return "\n".join(lines)


def _render_github(findings: List[Finding], checked: int) -> str:
    """GitHub Actions workflow-command annotations, one per finding.

    Lines print to stdout inside a CI step; the runner turns each
    ``::error`` into an inline PR annotation at the named location.
    """
    lines = [
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title=reprolint {f.rule}::{f.message}"
        for f in findings
    ]
    lines.append(
        f"reprolint: {len(findings)} finding(s) in {checked} file(s) checked"
    )
    return "\n".join(lines)


def _render_json(findings: List[Finding], checked: int) -> str:
    return json.dumps(
        {
            "files_checked": checked,
            "findings": [f.as_dict() for f in findings],
            "summary": {"total": len(findings)},
        },
        indent=1,
        sort_keys=True,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-specific determinism / charge-accounting linter",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        dest="fmt",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    select = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        files = iter_python_files(args.paths)
        findings = lint_paths(args.paths, select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if args.fmt == "json":
        print(_render_json(findings, len(files)))
    elif args.fmt == "github":
        print(_render_github(findings, len(files)))
    else:
        print(_render_text(findings, len(files)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
