"""AST rules for ``reprolint`` (see :mod:`repro.analysis.lint`).

Each rule encodes one repo-specific invariant the Python type system
cannot see.  The whole reproduction rests on determinism and honest
charge accounting, so the rules are deliberately opinionated about this
codebase rather than general-purpose:

========  ============================================================
SIM001    No wall-clock reads (``time.time``, ``time.perf_counter``,
          ``datetime.now`` ...) outside ``repro.perf`` / benchmarks /
          tests.  Simulated time (``engine.now``) is the only clock the
          library may consult; a stray wall-clock read silently couples
          results to host speed.
SIM002    No unseeded module-level RNG (``random.random()``,
          ``np.random.rand()``, ``random.Random()`` / ``default_rng()``
          with no seed).  All randomness must flow through an explicit
          seeded generator so every schedule and dataset is
          reproducible from its seed.
SIM003    No iteration over sets (or ``dict.values()`` of hash-keyed
          scratch maps) in contexts that feed scheduling or float
          accumulation order, unless wrapped in ``sorted(...)``.  Set
          iteration order depends on object ids / PYTHONHASHSEED and is
          the classic source of run-to-run fingerprint drift.
SIM004    No ``==`` / ``!=`` on simulated-time floats.  Event times are
          sums of float intervals; exact equality is schedule-dependent.
          Use the epsilon helpers ``time_eq`` / ``time_ne`` from
          :mod:`repro.sim.fluid`.
DEV001    In ``core/`` and ``baselines/``, raw byte moves
          (``SimFile.peek`` / ``SimFile.poke`` / touching ``._data``)
          bypass the charged storage APIs; every byte an algorithm
          moves must be charged to the BRAID device model.  Untimed
          access is for fixtures and validation only.
SIM005    No mutation of shared enclosing-scope / ``self`` state from
          a spawned coroutine body without a named arbiter primitive
          (``Semaphore`` / ``Barrier`` / ``SimQueue``).  Two spawned
          generators writing the same closure cell or attribute race
          under any legal same-instant schedule permutation; route the
          result through a queue or guard it with a lock.
SIM006    No ``sorted``/``min``/``max``/``.sort`` keyed on a *bare*
          simulated-time value.  Same-instant events make such keys
          non-total; ties then resolve by hash/insertion order and the
          result drifts across schedules.  Add a deterministic
          secondary key (``key=lambda x: (x.first_active, x.name)``).
PRG001    Unknown or retired rule id named in a ``# reprolint:``
          pragma.  A typo silently disables nothing; a retired id
          should be dropped (the pragma machinery reports what the
          rule was folded into).
OBS001    Metric names registered in a :class:`MetricsRegistry`
          (``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``
          with a literal name) must be snake_case, and one name must
          mean one instrument kind across the whole tree -- a counter
          in one module and a histogram in another under the same name
          poisons every dashboard and diff that joins on it.
========  ============================================================

Any rule can be silenced on a specific line with a trailing
``# reprolint: disable=<rule>[,<rule>...]`` comment (or for a whole file
with ``# reprolint: disable-file=<rule>``); the escape hatch is meant to
carry a justification in the same comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: rule id -> one-line description (shown by ``--list-rules``).
RULES: Dict[str, str] = {
    "SIM001": "wall-clock read outside repro.perf/benchmarks/tests",
    "SIM002": "unseeded module-level RNG (thread a seeded generator)",
    "SIM003": "iteration over an unordered collection without sorted()",
    "SIM004": "==/!= on simulated-time floats (use fluid.time_eq/time_ne)",
    "DEV001": "raw byte move bypassing the charged storage APIs",
    "SIM005": "shared-state mutation from a spawned coroutine without an arbiter",
    "SIM006": "sort/min/max keyed on a bare sim-time value (ties not total)",
    "PRG001": "unknown or retired rule id in a reprolint pragma",
    "OBS001": "metric name not snake_case / one name with two instrument kinds",
}

#: Rule ids that once existed and were retired; naming one in a pragma
#: is a PRG001 finding explaining where the invariant went.
RETIRED_RULES: Dict[str, str] = {
    "DET001": "folded into SIM003 (iteration-order leaks)",
}

#: Path components that exempt a file from a rule.  ``repro.perf`` and
#: the benchmark harnesses measure the *simulator's* wall-clock speed,
#: which is their whole point; tests may freely iterate sets in
#: order-independent assertions.
RULE_EXEMPT_PARTS: Dict[str, Set[str]] = {
    "SIM001": {"perf", "benchmarks", "tests", "examples"},
    "SIM002": set(),
    "SIM003": {"perf", "benchmarks", "tests", "examples"},
    "SIM004": {"tests", "benchmarks", "examples"},
    # Fixtures and validators are the *intended* users of untimed access.
    "DEV001": {"tests", "benchmarks", "examples"},
    # Tests spawn racy fixtures on purpose (the race detector's own
    # test-bed is full of them).
    "SIM005": {"tests", "benchmarks", "examples"},
    "SIM006": {"tests", "benchmarks", "examples"},
    "PRG001": set(),
    # Tests register throwaway scratch metrics under any name they like.
    "OBS001": {"tests", "benchmarks", "examples"},
}

#: DEV001 only applies inside these packages (the sort algorithms); the
#: storage layer itself, fixtures and validators legitimately use
#: untimed access.
_DEV001_PARTS = {"core", "baselines"}

_WALLCLOCK_TIME_FNS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock",
}
_WALLCLOCK_DATETIME_FNS = {"now", "utcnow", "today"}

_UNSEEDED_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
}
_UNSEEDED_NP_RANDOM_FNS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "bytes",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "standard_normal",
    "seed",
}

#: Attributes known (by repo convention) to hold sets on hot objects.
_KNOWN_SET_ATTRS = {"active", "_dirty_keys"}

#: Calls whose argument order determines float accumulation or
#: scheduling order downstream.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "sum"}

#: Simulated-time value names for SIM004.
_TIME_NAMES = {"now", "t0", "t1", "deadline", "first_active", "last_active"}
_TIME_SUFFIXES = ("_time", "_at", "_settled")

#: MetricsRegistry factory methods whose literal first argument is a
#: metric name (OBS001).
_METRIC_VERBS = {"counter", "gauge", "histogram"}

#: Strict snake_case: lowercase segments separated by single
#: underscores, no leading/trailing/doubled underscores.
_SNAKE_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FileChecker(ast.NodeVisitor):
    """Single-pass visitor applying every enabled rule to one module."""

    def __init__(self, path: str, enabled: Set[str], dev001_active: bool):
        self.path = path
        self.enabled = enabled
        self.dev001_active = dev001_active
        self.findings: List[Finding] = []
        # Import aliases discovered in this module.
        self._time_mods: Set[str] = set()
        self._datetime_mods: Set[str] = set()
        self._datetime_classes: Set[str] = set()
        self._random_mods: Set[str] = set()
        self._np_mods: Set[str] = set()
        #: bare name -> fully qualified wall-clock / RNG function.
        self._bare_wallclock: Dict[str, str] = {}
        self._bare_random: Dict[str, str] = {}
        #: Stack of per-function sets of names bound to set objects.
        self._set_bindings: List[Set[str]] = [set()]
        #: Module-local helper functions whose every return value is a
        #: set (pre-scanned in :meth:`visit_Module`), so SIM003 tracking
        #: survives the call boundary: ``for x in _dirty_keys():``.
        self._set_returning: Set[str] = set()

    # -- module pre-scan ------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._scan_set_helpers(node)
        self.generic_visit(node)

    def _scan_set_helpers(self, tree: ast.Module) -> None:
        """Fixpoint over module functions that provably return sets."""
        funcs = [
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        known: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for fn in funcs:
                if fn.name in known:
                    continue
                rets = [
                    n
                    for n in _own_body_nodes(fn)
                    if isinstance(n, ast.Return) and n.value is not None
                ]
                if rets and all(
                    self._static_set_value(r.value, known) for r in rets
                ):
                    known.add(fn.name)
                    changed = True
        self._set_returning = known

    # -- reporting ------------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.enabled:
            self.findings.append(
                Finding(self.path, node.lineno, node.col_offset, rule, message)
            )

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if alias.name == "time":
                self._time_mods.add(name)
            elif alias.name == "datetime":
                self._datetime_mods.add(name)
            elif alias.name == "random":
                self._random_mods.add(name)
            elif alias.name == "numpy":
                self._np_mods.add(name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if node.module == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                self._bare_wallclock[name] = f"time.{alias.name}"
            elif node.module == "datetime" and alias.name == "datetime":
                self._datetime_classes.add(name)
            elif node.module == "random" and alias.name in _UNSEEDED_RANDOM_FNS:
                self._bare_random[name] = f"random.{alias.name}"
        self.generic_visit(node)

    # -- scope tracking for SIM003 --------------------------------------
    def _enter_scope(self, node) -> None:
        self._set_bindings.append(set())
        self.generic_visit(node)
        self._set_bindings.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope
    visit_Lambda = _enter_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._binds_set(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_bindings[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_bindings[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and isinstance(node.target, ast.Name)
            and self._binds_set(node.value)
        ):
            self._set_bindings[-1].add(node.target.id)
        self.generic_visit(node)

    def _binds_set(self, value: ast.AST) -> bool:
        return self._static_set_value(value, self._set_returning)

    @staticmethod
    def _static_set_value(value: ast.AST, set_helpers: Set[str]) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset") or (
                value.func.id in set_helpers
            )
        if isinstance(value, ast.Attribute):
            return value.attr in _KNOWN_SET_ATTRS
        return False

    # -- SIM003 ---------------------------------------------------------
    def _unordered_reason(self, node: ast.AST) -> Optional[str]:
        """Why iterating ``node`` is order-unstable, or None if it isn't."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a {func.id}() call"
            if isinstance(func, ast.Attribute) and func.attr == "values":
                base = _dotted(func.value) or "<expr>"
                return f"{base}.values()"
            if (
                isinstance(func, ast.Name)
                and func.id in self._set_returning
            ):
                return f"{func.id}() (a local helper returning a set)"
        if isinstance(node, ast.Name):
            for scope in reversed(self._set_bindings):
                if node.id in scope:
                    return f"{node.id!r} (bound to a set above)"
        if isinstance(node, ast.Attribute) and node.attr in _KNOWN_SET_ATTRS:
            return f"set attribute {_dotted(node) or node.attr!r}"
        return None

    def _check_iteration(self, iter_node: ast.AST, context: str) -> None:
        reason = self._unordered_reason(iter_node)
        if reason is not None:
            self._report(
                iter_node,
                "SIM003",
                f"iteration over {reason} in {context}; wrap in sorted(...) "
                f"or restructure to an insertion-ordered container",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* something unordered is fine (the result
        # is unordered anyway); only consuming one in order matters.
        self.generic_visit(node)

    # -- calls: SIM001 / SIM002 / SIM003-order-sensitive / DEV001 -------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        self._check_wallclock(node, dotted)
        self._check_rng(node, dotted)
        self._check_order_sensitive_call(node, dotted)
        self._check_raw_move_call(node)
        self._check_tie_break(node)
        self._check_metric_name(node)
        self.generic_visit(node)

    # -- OBS001 (per-file half; collisions are a cross-file pass) -------
    def _check_metric_name(self, node: ast.Call) -> None:
        name = _metric_registration(node)
        if name is not None and not _SNAKE_RE.match(name[0]):
            self._report(
                node.args[0],
                "OBS001",
                f"metric name {name[0]!r} is not snake_case; use lowercase "
                f"segments joined by single underscores "
                f"(e.g. 'jobs_completed')",
            )

    def _check_wallclock(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted is None:
            return
        parts = dotted.split(".")
        fq = None
        if len(parts) == 2 and parts[0] in self._time_mods:
            if parts[1] in _WALLCLOCK_TIME_FNS:
                fq = f"time.{parts[1]}"
        elif (
            len(parts) == 3
            and parts[0] in self._datetime_mods
            and parts[1] == "datetime"
            and parts[2] in _WALLCLOCK_DATETIME_FNS
        ):
            fq = dotted
        elif (
            len(parts) == 2
            and parts[0] in self._datetime_classes
            and parts[1] in _WALLCLOCK_DATETIME_FNS
        ):
            fq = f"datetime.{parts[1]}"
        elif len(parts) == 1 and parts[0] in self._bare_wallclock:
            fq = self._bare_wallclock[parts[0]]
        if fq is not None:
            self._report(
                node,
                "SIM001",
                f"wall-clock read {fq}(); simulated code must use the "
                f"engine clock (engine.now) -- wall-clock belongs in "
                f"repro.perf and benchmarks only",
            )

    def _check_rng(self, node: ast.Call, dotted: Optional[str]) -> None:
        if dotted is None:
            return
        parts = dotted.split(".")
        offense = None
        if len(parts) == 2 and parts[0] in self._random_mods:
            if parts[1] in _UNSEEDED_RANDOM_FNS:
                offense = f"module-level random.{parts[1]}()"
            elif parts[1] == "Random" and not node.args and not node.keywords:
                offense = "random.Random() without a seed"
            elif parts[1] == "SystemRandom":
                offense = "random.SystemRandom() (OS entropy, never reproducible)"
        elif len(parts) == 1 and parts[0] in self._bare_random:
            offense = f"module-level {self._bare_random[parts[0]]}()"
        elif len(parts) == 3 and parts[0] in self._np_mods and parts[1] == "random":
            if parts[2] in _UNSEEDED_NP_RANDOM_FNS:
                offense = f"legacy global np.random.{parts[2]}()"
            elif parts[2] == "default_rng" and not node.args and not node.keywords:
                offense = "np.random.default_rng() without a seed"
        if offense is not None:
            self._report(
                node,
                "SIM002",
                f"{offense}; thread an explicitly seeded generator "
                f"(np.random.default_rng(seed) / random.Random(seed)) instead",
            )

    def _check_order_sensitive_call(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "extend":
            name = "extend"
        if name is None:
            return
        for arg in node.args:
            reason = self._unordered_reason(arg)
            if reason is not None:
                self._report(
                    arg,
                    "SIM003",
                    f"{name}(...) consumes {reason} in hash order; wrap in "
                    f"sorted(...) or use an insertion-ordered container",
                )

    def _check_raw_move_call(self, node: ast.Call) -> None:
        if not self.dev001_active:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("peek", "poke"):
            self._report(
                node,
                "DEV001",
                f"untimed SimFile.{func.attr}() moves bytes without charging "
                f"the device model; use the timed read/write APIs (or "
                f"justify with a disable pragma and an explicit analytic "
                f"charge)",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.dev001_active and node.attr == "_data":
            self._report(
                node,
                "DEV001",
                "direct access to SimFile._data bypasses charge accounting; "
                "use the timed read/write APIs",
            )
        self.generic_visit(node)

    # -- SIM006 ---------------------------------------------------------
    def _check_tie_break(self, node: ast.Call) -> None:
        """``sorted(..., key=lambda x: x.first_active)`` and friends."""
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "sort":
            name = "sort"
        if name is None:
            return
        for kw in node.keywords:
            if kw.arg != "key" or not isinstance(kw.value, ast.Lambda):
                continue
            hit = self._time_like(kw.value.body)
            if hit is not None:
                self._report(
                    kw.value,
                    "SIM006",
                    f"{name}() keyed on bare sim-time value {hit!r}: "
                    f"same-instant events tie and the order falls back to "
                    f"hash/insertion order; add a deterministic secondary "
                    f"key, e.g. key=lambda x: ({hit}, name)",
                )

    # -- SIM004 ---------------------------------------------------------
    @staticmethod
    def _time_like(node: ast.AST) -> Optional[str]:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return None
        if name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES):
            return name
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_none(left) or _is_none(right):
                continue
            hit = self._time_like(left) or self._time_like(right)
            if hit is not None:
                sym = "==" if isinstance(op, ast.Eq) else "!="
                self._report(
                    node,
                    "SIM004",
                    f"{sym} on simulated-time value {hit!r}; event times are "
                    f"float sums -- use time_eq/time_ne from repro.sim.fluid",
                )
        self.generic_visit(node)


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _own_body_nodes(fn: ast.AST):
    """Walk a function body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` under an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


#: Yielded method calls that count as a named arbiter inside a spawned
#: coroutine body: ``yield sem.acquire()`` / ``yield bar.wait()`` /
#: ``yield q.put(x)`` / ``yield q.get()``.
_ARBITER_VERBS = {"acquire", "wait", "put", "get"}


class _SpawnMutationChecker(ast.NodeVisitor):
    """SIM005: shared-state writes from spawned coroutine bodies.

    Pass 1 collects the names of generator functions handed to
    ``Spawn(...)`` / ``engine.spawn(...)``; pass 2 inspects each such
    function (if it is a generator defined in this module) for
    assignments to ``self`` attributes, ``nonlocal``/``global`` names,
    or subscripts of enclosing-scope objects, and flags them unless the
    body yields an arbiter primitive (``acquire``/``wait``/``put``/
    ``get``).  Heuristic by design: it sees one module at a time and
    trusts names.
    """

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._spawned: Set[str] = set()

    def check(self, tree: ast.Module) -> List[Finding]:
        self.visit(tree)  # pass 1: spawned callee names
        if self._spawned:
            for node in ast.walk(tree):  # pass 2: inspect their bodies
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in self._spawned
                ):
                    self._check_body(node)
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_spawn = (isinstance(func, ast.Name) and func.id == "Spawn") or (
            isinstance(func, ast.Attribute) and func.attr == "spawn"
        )
        if is_spawn and node.args and isinstance(node.args[0], ast.Call):
            callee = node.args[0].func
            if isinstance(callee, ast.Name):
                self._spawned.add(callee.id)
            elif isinstance(callee, ast.Attribute):
                self._spawned.add(callee.attr)
        self.generic_visit(node)

    def _check_body(self, fn) -> None:
        body = list(_own_body_nodes(fn))
        if not any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in body):
            return  # not a generator: plain helper sharing a name
        if any(
            isinstance(n, ast.Yield)
            and isinstance(n.value, ast.Call)
            and isinstance(n.value.func, ast.Attribute)
            and n.value.func.attr in _ARBITER_VERBS
            for n in body
        ):
            return  # body rendezvouses through a named arbiter
        local = {a.arg for a in ast.walk(fn.args) if isinstance(a, ast.arg)}
        shared_decl: Set[str] = set()
        for n in body:
            if isinstance(n, (ast.Nonlocal, ast.Global)):
                shared_decl.update(n.names)
            elif isinstance(n, ast.Assign):
                for t in n.targets:
                    if isinstance(t, ast.Name):
                        local.add(t.id)
            elif isinstance(n, (ast.AnnAssign, ast.For)):
                target = n.target
                if isinstance(target, ast.Name):
                    local.add(target.id)
            elif isinstance(n, ast.withitem):
                if isinstance(n.optional_vars, ast.Name):
                    local.add(n.optional_vars.id)
        local -= shared_decl
        for n in body:
            if isinstance(n, ast.Assign):
                targets = n.targets
            elif isinstance(n, (ast.AugAssign, ast.AnnAssign)):
                targets = [n.target]
            else:
                continue
            for t in targets:
                desc = self._shared_target(t, local, shared_decl)
                if desc is not None:
                    self.findings.append(
                        Finding(
                            self.path,
                            n.lineno,
                            n.col_offset,
                            "SIM005",
                            f"spawned coroutine {fn.name!r} mutates shared "
                            f"state {desc} with no arbiter primitive in its "
                            f"body; route the result through a SimQueue or "
                            f"guard it with a Semaphore/Barrier",
                        )
                    )

    @staticmethod
    def _shared_target(
        t: ast.AST, local: Set[str], shared_decl: Set[str]
    ) -> Optional[str]:
        if isinstance(t, ast.Name):
            return t.id if t.id in shared_decl else None
        if isinstance(t, ast.Attribute):
            root = _root_name(t)
            if root == "self":
                return _dotted(t) or f"self.{t.attr}"
            return None
        if isinstance(t, ast.Subscript):
            root = _root_name(t.value)
            if root == "self":
                return f"{_dotted(t.value) or 'self.<attr>'}[...]"
            if root is not None and root not in local:
                return f"{root}[...] (enclosing scope)"
        return None


def _metric_registration(node: ast.Call) -> "Optional[tuple]":
    """``(name, kind)`` when ``node`` registers a metric with a literal
    name (``registry.counter("jobs_arrived")``), else None."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_VERBS):
        return None
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return (arg.value, func.attr)
    return None


def collect_metric_registrations(
    source: str, path: str = "<string>"
) -> List[tuple]:
    """All literal-name metric registrations in one module.

    Returns ``(name, kind, path, line, col)`` tuples for the cross-file
    half of OBS001 (see :func:`metric_collisions`).
    """
    tree = ast.parse(source, filename=path)
    out: List[tuple] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            reg = _metric_registration(node)
            if reg is not None:
                out.append(
                    (reg[0], reg[1], path, node.lineno, node.col_offset)
                )
    return out


def metric_collisions(registrations: List[tuple]) -> List[Finding]:
    """OBS001 cross-file pass: one metric name, one instrument kind.

    The first registration site (path/line order) fixes the canonical
    kind; every later site registering the same name as a different
    kind is a finding.
    """
    by_name: Dict[str, List[tuple]] = {}
    for name, kind, path, line, col in registrations:
        by_name.setdefault(name, []).append((kind, path, line, col))
    findings: List[Finding] = []
    for name in sorted(by_name):
        entries = sorted(by_name[name], key=lambda e: (e[1], e[2], e[3]))
        canonical, c_path, c_line, _c = entries[0]
        for kind, path, line, col in entries[1:]:
            if kind != canonical:
                findings.append(
                    Finding(
                        path,
                        line,
                        col,
                        "OBS001",
                        f"metric {name!r} registered as a {kind} here but "
                        f"as a {canonical} at {c_path}:{c_line}; one name "
                        f"must mean one instrument kind everywhere",
                    )
                )
    return findings


def rules_for_path(path: str, select: Optional[Iterable[str]] = None) -> Set[str]:
    """The rule ids that apply to ``path`` after exemptions."""
    parts = set(path.replace("\\", "/").split("/"))
    chosen = set(select) if select is not None else set(RULES)
    unknown = chosen - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    return {
        rule
        for rule in chosen
        if not (RULE_EXEMPT_PARTS.get(rule, set()) & parts)
    }


def check_module(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module's source; returns pragma-filtered findings."""
    enabled = rules_for_path(path, select)
    if not enabled:
        return []
    parts = set(path.replace("\\", "/").split("/"))
    dev001_active = "DEV001" in enabled and bool(parts & _DEV001_PARTS)
    tree = ast.parse(source, filename=path)
    checker = _FileChecker(path, enabled, dev001_active)
    checker.visit(tree)
    findings = checker.findings
    if "SIM005" in enabled:
        findings.extend(_SpawnMutationChecker(path).check(tree))
    from repro.analysis.pragmas import filter_findings, validate_pragmas

    if "PRG001" in enabled:
        findings.extend(validate_pragmas(source, path))
    return filter_findings(findings, source)
