"""Runtime sim-sanitizer: deadlock naming, charge audit, determinism.

``SimSanitizer`` is the dynamic half of :mod:`repro.analysis` (the
static half is ``reprolint``).  It is strictly opt-in -- install it with
:meth:`repro.machine.Machine.install_sanitizer` or the CLI ``--sanitize``
flag -- and costs one ``is None`` check per hook site when off, so
fault-free hot paths and BENCH fingerprints are untouched.

Three checkers:

* **Waits-for deadlock diagnostics.**  The engine tracks which process
  is parked on which resource (Barrier / Semaphore / SimQueue / fluid
  op / sleep / join) whenever a sanitizer is installed.  When the event
  loop runs dry with blocked processes, the resulting
  :class:`~repro.errors.DeadlockError` names every stuck coroutine and
  the resource (with state: arrived-count, semaphore value, queue
  depth) it waits on, instead of reporting a bare count.

* **Charge accounting audit.**  Every byte a timed ``SimFile``
  operation moves must be charged to the device model via
  ``DeviceStats.credit_submission``.  The auditor cross-checks the two
  layers synchronously (the storage layer announces the move, the stats
  layer must immediately charge the same byte count in the same
  direction) and tallies *raw* moves -- ``peek`` / ``poke`` while the
  engine has live processes and no ``SimFS.unaudited`` justification --
  as drift.  :meth:`SimSanitizer.check` raises
  :class:`~repro.errors.ChargeDriftError` on any discrepancy.

* **Determinism harness.**  With ``trace=True`` the sanitizer records
  the full event trace (op completions and process exits with exact
  float timestamps).  :func:`verify_determinism` runs a workload
  factory twice and diffs the traces, reporting the first divergence.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ChargeDriftError, DeterminismError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.sim.engine import Engine, Process


# ----------------------------------------------------------------------
# Resource descriptions for the waits-for graph
# ----------------------------------------------------------------------


def describe_resource(resource: Any) -> str:
    """Human-readable state of whatever a process is parked on."""
    from repro.sim.engine import Join, ParallelOps, Sleep
    from repro.sim.fluid import FluidOp
    from repro.sim.primitives import Barrier, Semaphore, SimQueue

    if isinstance(resource, Barrier):
        name = f"{resource.name!r}, " if resource.name else ""
        return (
            f"Barrier({name}arrived {resource._arrived}/{resource.parties}, "
            f"generation {resource.generation})"
        )
    if isinstance(resource, Semaphore):
        name = f"{resource.name!r}, " if resource.name else ""
        return (
            f"Semaphore({name}count={resource._count}, "
            f"{len(resource._waiters)} waiter(s))"
        )
    if isinstance(resource, SimQueue):
        name = f"{resource.name!r}, " if resource.name else ""
        cap = "inf" if resource.maxsize is None else resource.maxsize
        return (
            f"SimQueue({name}{len(resource._items)}/{cap} items, "
            f"{len(resource._get_waiters)} getter(s), "
            f"{len(resource._put_waiters)} putter(s))"
        )
    if isinstance(resource, FluidOp):
        return repr(resource)
    if isinstance(resource, Sleep):
        return f"Sleep(dt={resource.dt})"
    if isinstance(resource, Join):
        names = ", ".join(t.name for t in resource.targets if not t.done)
        return f"Join(pending: {names or '<none>'})"
    if isinstance(resource, ParallelOps):
        return f"ParallelOps({len(resource.ops)} ops)"
    if isinstance(resource, (list, tuple)):
        # _issue_parallel registers the raw op list it was handed.
        return f"ParallelOps({len(resource)} ops)"
    return repr(resource)


# ----------------------------------------------------------------------
# Charge accounting
# ----------------------------------------------------------------------


class ChargeAuditor:
    """Cross-checks storage-layer byte moves against device charges."""

    def __init__(self):
        #: Per-direction bytes moved by timed SimFile operations.
        self.moved = {"read": 0, "write": 0}
        #: Per-direction user bytes charged by matching credits.
        self.charged = {"read": 0.0, "write": 0.0}
        #: Charges with no storage move attached (synthetic background /
        #: analytic ops issued straight through ``Machine.io``); legal.
        self.non_storage_charged = {"read": 0.0, "write": 0.0}
        #: Raw (peek/poke) moves seen mid-run without an
        #: ``SimFS.unaudited`` justification: ``(file, kind, nbytes)``.
        self.raw_moves: List[Tuple[str, str, int]] = []
        #: Exempted raw bytes, by justification reason.
        self.exempt_raw: Dict[str, int] = {}
        #: Hard accounting violations found as they happened.
        self.problems: List[str] = []
        self._pending: Optional[Tuple[str, int]] = None
        self._timed_depth = 0
        self._exempt_reasons: List[str] = []
        self._machine: Optional["Machine"] = None

    # -- installation ---------------------------------------------------
    def install(self, machine: "Machine") -> None:
        self._machine = machine
        machine.fs.audit = self
        stats = machine.stats
        orig = stats.credit_submission

        def audited_credit(
            tag: str, user_bytes: float, direction: str = "", pattern: str = ""
        ):
            self.note_charge(direction, user_bytes, tag)
            return orig(tag, user_bytes, direction, pattern)

        stats.credit_submission = audited_credit  # type: ignore[method-assign]

    # -- storage-layer hooks (see repro.storage.file) -------------------
    def timed(self, direction: str, nbytes: int) -> "_TimedMove":
        """Scope one timed SimFile operation: announce the move and
        require the matching charge before the scope closes."""
        return _TimedMove(self, direction, int(nbytes))

    def note_raw(self, file_name: str, kind: str, nbytes: int) -> None:
        """A peek/poke outside any timed operation."""
        if self._timed_depth > 0:
            return  # data movement of the enclosing timed op, already audited
        machine = self._machine
        if machine is None or not machine.engine.running:
            return  # fixture / validation access outside the event loop
        if self._exempt_reasons:
            reason = self._exempt_reasons[-1]
            self.exempt_raw[reason] = self.exempt_raw.get(reason, 0) + int(nbytes)
            return
        self.raw_moves.append((file_name, kind, int(nbytes)))

    def begin_exempt(self, reason: str) -> None:
        self._exempt_reasons.append(reason or "unspecified")

    def end_exempt(self) -> None:
        self._exempt_reasons.pop()

    # -- stats-layer hook ------------------------------------------------
    def note_charge(self, direction: str, user_bytes: float, tag: str) -> None:
        if direction not in ("read", "write"):
            return
        pending = self._pending
        if pending is not None and pending[0] == direction:
            self._pending = None
            if float(pending[1]) != float(user_bytes):
                self.problems.append(
                    f"charge mismatch on {tag!r}: storage moved {pending[1]} B "
                    f"{direction} but {user_bytes:g} B were charged"
                )
            self.charged[direction] += float(user_bytes)
        else:
            if pending is not None:
                # A charge of the other direction interleaved; a timed
                # op never issues one, so the move went uncharged.
                self.problems.append(
                    f"storage moved {pending[1]} B {pending[0]} but the next "
                    f"charge was {direction!r} ({tag!r})"
                )
                self._pending = None
            self.non_storage_charged[direction] += float(user_bytes)

    # -- verdicts --------------------------------------------------------
    def drift_report(self) -> List[str]:
        """All accounting violations collected so far."""
        out = list(self.problems)
        if self._pending is not None:
            direction, nbytes = self._pending
            out.append(
                f"storage moved {nbytes} B {direction} with no charge recorded"
            )
        for file_name, kind, nbytes in self.raw_moves:
            out.append(
                f"raw uncharged {kind} of {nbytes} B on {file_name!r} mid-run "
                f"(use the timed SimFile APIs or SimFS.unaudited)"
            )
        return out

    def report(self) -> dict:
        return {
            "moved_read": self.moved["read"],
            "moved_write": self.moved["write"],
            "charged_read": self.charged["read"],
            "charged_write": self.charged["write"],
            "non_storage_charged_read": self.non_storage_charged["read"],
            "non_storage_charged_write": self.non_storage_charged["write"],
            "exempt_raw_bytes": dict(self.exempt_raw),
            "raw_uncharged_moves": len(self.raw_moves),
            "drift": self.drift_report(),
        }

    def check(self) -> None:
        """Raise :class:`ChargeDriftError` if any drift was observed."""
        drift = self.drift_report()
        if drift:
            raise ChargeDriftError(
                "charge accounting drift:\n  " + "\n  ".join(drift)
            )


class _TimedMove:
    """Context manager pairing one storage move with its charge."""

    __slots__ = ("_aud", "_direction", "_nbytes")

    def __init__(self, aud: ChargeAuditor, direction: str, nbytes: int):
        self._aud = aud
        self._direction = direction
        self._nbytes = nbytes

    def __enter__(self) -> None:
        aud = self._aud
        if aud._pending is not None:
            direction, nbytes = aud._pending
            aud.problems.append(
                f"storage moved {nbytes} B {direction} with no charge recorded"
            )
        aud._pending = (self._direction, self._nbytes)
        aud.moved[self._direction] += self._nbytes
        aud._timed_depth += 1

    def __exit__(self, exc_type, exc, tb) -> None:
        aud = self._aud
        aud._timed_depth -= 1
        if exc_type is None and aud._pending is not None:
            direction, nbytes = aud._pending
            aud._pending = None
            aud.problems.append(
                f"storage moved {nbytes} B {direction} but the operation "
                f"completed without charging the device model"
            )
        elif exc_type is not None:
            # The op failed before charging (ENOSPC, crash); the bytes
            # never moved to completion either -- roll the move back.
            if aud._pending is not None:
                aud._pending = None
                aud.moved[direction := self._direction] -= self._nbytes


# ----------------------------------------------------------------------
# The sanitizer facade
# ----------------------------------------------------------------------


class SimSanitizer:
    """Opt-in runtime checker for a :class:`~repro.machine.Machine`.

    Parameters
    ----------
    trace:
        Record the full event trace (op completions, process exits) for
        determinism diffing.  Off by default: traces grow with the run.
    """

    def __init__(self, trace: bool = False):
        #: pid -> (process, resource, verb) for every parked process.
        self.waits: Dict[int, Tuple["Process", Any, str]] = {}
        self.trace: Optional[List[tuple]] = [] if trace else None
        self.auditor = ChargeAuditor()
        self.machine: Optional["Machine"] = None

    # -- installation ---------------------------------------------------
    def install(self, machine: "Machine") -> None:
        self.machine = machine
        self.attach_engine(machine.engine)
        self.auditor.install(machine)

    def install_cluster(self, cluster) -> None:
        """Hook a :class:`repro.cluster.Cluster`: one sanitizer watches
        the shared engine and audits every shard's storage layer.

        Charge pairing is synchronous (a timed op opens and closes its
        audit scope while being built), so one auditor serves all shard
        filesystems without interleaving hazards.
        """
        self.machine = cluster.shards[0]
        self.attach_engine(cluster.engine)
        for shard in cluster.shards:
            self.auditor.install(shard)
        cluster.sanitizer = self

    def attach_engine(self, engine: "Engine") -> None:
        """Hook one engine (re-run by ``Machine.reboot`` on the
        replacement engine; pre-crash waiters died with the old one)."""
        engine.sanitizer = self
        self.waits.clear()

    # -- engine hooks ----------------------------------------------------
    def on_wait(self, proc: "Process", resource: Any, verb: str = "wait") -> None:
        self.waits[proc.pid] = (proc, resource, verb)

    def on_wake(self, proc: "Process") -> None:
        self.waits.pop(proc.pid, None)

    def on_op_complete(self, op, now: float) -> None:
        if self.trace is not None:
            self.trace.append(("op", now, op.kind, op.tag, op.work))

    def on_proc_finish(self, proc: "Process", now: float) -> None:
        if self.trace is not None:
            self.trace.append(("proc", now, proc.name))

    def on_proc_cancel(self, proc: "Process", now: float) -> None:
        """Final event for a coroutine torn down by ``cancel_tree``.

        A cancelled coroutine never resumes, so without this its
        waits-for entry would linger forever and any later deadlock
        diagnostic would name ghosts.
        """
        self.waits.pop(proc.pid, None)
        if self.trace is not None:
            self.trace.append(("cancel", now, proc.name))

    # -- deadlock diagnostics -------------------------------------------
    def blocked_table(self) -> List[str]:
        """One line per parked process: who waits on what."""
        lines = []
        for pid in sorted(self.waits):
            proc, resource, verb = self.waits[pid]
            lines.append(
                f"{proc.name} (pid {pid}) -> {verb} on "
                f"{describe_resource(resource)}"
            )
        return lines

    def deadlock_detail(self) -> str:
        """The waits-for graph, grouped per resource, cycle hints included."""
        if not self.waits:
            return "no parked processes were tracked"
        groups: List[Tuple[Any, List[str]]] = []
        index: Dict[int, int] = {}
        for pid in sorted(self.waits):
            proc, resource, verb = self.waits[pid]
            slot = index.get(id(resource))
            if slot is None:
                slot = index[id(resource)] = len(groups)
                groups.append((resource, []))
            groups[slot][1].append(f"{proc.name} (pid {pid}, {verb})")
        lines = ["waits-for graph:"]
        for resource, waiters in groups:
            lines.append(f"  {describe_resource(resource)}:")
            for w in waiters:
                lines.append(f"    <- {w}")
        return "\n".join(lines)

    # -- charge audit -----------------------------------------------------
    def audit_report(self) -> dict:
        return self.auditor.report()

    def check(self) -> None:
        """Raise on any accumulated charge-accounting drift."""
        self.auditor.check()

    # -- determinism -------------------------------------------------------
    def trace_digest(self) -> str:
        """SHA-256 over the exact event trace (requires ``trace=True``)."""
        if self.trace is None:
            raise ValueError("sanitizer was not created with trace=True")
        h = hashlib.sha256()
        for event in self.trace:
            h.update(repr(event).encode())
        return h.hexdigest()


# ----------------------------------------------------------------------
# Determinism harness
# ----------------------------------------------------------------------


class DeterminismReport:
    """Outcome of a :func:`verify_determinism` comparison."""

    def __init__(
        self,
        ok: bool,
        events: int,
        digests: List[str],
        divergence: Optional[dict] = None,
    ):
        self.ok = ok
        self.events = events
        self.digests = digests
        self.divergence = divergence

    def render(self) -> str:
        if self.ok:
            return (
                f"determinism: OK -- {self.events} trace events, "
                f"digest {self.digests[0][:16]}... identical across "
                f"{len(self.digests)} runs"
            )
        d = self.divergence or {}
        return (
            "determinism: FAILED -- traces diverge at event "
            f"{d.get('index')}:\n  run A: {d.get('a')}\n  run B: {d.get('b')}"
        )

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise DeterminismError(self.render())


def diff_traces(a: List[tuple], b: List[tuple]) -> Optional[dict]:
    """First divergence between two event traces, or None if identical."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return {"index": i, "a": ea, "b": eb}
    if len(a) != len(b):
        i = min(len(a), len(b))
        return {
            "index": i,
            "a": a[i] if i < len(a) else "<run ended>",
            "b": b[i] if i < len(b) else "<run ended>",
        }
    return None


def verify_determinism(
    run_fn: Callable[[SimSanitizer], Any], runs: int = 2
) -> DeterminismReport:
    """Run ``run_fn`` ``runs`` times with tracing sanitizers, diff traces.

    ``run_fn(sanitizer)`` must build a *fresh* machine/workload each
    call and install the given sanitizer on it (everything that makes a
    run a run -- seeds, configs -- must come from its own closure, so
    two calls are two executions of the identical workload).
    """
    if runs < 2:
        raise ValueError("need at least two runs to compare")
    traces: List[List[tuple]] = []
    digests: List[str] = []
    for _ in range(runs):
        san = SimSanitizer(trace=True)
        run_fn(san)
        traces.append(san.trace or [])
        digests.append(san.trace_digest())
    for other in traces[1:]:
        divergence = diff_traces(traces[0], other)
        if divergence is not None:
            return DeterminismReport(False, len(traces[0]), digests, divergence)
    return DeterminismReport(True, len(traces[0]), digests)
