"""Sim-time race detection and schedule fuzzing for the coroutine engine.

Two complementary dynamic checkers for the concurrency-heavy parts of the
reproduction (worker pools, the staged merge, the sharded shuffle with
speculation and cancellation):

* :class:`RaceDetector` -- logical vector clocks per coroutine, ticked at
  the engine's spawn/block/resume/finish hooks and the synchronisation
  primitives' acquire/release edges, plus a per-file byte-range access
  log fed by the storage choke points.  Two accesses to overlapping byte
  ranges of the same file *at the same simulated instant*, from
  different coroutines, at least one a write, and not ordered by
  happens-before, are flagged as a race: under a different (but equally
  legal) same-instant schedule the access order -- and with it the file
  contents -- could differ.  Accesses at *different* sim times are
  always ordered (the clock advances identically under every schedule),
  so only same-instant conflicts matter.

* :class:`SchedulePermuter` + :func:`schedule_fuzz` -- a seeded mode
  that permutes same-instant ready-queue order and completion ties,
  re-runs the workload per seed, and asserts the output fingerprint
  stays byte-identical.  This turns latent order-dependence (the kind
  the FIFO-stable run-twice determinism harness can never see) into a
  CI-checkable property.

Both follow the tracer/sanitizer contract: ``engine.race`` and
``engine.schedule_fuzz`` default to ``None`` and every hook site guards
on it, so the fast path costs one attribute load; installed, the
detector is observe-only -- simulated results are bit-identical.

Happens-before edges tracked (see DESIGN.md "Concurrency analysis"):

========  =============================================================
spawn     parent ticks; child starts with a copy of the parent's clock.
resume    the waking coroutine's clock (if the wake happens inside a
          coroutine step) merges into the resumed one.
join      the joiner merges every target's final clock (not just the
          last finisher's).
acquire   a primitive's resource clock merges into the acquirer
          (Semaphore fast-path acquire, SimQueue get/try_get, Barrier
          release); ``release``/``put`` merge the releaser into the
          resource clock.  This covers the fast paths that never pass
          through block/resume.
========  =============================================================
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RaceError, ScheduleDivergenceError
from repro.sim.engine import Join
from repro.sim.primitives import Barrier, Semaphore, SimQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.sim.engine import Engine, Process
    from repro.storage.file import SimFile

#: Primitives carrying a resource clock for acquire/release edges.
_PRIMITIVE_TYPES = (Semaphore, Barrier, SimQueue)

#: Cap on recorded distinct races (each pair is deduplicated anyway);
#: a racy workload would otherwise grow the report without bound.
_MAX_RACES = 100


def _merge(into: Dict[int, int], other: Dict[int, int]) -> None:
    """Component-wise max of two vector clocks, in place."""
    for pid, tick in other.items():
        if tick > into.get(pid, 0):
            into[pid] = tick


class _Access:
    """One logged byte-range access within the current instant."""

    __slots__ = ("proc_name", "pid", "epoch", "kind", "starts", "ends", "spans")

    def __init__(self, proc_name, pid, epoch, kind, starts, ends, spans):
        self.proc_name = proc_name
        self.pid = pid
        #: The accessor's own clock component at access time; a later
        #: access by another coroutine is HB-after this one iff that
        #: coroutine's live clock has caught up to this epoch.
        self.epoch = epoch
        self.kind = kind  # "r" | "w"
        self.starts = starts  # int64 array, sorted ascending
        self.ends = ends
        self.spans = spans


class RaceReport:
    """One flagged conflict: who, which file, which overlapping ranges."""

    def __init__(
        self,
        instant: float,
        file_name: str,
        a: _Access,
        b: _Access,
        overlaps: List[Tuple[int, int]],
    ):
        self.instant = instant
        self.file_name = file_name
        self.a_name, self.a_pid, self.a_kind = a.proc_name, a.pid, a.kind
        self.b_name, self.b_pid, self.b_kind = b.proc_name, b.pid, b.kind
        self.a_spans, self.b_spans = a.spans, b.spans
        self.overlaps = overlaps
        #: How many further conflicts between the same pair on the same
        #: file were suppressed by deduplication.
        self.repeats = 0

    def _kind_word(self, kind: str) -> str:
        return "write" if kind == "w" else "read"

    def render(self) -> str:
        conflict = f"{self.a_kind}{self.b_kind}".upper()
        ranges = ", ".join(f"[{s}, {e})" for s, e in self.overlaps)
        a_spans = ">".join(self.a_spans) if self.a_spans else "-"
        b_spans = ">".join(self.b_spans) if self.b_spans else "-"
        lines = [
            f"race: {conflict} conflict on {self.file_name!r} at "
            f"t={self.instant:.9g} (overlap {ranges})",
            f"  {self._kind_word(self.a_kind)} by {self.a_name!r} "
            f"(pid {self.a_pid}) in span {a_spans}",
            f"  {self._kind_word(self.b_kind)} by {self.b_name!r} "
            f"(pid {self.b_pid}) in span {b_spans}",
            "  no happens-before edge orders these accesses: a legal "
            "same-instant schedule permutation can swap them",
        ]
        if self.repeats:
            lines.append(f"  (+{self.repeats} further conflict(s) "
                         f"between this pair on this file)")
        return "\n".join(lines)


class RaceDetector:
    """Vector-clock race detector for one engine (machine or cluster).

    Observe-only: it never mutates engine, scheduler or storage state,
    so simulated results are bit-identical with or without it.  Install
    with :meth:`repro.machine.Machine.install_race_detector` (CLI:
    ``--race-detect``) or :meth:`install_cluster`; call :meth:`check`
    after the run to raise :class:`~repro.errors.RaceError` on findings.
    """

    def __init__(self):
        #: pid -> live vector clock (dict pid -> tick).
        self._clocks: Dict[int, Dict[int, int]] = {}
        #: pid -> final clock of a finished/cancelled coroutine, merged
        #: by joiners.
        self._final_clocks: Dict[int, Dict[int, int]] = {}
        #: id(resource) -> (resource, clock).  The strong reference
        #: keeps the id stable for the detector's lifetime.
        self._res_clocks: Dict[int, Tuple[Any, Dict[int, int]]] = {}
        #: The coroutine whose generator is currently executing
        #: (maintained by Engine._step, exactly like tracer._current).
        self._current: Optional["Process"] = None
        self._engine: Optional["Engine"] = None
        #: Same-instant access buffer: id(file) -> (file, [_Access...]).
        self._buffer: Dict[int, Tuple["SimFile", List[_Access]]] = {}
        self._instant_stamp: Optional[float] = None
        #: Deduplication of reported pairs: (file, pid_a, pid_b).
        self._seen_pairs: Dict[Tuple[str, int, int], RaceReport] = {}
        self.races: List[RaceReport] = []
        self.accesses_seen = 0
        self.pairs_checked = 0

    # -- installation ---------------------------------------------------
    def install(self, machine: "Machine") -> "RaceDetector":
        self.attach_engine(machine.engine)
        machine.fs.race = self
        machine.race = self
        return self

    def install_cluster(self, cluster) -> "RaceDetector":
        """One detector watches the shared engine and every shard's
        storage layer (files are compared by identity, so same-named
        files on different shards never alias)."""
        self.attach_engine(cluster.engine)
        for shard in cluster.shards:
            shard.fs.race = self
            shard.race = self
        cluster.race = self
        return self

    def attach_engine(self, engine: "Engine") -> None:
        """Hook one engine; re-run by reboot on the replacement engine.

        Volatile per-run state (live clocks, the current-instant buffer)
        is reset -- pre-crash coroutines died with the old engine --
        while recorded races survive, mirroring the sanitizer.
        """
        engine.race = self
        self._engine = engine
        self._clocks.clear()
        self._final_clocks.clear()
        self._res_clocks.clear()
        self._buffer.clear()
        # Pair dedup is keyed on pids, and the pid namespace restarts
        # with the engine: without this reset a post-reboot race could
        # hide behind a pre-reboot report from unrelated coroutines.
        self._seen_pairs.clear()
        self._instant_stamp = None
        self._current = None

    # -- clock plumbing -------------------------------------------------
    def _clock_of(self, proc: "Process") -> Dict[int, int]:
        c = self._clocks.get(proc.pid)
        if c is None:
            # Spawned before the detector attached (or outside it):
            # starts unordered relative to everyone, which is the
            # conservative direction for a detector.
            c = self._clocks[proc.pid] = {proc.pid: 1}
        return c

    def _tick(self, proc: "Process") -> Dict[int, int]:
        c = self._clock_of(proc)
        c[proc.pid] = c.get(proc.pid, 0) + 1
        return c

    # -- engine hooks ----------------------------------------------------
    def on_spawn(self, proc: "Process") -> None:
        parent = self._current
        if parent is not None:
            child = dict(self._tick(parent))
        else:
            child = {}
        child[proc.pid] = child.get(proc.pid, 0) + 1
        self._clocks[proc.pid] = child

    def on_block(self, proc: "Process", resource: Any, verb: str) -> None:
        c = self._tick(proc)
        # Barrier arrivals and queue puts publish state through the
        # resource: merge the blocker into the resource clock so the
        # eventual releaser / getter inherits the edge.
        if isinstance(resource, Barrier) or (
            isinstance(resource, SimQueue) and verb == "put"
        ):
            self._res_merge(resource, c)

    def on_resume(self, proc: "Process", resource: Any) -> None:
        c = self._clock_of(proc)
        waker = self._current
        if waker is not None and waker is not proc:
            _merge(c, self._tick(waker))
        if isinstance(resource, _PRIMITIVE_TYPES):
            entry = self._res_clocks.get(id(resource))
            if entry is not None:
                _merge(c, entry[1])
        elif isinstance(resource, Join):
            # Only the last finisher's callback triggers the resume;
            # merging every target's final clock keeps the earlier
            # finishers' edges.
            for target in resource.targets:
                final = self._final_clocks.get(target.pid)
                if final is not None:
                    _merge(c, final)
        c[proc.pid] = c.get(proc.pid, 0) + 1

    def on_finish(self, proc: "Process", now: float) -> None:
        c = self._clocks.pop(proc.pid, None)
        if c is None:
            c = {proc.pid: 0}
        c[proc.pid] = c.get(proc.pid, 0) + 1
        self._final_clocks[proc.pid] = c

    def on_cancel(self, proc: "Process", now: float) -> None:
        """Cancelled coroutines emit a final clock like finished ones,
        so joiners of a cancelled subtree still merge a terminal state
        and the live-clock table never leaks stuck entries."""
        self.on_finish(proc, now)

    # -- primitive hooks (fast paths that bypass block/resume) -----------
    def on_acquire(self, proc: Optional["Process"], resource: Any) -> None:
        if proc is None:
            return
        c = self._clock_of(proc)
        entry = self._res_clocks.get(id(resource))
        if entry is not None:
            _merge(c, entry[1])
        c[proc.pid] = c.get(proc.pid, 0) + 1

    def on_release(self, resource: Any) -> None:
        proc = self._current
        if proc is None:
            return  # release from a completion callback: no coroutine edge
        self._res_merge(resource, self._tick(proc))

    def _res_merge(self, resource: Any, clock: Dict[int, int]) -> None:
        entry = self._res_clocks.get(id(resource))
        if entry is None:
            entry = self._res_clocks[id(resource)] = (resource, {})
        _merge(entry[1], clock)

    # -- storage hooks ----------------------------------------------------
    def note_span(self, file: "SimFile", kind: str, offset: int, nbytes: int) -> None:
        """A contiguous access ``[offset, offset + nbytes)``."""
        if nbytes <= 0:
            return
        starts = np.asarray([offset], dtype=np.int64)
        self._note(file, kind, starts, starts + int(nbytes))

    def note_batch(self, file: "SimFile", kind: str, starts, sizes) -> None:
        """A gather/scatter access: ``starts[i]`` for ``sizes[i]`` bytes
        (``sizes`` may be a scalar)."""
        s = np.asarray(starts, dtype=np.int64)
        if s.size == 0:
            return
        e = s + np.asarray(sizes, dtype=np.int64)
        if s.size > 1 and not bool(np.all(s[1:] >= s[:-1])):
            order = np.argsort(s, kind="stable")
            s, e = s[order], e[order]
        self._note(file, kind, s, e)

    def _note(self, file, kind, starts, ends) -> None:
        proc = self._current
        engine = self._engine
        if proc is None or engine is None or not engine.running:
            # Fixture/validation access, or data movement re-issued from
            # a retry/timer callback: not attributable to a coroutine
            # step, and (for the latter) already logged at issue time.
            return
        t = engine.now
        if t != self._instant_stamp:
            # Exact float compare is sound here: both values are the
            # same engine.now object, never independently recomputed.
            self._buffer.clear()
            self._instant_stamp = t
        self.accesses_seen += 1
        c = self._clock_of(proc)
        spans: Tuple[str, ...] = ()
        tracer = engine.tracer
        if tracer is not None:
            stack = tracer._stacks.get(proc.pid)
            if stack:
                spans = tuple(s.name for s in stack)
        access = _Access(proc.name, proc.pid, c.get(proc.pid, 0), kind,
                         starts, ends, spans)
        entry = self._buffer.get(id(file))
        if entry is None:
            self._buffer[id(file)] = (file, [access])
            return
        for old in entry[1]:
            if old.pid == access.pid:
                continue  # same coroutine: ordered by program order
            if old.kind == "r" and access.kind == "r":
                continue
            self.pairs_checked += 1
            # The old access happened earlier in execution order, so HB
            # can only run old -> new: it holds iff the new coroutine's
            # live clock has caught up to the old access's epoch.
            if c.get(old.pid, 0) >= old.epoch:
                continue
            overlaps = _overlap_ranges(old.starts, old.ends,
                                       access.starts, access.ends)
            if overlaps:
                self._record(file, old, access, overlaps, t)
        entry[1].append(access)

    def _record(self, file, old, new, overlaps, instant) -> None:
        key = (file.name, old.pid, new.pid)
        prior = self._seen_pairs.get(key)
        if prior is not None:
            prior.repeats += 1
            return
        report = RaceReport(instant, file.name, old, new, overlaps)
        self._seen_pairs[key] = report
        if len(self.races) < _MAX_RACES:
            self.races.append(report)

    # -- verdicts ---------------------------------------------------------
    def report(self) -> dict:
        return {
            "accesses_seen": self.accesses_seen,
            "pairs_checked": self.pairs_checked,
            "races": len(self.races),
            "diagnostics": [r.render() for r in self.races],
        }

    def render(self) -> str:
        if not self.races:
            return (
                f"race-detect: no conflicting same-instant accesses "
                f"({self.accesses_seen} accesses logged, "
                f"{self.pairs_checked} candidate pairs checked)"
            )
        out = [r.render() for r in self.races]
        out.append(f"race-detect: {len(self.races)} distinct racing pair(s)")
        return "\n".join(out)

    def check(self) -> None:
        """Raise :class:`~repro.errors.RaceError` if any race was seen."""
        if self.races:
            raise RaceError(self.render())


def _overlap_ranges(
    a_starts: np.ndarray,
    a_ends: np.ndarray,
    b_starts: np.ndarray,
    b_ends: np.ndarray,
    limit: int = 3,
) -> List[Tuple[int, int]]:
    """Intersections of two interval sets (each sorted by start).

    Returns at most ``limit`` overlapping ``(start, end)`` windows --
    diagnostics need representative ranges, not the full product.
    """
    out: List[Tuple[int, int]] = []
    i = j = 0
    na, nb = len(a_starts), len(b_starts)
    while i < na and j < nb and len(out) < limit:
        s = max(a_starts[i], b_starts[j])
        e = min(a_ends[i], b_ends[j])
        if s < e:
            out.append((int(s), int(e)))
        if a_ends[i] <= b_ends[j]:
            i += 1
        else:
            j += 1
    return out


# ----------------------------------------------------------------------
# Schedule fuzzing
# ----------------------------------------------------------------------


class SchedulePermuter:
    """Deterministic same-instant schedule permutation, from one seed.

    Installed as ``engine.schedule_fuzz``; the engine consults it at its
    two tie-break points -- which ready process to step next, and the
    order in which same-instant op completions are delivered.  Both are
    *legal* schedules (every permuted choice was runnable at that
    instant), so a correct workload must produce byte-identical output
    under every seed.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)
        self.picks = 0
        self.shuffles = 0

    def pick(self, n: int) -> int:
        """Index of the ready process to step next, out of ``n``."""
        self.picks += 1
        return self._rng.randrange(n)

    def shuffle(self, items: list) -> None:
        """Permute a batch of same-instant op completions in place."""
        self.shuffles += 1
        self._rng.shuffle(items)


class ScheduleFuzzReport:
    """Outcome of a :func:`schedule_fuzz` sweep."""

    def __init__(
        self,
        baseline: str,
        rows: List[Tuple[str, str]],
        mismatches: List[Tuple[Any, str]],
    ):
        self.baseline = baseline
        self.rows = rows
        self.mismatches = mismatches

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        lines = [f"  {label:12s} {fp}" for label, fp in self.rows]
        if self.ok:
            head = (
                f"schedule-fuzz: OK -- {len(self.rows) - 1} permuted "
                f"schedule(s), output fingerprint {self.baseline[:16]}... "
                f"identical to the FIFO baseline"
            )
            return "\n".join([head] + lines)
        head = (
            f"schedule-fuzz: FAILED -- {len(self.mismatches)} of "
            f"{len(self.rows) - 1} permuted schedule(s) changed the "
            f"output bytes (latent order-dependence)"
        )
        return "\n".join([head] + lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise ScheduleDivergenceError(self.render())


def schedule_fuzz(
    run_fn: Callable[[Optional[int]], str],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> ScheduleFuzzReport:
    """Run ``run_fn`` under the FIFO baseline and ``seeds`` permutations.

    ``run_fn(seed)`` must build a *fresh* machine/workload each call,
    install ``SchedulePermuter(seed)`` when ``seed`` is not None, run,
    and return the output fingerprint (see :func:`file_fingerprint`).
    The fingerprint covers output *bytes* only: under fault plans the
    crash op-index lands on a different op per schedule, so simulated
    durations may legitimately differ while the bytes must not.
    """
    baseline = run_fn(None)
    rows: List[Tuple[str, str]] = [("baseline", baseline)]
    mismatches: List[Tuple[Any, str]] = []
    for seed in seeds:
        fp = run_fn(seed)
        rows.append((f"seed {seed}", fp))
        if fp != baseline:
            mismatches.append((seed, fp))
    return ScheduleFuzzReport(baseline, rows, mismatches)


# ----------------------------------------------------------------------
# Output fingerprints
# ----------------------------------------------------------------------


def file_fingerprint(simfile: "SimFile") -> str:
    """SHA-256 over a simulated file's bytes (untimed, post-run)."""
    return hashlib.sha256(simfile.peek().tobytes()).hexdigest()


def sort_output_fingerprint(result) -> str:
    """Fingerprint of a :class:`~repro.core.base.SortResult`'s output."""
    machine = result.extras["machine"]
    return file_fingerprint(machine.fs.open(result.output_name))


def cluster_output_fingerprint(cluster, output_name: str, n_parts: int) -> str:
    """Fingerprint of a sharded sort's merged output, in partition order.

    Recovery and speculation may relocate a partition to any shard, so
    each ``{output_name}.shard{d}`` part is searched for across the
    whole cluster; exactly one shard must hold it.
    """
    from repro.errors import StorageError

    h = hashlib.sha256()
    for d in range(n_parts):
        part_name = f"{output_name}.shard{d}"
        holders = [s for s in cluster.shards if s.fs.exists(part_name)]
        if len(holders) != 1:
            raise StorageError(
                f"expected exactly one shard holding {part_name!r}, "
                f"found {len(holders)}"
            )
        h.update(holders[0].fs.open(part_name).peek().tobytes())
    return h.hexdigest()
