"""Static analysis and runtime sanitizers for the simulator.

Two halves:

* **reprolint** (:mod:`repro.analysis.lint`, :mod:`repro.analysis.rules`)
  -- an AST-based linter enforcing simulator-specific invariants (no
  wall-clock in simulated code, no unseeded RNG, no iteration-order
  leaks, no float-equality on simulated time, no uncharged byte moves).
  Run it with ``python -m repro.analysis.lint <paths>``.

* **SimSanitizer** (:mod:`repro.analysis.sanitizer`) -- an opt-in
  runtime checker installed via
  :meth:`repro.machine.Machine.install_sanitizer` (CLI: ``--sanitize``):
  deadlock diagnostics naming stuck coroutines, a charge-accounting
  audit, and a run-twice determinism harness.
"""

from repro.analysis.rules import RULES, Finding, check_module
from repro.analysis.sanitizer import (
    ChargeAuditor,
    DeterminismReport,
    SimSanitizer,
    verify_determinism,
)


def __getattr__(name):
    # Lazy re-export: importing repro.analysis.lint here eagerly would
    # trip the "found in sys.modules" warning under
    # ``python -m repro.analysis.lint``.
    if name in ("lint_paths", "lint_source"):
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(name)

__all__ = [
    "RULES",
    "Finding",
    "check_module",
    "lint_paths",
    "lint_source",
    "ChargeAuditor",
    "DeterminismReport",
    "SimSanitizer",
    "verify_determinism",
]
