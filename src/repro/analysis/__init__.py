"""Static analysis and runtime sanitizers for the simulator.

Two halves:

* **reprolint** (:mod:`repro.analysis.lint`, :mod:`repro.analysis.rules`)
  -- an AST-based linter enforcing simulator-specific invariants (no
  wall-clock in simulated code, no unseeded RNG, no iteration-order
  leaks, no float-equality on simulated time, no uncharged byte moves).
  Run it with ``python -m repro.analysis.lint <paths>``.

* **SimSanitizer** (:mod:`repro.analysis.sanitizer`) -- an opt-in
  runtime checker installed via
  :meth:`repro.machine.Machine.install_sanitizer` (CLI: ``--sanitize``):
  deadlock diagnostics naming stuck coroutines, a charge-accounting
  audit, and a run-twice determinism harness.

Plus **simrace** (:mod:`repro.analysis.race`) -- a sim-time race
detector (vector clocks + per-file byte-range access logs, CLI:
``--race-detect``) and a schedule-fuzz harness permuting same-instant
scheduling ties (CLI: ``--schedule-fuzz N``).
"""

from repro.analysis.race import (
    RaceDetector,
    RaceReport,
    ScheduleFuzzReport,
    SchedulePermuter,
    cluster_output_fingerprint,
    file_fingerprint,
    schedule_fuzz,
    sort_output_fingerprint,
)
from repro.analysis.rules import RULES, Finding, check_module
from repro.analysis.sanitizer import (
    ChargeAuditor,
    DeterminismReport,
    SimSanitizer,
    verify_determinism,
)


def __getattr__(name):
    # Lazy re-export: importing repro.analysis.lint here eagerly would
    # trip the "found in sys.modules" warning under
    # ``python -m repro.analysis.lint``.
    if name in ("lint_paths", "lint_source"):
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(name)

__all__ = [
    "RULES",
    "Finding",
    "check_module",
    "lint_paths",
    "lint_source",
    "ChargeAuditor",
    "DeterminismReport",
    "SimSanitizer",
    "verify_determinism",
    "RaceDetector",
    "RaceReport",
    "SchedulePermuter",
    "ScheduleFuzzReport",
    "schedule_fuzz",
    "file_fingerprint",
    "sort_output_fingerprint",
    "cluster_output_fingerprint",
]
