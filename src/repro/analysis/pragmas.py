"""The ``# reprolint: disable=...`` escape hatch.

Two forms, both expected to carry a human justification in the same
comment::

    x = set(...)
    for item in x:   # reprolint: disable=SIM003 -- order restored by heap keys
        ...

    # reprolint: disable-file=DEV001 -- analytic baseline, charged via io_raw

Line pragmas silence the named rules on their own physical line (and,
for multi-line statements, any line of the statement works as long as
it is the one the finding points at).  ``disable=all`` silences every
rule.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.analysis.rules import RETIRED_RULES, RULES, Finding

_LINE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _parse_rule_list(text: str) -> Set[str]:
    # Justifications not set off by ``--`` still parse: each comma part
    # contributes only its first whitespace token as a rule id.
    out: Set[str] = set()
    for part in text.split(","):
        tokens = part.split()
        if tokens:
            out.add(tokens[0])
    return out


def collect_pragmas(source: str) -> tuple[Dict[int, Set[str]], Set[str]]:
    """``(line -> disabled rules, file-wide disabled rules)`` for a module."""
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "reprolint" not in line:
            continue
        m = _FILE_RE.search(line)
        if m:
            file_wide |= _parse_rule_list(m.group(1))
            continue
        m = _LINE_RE.search(line)
        if m:
            per_line.setdefault(lineno, set()).update(_parse_rule_list(m.group(1)))
    return per_line, file_wide


def validate_pragmas(source: str, path: str) -> List[Finding]:
    """PRG001 findings for unknown / retired rule ids in pragmas.

    A typo'd id (``disable=SIM0003``) silences nothing and hides the
    author's intent; a retired id should be dropped, and the finding
    says where the invariant it silenced went.  ``all`` is always
    accepted.
    """
    findings: List[Finding] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "reprolint" not in line:
            continue
        m = _FILE_RE.search(line) or _LINE_RE.search(line)
        if not m:
            continue
        for rule_id in sorted(_parse_rule_list(m.group(1))):
            if rule_id == "all" or rule_id in RULES:
                continue
            retired = RETIRED_RULES.get(rule_id)
            if retired is not None:
                msg = (
                    f"pragma names retired rule {rule_id!r} ({retired}); "
                    f"drop it or target the successor rule"
                )
            else:
                msg = (
                    f"pragma names unknown rule {rule_id!r} and silences "
                    f"nothing; known ids: {', '.join(sorted(RULES))}"
                )
            findings.append(
                Finding(path, lineno, line.index("#"), "PRG001", msg)
            )
    return findings


def filter_findings(findings: List[Finding], source: str) -> List[Finding]:
    """Drop findings silenced by line or file pragmas."""
    if not findings:
        return findings
    per_line, file_wide = collect_pragmas(source)
    if not per_line and not file_wide:
        return findings
    kept = []
    for f in findings:
        disabled = per_line.get(f.line, set()) | file_wide
        if f.rule in disabled or "all" in disabled:
            continue
        kept.append(f)
    return kept
