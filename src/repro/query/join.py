"""Sort-merge join over IndexMaps, without moving non-matching values.

"two IndexMap files can be used to perform joins on relations without
moving entire values associated with them" (paper Sec 5).  Both sides'
IndexMaps are already sorted, so the match phase is a linear merge over
key-pointer entries; values are gathered -- concurrently, in batches --
only for rows that actually join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.query.sorted_index import SortedIndex
from repro.records.format import key_columns

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


@dataclass
class JoinResult:
    """Matched row pairs plus the simulated cost of producing them."""

    left_records: np.ndarray  # (n, left_record_size)
    right_records: np.ndarray  # (n, right_record_size)
    elapsed: float
    matches: int = 0
    extras: dict = field(default_factory=dict)


def _keys_as_tuples(keys: np.ndarray) -> List[Tuple[int, ...]]:
    cols = key_columns(keys)
    return list(zip(*[c.tolist() for c in cols])) if cols else []


def _match_sorted(left_keys, right_keys) -> Tuple[List[int], List[int]]:
    """Indices of matching pairs between two sorted key lists (inner join,
    producing the full cross product for duplicate keys)."""
    li, ri = 0, 0
    left_idx: List[int] = []
    right_idx: List[int] = []
    nl, nr = len(left_keys), len(right_keys)
    while li < nl and ri < nr:
        if left_keys[li] < right_keys[ri]:
            li += 1
        elif left_keys[li] > right_keys[ri]:
            ri += 1
        else:
            key = left_keys[li]
            l_end = li
            while l_end < nl and left_keys[l_end] == key:
                l_end += 1
            r_end = ri
            while r_end < nr and right_keys[r_end] == key:
                r_end += 1
            for a in range(li, l_end):
                for b in range(ri, r_end):
                    left_idx.append(a)
                    right_idx.append(b)
            li, ri = l_end, r_end
    return left_idx, right_idx


def indexmap_join(
    left: SortedIndex, right: SortedIndex, batch_rows: int = 8192
) -> JoinResult:
    """Inner-join two indexed relations on their full keys.

    Both indexes must be built and share one machine (one device).  The
    merge over key-pointer entries is charged as single-threaded compare
    work; value gathers run at the random-read pool size, batched, with
    left and right gathers of a batch issued back-to-back (reads only --
    no interference concern).
    """
    if left.machine is not right.machine:
        raise ConfigError("join requires both relations on one machine")
    if left.fmt.key_size != right.fmt.key_size:
        raise ConfigError("join keys must have equal width")
    machine: "Machine" = left.machine
    left_map = left._require_built()
    right_map = right._require_built()

    t0 = machine.now
    left_keys = _keys_as_tuples(left_map.keys)
    right_keys = _keys_as_tuples(right_map.keys)
    left_idx, right_idx = _match_sorted(left_keys, right_keys)
    holder = {"left": [], "right": []}

    def proc():
        # Linear merge over both IndexMaps: ~one comparison per entry.
        yield machine.compute(
            machine.host.merge_compare_seconds(
                len(left_keys) + len(right_keys), ways=2
            ),
            tag="JOIN merge",
            cores=1,
        )
        for start in range(0, len(left_idx), batch_rows):
            stop = min(start + batch_rows, len(left_idx))
            lpart = left_map.select(np.asarray(left_idx[start:stop], dtype=np.int64))
            rpart = right_map.select(np.asarray(right_idx[start:stop], dtype=np.int64))
            ldata = yield left.relation.read_gather(
                lpart.pointers,
                left.fmt.record_size,
                tag="JOIN gather",
                threads=left._controller.read_threads(Pattern.RAND),
            )
            rdata = yield right.relation.read_gather(
                rpart.pointers,
                right.fmt.record_size,
                tag="JOIN gather",
                threads=right._controller.read_threads(Pattern.RAND),
            )
            holder["left"].append(ldata)
            holder["right"].append(rdata)

    machine.run(proc(), name="indexmap-join")
    empty_l = np.zeros((0, left.fmt.record_size), dtype=np.uint8)
    empty_r = np.zeros((0, right.fmt.record_size), dtype=np.uint8)
    left_records = (
        np.concatenate(holder["left"]) if holder["left"] else empty_l
    )
    right_records = (
        np.concatenate(holder["right"]) if holder["right"] else empty_r
    )
    return JoinResult(
        left_records=left_records,
        right_records=right_records,
        elapsed=machine.now - t0,
        matches=len(left_idx),
    )
