"""A persisted sorted IndexMap serving on-demand queries.

Building the index costs one WiscSort-style RUN phase (strided key
gather + concurrent sort + sequential IndexMap write).  Queries then
gather *only the qualifying values* with concurrent random reads --
late materialization.  The comparison point for every query is the
eager alternative: fully sorting the relation first (the paper's Sec 5
motivation for rethinking HTAP operators on BRAID).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.base import SortConfig
from repro.core.controller import ThreadPoolController
from repro.core.indexmap import IndexMap
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import RecordFormat, leq_mask

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@dataclass
class QueryResult:
    """Rows returned by a query plus its simulated cost."""

    records: np.ndarray  # (n, record_size) uint8, in key order
    elapsed: float
    bytes_gathered: int
    extras: dict = field(default_factory=dict)


class SortedIndex:
    """Sorted key-pointer index over a fixed-size-record relation."""

    def __init__(
        self,
        machine: "Machine",
        relation: "SimFile",
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        persist: bool = True,
    ):
        self.machine = machine
        self.relation = relation
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        if relation.size % self.fmt.record_size:
            raise ConfigError("relation size not a multiple of record size")
        self.n_records = relation.size // self.fmt.record_size
        self.persist = persist
        self._controller = ThreadPoolController(machine, self.config)
        self.imap: Optional[IndexMap] = None
        self.build_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> "SortedIndex":
        """RUN-phase style index construction (Sec 3.7 steps 1-2 [+5])."""
        t0 = self.machine.now
        self.machine.run(self._build_proc(), name="index-build")
        self.build_time = self.machine.now - t0
        return self

    def _build_proc(self):
        fmt = self.fmt
        machine = self.machine
        controller = self._controller
        keys = yield self.relation.read_strided(
            0,
            self.n_records,
            stride=fmt.record_size,
            access_size=fmt.key_size,
            tag="INDEX build read",
            threads=controller.read_threads(Pattern.RAND),
        )
        yield machine.compute(
            machine.host.touch_seconds(self.n_records),
            tag="INDEX build read",
            cores=controller.sort_cores(),
        )
        imap = IndexMap.for_fixed_records(
            keys, 0, fmt.record_size, fmt.pointer_size
        )
        yield machine.sort_compute(
            self.n_records, tag="INDEX build sort", cores=controller.sort_cores()
        )
        self.imap = imap.sorted()
        if self.persist:
            index_file = machine.fs.create(f"{self.relation.name}.indexmap")
            yield index_file.write(
                0,
                self.imap.to_bytes(),
                tag="INDEX build write",
                threads=controller.write_threads(),
            )

    def _require_built(self) -> IndexMap:
        if self.imap is None:
            raise ConfigError("call build() before querying")
        return self.imap

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, k: int) -> QueryResult:
        """The k smallest-keyed rows, fully materialised.

        TOP-K with an input exceeding memory is one of the paper's
        motivating database workloads (Sec 1); late materialization
        gathers exactly k values instead of sorting the whole relation.
        """
        if k < 0:
            raise ConfigError("k must be >= 0")
        imap = self._require_built()
        part = imap.slice(0, min(k, len(imap)))
        return self._gather(part, tag="QUERY top-k")

    def range_scan(self, low: bytes, high: bytes) -> QueryResult:
        """All rows with ``low <= key <= high``, in key order."""
        if low > high:
            raise ConfigError("low must be <= high")
        imap = self._require_built()
        low_arr = self._as_key(low)
        high_arr = self._as_key(high)
        # Sorted keys: the qualifying rows form a contiguous slice.
        below_low = int(
            leq_mask(imap.keys, low_arr).sum()
            - self._count_equal(imap.keys, low_arr)
        )
        upto_high = int(leq_mask(imap.keys, high_arr).sum())
        part = imap.slice(below_low, upto_high)
        return self._gather(part, tag="QUERY range")

    def _as_key(self, key: bytes) -> np.ndarray:
        if len(key) != self.fmt.key_size:
            raise ConfigError(
                f"key must be {self.fmt.key_size} bytes, got {len(key)}"
            )
        return np.frombuffer(key, dtype=np.uint8)

    @staticmethod
    def _count_equal(keys: np.ndarray, bound: np.ndarray) -> int:
        return int(np.all(keys == bound.reshape(1, -1), axis=1).sum())

    def _gather(self, part: IndexMap, tag: str) -> QueryResult:
        machine = self.machine
        fmt = self.fmt
        t0 = machine.now
        holder = {}

        def proc():
            if len(part) == 0:
                holder["records"] = np.zeros((0, fmt.record_size), dtype=np.uint8)
                return
            data = yield self.relation.read_gather(
                part.pointers,
                fmt.record_size,
                tag=tag,
                threads=self._controller.read_threads(Pattern.RAND),
            )
            holder["records"] = data

        machine.run(proc(), name=tag)
        return QueryResult(
            records=holder["records"],
            elapsed=machine.now - t0,
            bytes_gathered=len(part) * fmt.record_size,
        )
