"""Late-materialization query operators over IndexMaps (paper Sec 5).

"WiscSort converts a row-oriented database to a column-oriented one on
the fly, this enables provisions to provide late materialization if
required.  For example, a range of sorted key values can be generated
*on demand* with the help of IndexMap files; or two IndexMap files can
be used to perform joins on relations without moving entire values
associated with them."

This package implements those provisions:

* :class:`~repro.query.sorted_index.SortedIndex` -- build a persisted,
  sorted IndexMap once; serve ``top_k`` and ``range_scan`` queries by
  gathering only the qualifying values.
* :func:`~repro.query.join.indexmap_join` -- sort-merge join two
  relations on their keys using only their IndexMaps, materialising
  values exclusively for matching rows.
"""

from repro.query.join import JoinResult, indexmap_join
from repro.query.sorted_index import QueryResult, SortedIndex

__all__ = ["SortedIndex", "QueryResult", "indexmap_join", "JoinResult"]
