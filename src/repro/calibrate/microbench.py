"""Microbenchmark suite: probe a device for bandwidth scaling curves.

Rather than peeking at a profile's internal curves, the suite *measures*
the simulated device the same way the paper measures PMEM: issue a
fixed-size operation at a range of thread counts, record achieved
bandwidth, and pick the best pool size per access class.  This keeps the
thread-pool controller honest -- it works for any
:class:`~repro.device.profile.DeviceProfile` without knowing its
internals, exactly like the real controller works from HMAT-style
measurement data (Sec 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.device.host import HostModel
from repro.device.profile import DeviceProfile, Pattern
from repro.units import MiB

#: Thread counts probed per access class.
PROBE_THREADS: Tuple[int, ...] = (1, 2, 4, 5, 8, 12, 16, 24, 32, 48)

#: Payload per probe; large enough that fixed costs vanish.
PROBE_BYTES = 64 * MiB

#: Tolerance for "as good as peak" when choosing the smallest pool.
PEAK_TOLERANCE = 0.02


@dataclass(frozen=True)
class AccessClassResult:
    """Measured scaling of one access class (e.g. sequential reads)."""

    points: Tuple[Tuple[int, float], ...]  # (threads, achieved bytes/s)

    @property
    def peak_bandwidth(self) -> float:
        return max(bw for _, bw in self.points)

    @property
    def best_threads(self) -> int:
        """Smallest thread count within tolerance of peak bandwidth."""
        peak = self.peak_bandwidth
        for threads, bw in self.points:
            if bw >= peak * (1.0 - PEAK_TOLERANCE):
                return threads
        raise AssertionError("unreachable")


@dataclass(frozen=True)
class CalibrationResult:
    """Measured device behaviour consumed by the thread-pool controller."""

    device_name: str
    seq_read: AccessClassResult
    rand_read: AccessClassResult
    write: AccessClassResult

    def table(self) -> List[str]:
        """Human-readable calibration table (one line per probe)."""
        lines = [f"calibration for {self.device_name}:"]
        for label, result in (
            ("seq-read", self.seq_read),
            ("rand-read", self.rand_read),
            ("write", self.write),
        ):
            for threads, bw in result.points:
                lines.append(f"  {label:9s} t={threads:3d}  {bw / 1e9:7.2f} GB/s")
            lines.append(
                f"  {label:9s} -> pool={result.best_threads}, "
                f"peak={result.peak_bandwidth / 1e9:.2f} GB/s"
            )
        return lines


_CACHE: Dict[Tuple[int, int], CalibrationResult] = {}


def calibrate_device(
    profile: DeviceProfile, host: HostModel, use_cache: bool = True
) -> CalibrationResult:
    """Measure ``profile`` with a throwaway machine per probe point.

    Results are cached by (profile, host) identity: experiments create
    many machines with the same shared profile object, and probing is
    pure.
    """
    key = (id(profile), id(host))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    result = CalibrationResult(
        device_name=profile.name,
        seq_read=_probe(profile, host, "read", Pattern.SEQ),
        rand_read=_probe(profile, host, "read", Pattern.RAND),
        write=_probe(profile, host, "write", Pattern.SEQ),
    )
    if use_cache:
        _CACHE[key] = result
    return result


def _probe(
    profile: DeviceProfile, host: HostModel, direction: str, pattern: Pattern
) -> AccessClassResult:
    from repro.machine import Machine  # local import: avoids module cycle

    points = []
    for threads in PROBE_THREADS:
        machine = Machine(profile=profile, host=host)

        def job():
            yield machine.io(
                direction,
                pattern,
                PROBE_BYTES,
                tag="calibrate",
                accesses=(PROBE_BYTES // profile.granularity)
                if pattern is Pattern.RAND
                else 1,
                threads=threads,
            )

        machine.run(job(), name=f"probe-{direction}-{pattern}-{threads}")
        elapsed = machine.now
        points.append((threads, PROBE_BYTES / elapsed if elapsed > 0 else 0.0))
    return AccessClassResult(points=tuple(points))
