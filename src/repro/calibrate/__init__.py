"""Device characterisation microbenchmarks (paper Sec 3.8).

"In our system, a microbenchmark determines the device's peak bandwidth
capabilities and scaling behavior. The controller then utilizes this
information at run time to determine the thread pool sizes."
"""

from repro.calibrate.microbench import CalibrationResult, calibrate_device

__all__ = ["CalibrationResult", "calibrate_device"]
