"""K-way merge machinery shared by all merge-based sorting systems.

The merge phase of every system (external merge sort over record runs,
WiscSort/PMSort over IndexMap runs) follows the paper's cursor protocol
(Sec 3.7, steps 6-9): the read buffer is split evenly among the run
files, cursors track the current window of each run, exhausted windows
are refilled, and when a run drains its buffer share is redistributed.

For simulation efficiency the merge is executed in *batches* rather than
record-at-a-time: all windowed entries whose key is <= the smallest
"window-end" key across still-readable runs are globally safe to emit
(any unread entry of run *j* is >= the last key currently windowed from
run *j*).  Batching changes nothing about the output or the I/O pattern
-- it only aggregates the per-record CPU cost into one op.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.records.format import key_sort_indices, leq_mask, min_key
from repro.storage.file import SimFile
from repro.units import ceil_div


class RunCursor:
    """Window over one sorted run file of fixed-size entries.

    The driver loop must uphold the protocol::

        while not cursor.done:
            if cursor.needs_refill:
                data = yield cursor.refill_op(tag, threads)
                cursor.accept(data)
            ...
    """

    def __init__(
        self,
        run_file: SimFile,
        entry_size: int,
        key_size: int,
        window_bytes: int,
    ):
        if entry_size < key_size:
            raise SimulationError("entry_size must be >= key_size")
        self.file = run_file
        self.entry_size = entry_size
        self.key_size = key_size
        self.window_entries = max(1, window_bytes // entry_size)
        self.pos = 0
        self.window = np.zeros((0, entry_size), dtype=np.uint8)
        self.bytes_loaded = 0

    # ------------------------------------------------------------------
    @property
    def file_exhausted(self) -> bool:
        return self.pos >= self.file.size

    @property
    def done(self) -> bool:
        return self.file_exhausted and self.window.shape[0] == 0

    @property
    def needs_refill(self) -> bool:
        return self.window.shape[0] == 0 and not self.file_exhausted

    def grow_window(self, extra_bytes: int) -> None:
        """Absorb buffer space released by a drained neighbour (Sec 3.7)."""
        self.window_entries += max(0, extra_bytes // self.entry_size)

    def refill_op(self, tag: str, threads: int = 1):
        """Build the sequential read op for the next window."""
        if not self.needs_refill:
            raise SimulationError("refill_op called on a non-empty cursor")
        nbytes = min(self.window_entries * self.entry_size, self.file.size - self.pos)
        op = self.file.read(self.pos, nbytes, tag=tag, threads=threads)
        self.pos += nbytes
        self.bytes_loaded += nbytes
        return op

    def accept(self, data: np.ndarray) -> None:
        """Install the bytes returned by a refill op as the new window."""
        if data.size % self.entry_size:
            raise SimulationError("window is not a whole number of entries")
        self.window = data.reshape(-1, self.entry_size)

    # ------------------------------------------------------------------
    def last_key(self) -> np.ndarray:
        return self.window[-1, : self.key_size]

    def count_leq(self, bound: np.ndarray) -> int:
        """How many windowed entries have key <= bound (window is sorted)."""
        if self.window.shape[0] == 0:
            return 0
        return int(leq_mask(self.window[:, : self.key_size], bound).sum())

    def take(self, count: int) -> np.ndarray:
        taken = self.window[:count]
        self.window = self.window[count:]
        return taken


def merge_step(cursors: List[RunCursor]) -> Tuple[np.ndarray, int]:
    """Emit one batch of globally-safe entries from the cursor set.

    Preconditions: every non-done cursor has a non-empty window.
    Returns ``(entries, ways)`` where ``entries`` is a key-sorted matrix
    of emitted rows and ``ways`` the number of runs still participating
    (for merge-cost accounting).  Raises if nothing can be emitted
    (which the protocol makes impossible -- see below).
    """
    live = [c for c in cursors if c.window.shape[0]]
    if not live:
        return np.zeros((0, cursors[0].entry_size if cursors else 0), dtype=np.uint8), 0
    bounds = [c.last_key() for c in live if not c.file_exhausted]
    pieces = []
    if bounds:
        threshold = min_key(np.stack(bounds))
        for cursor in live:
            count = cursor.count_leq(threshold)
            if count:
                pieces.append(cursor.take(count))
    else:
        # Every file fully windowed: drain everything.
        for cursor in live:
            pieces.append(cursor.take(cursor.window.shape[0]))
    if not pieces:
        # Impossible: the cursor that defines the threshold always has
        # its whole window <= threshold.
        raise SimulationError("merge_step emitted nothing")
    merged = np.concatenate(pieces, axis=0)
    key_size = live[0].key_size
    order = key_sort_indices(merged[:, :key_size])
    return merged[order], len(live)


def redistribute_on_drain(cursors: List[RunCursor]) -> None:
    """Hand a freshly-drained cursor's buffer share to live neighbours.

    "the read buffer space allotted to this IndexMap will be transferred
    to a neighboring IndexMaps evenly" (Sec 3.7, step 9).
    """
    live = [c for c in cursors if not c.done]
    drained = [c for c in cursors if c.done and c.window_entries > 0]
    if not live or not drained:
        return
    freed_entries = sum(c.window_entries for c in drained)
    for c in drained:
        c.window_entries = 0
    share = ceil_div(freed_entries, len(live))
    for c in live:
        c.window_entries += share


def window_bytes_per_run(read_buffer: int, n_runs: int, entry_size: int) -> int:
    """Split the read buffer evenly among runs, aligned to entries."""
    if n_runs < 1:
        raise SimulationError("need at least one run")
    per_run = read_buffer // n_runs
    return max(entry_size, (per_run // entry_size) * entry_size)
