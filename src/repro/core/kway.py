"""K-way merge machinery shared by all merge-based sorting systems.

The merge phase of every system (external merge sort over record runs,
WiscSort/PMSort over IndexMap runs) follows the paper's cursor protocol
(Sec 3.7, steps 6-9): the read buffer is split evenly among the run
files, cursors track the current window of each run, exhausted windows
are refilled, and when a run drains its buffer share is redistributed.

For simulation efficiency the merge is executed in *batches* rather than
record-at-a-time: all windowed entries whose key is <= the smallest
"window-end" key across still-readable runs are globally safe to emit
(any unread entry of run *j* is >= the last key currently windowed from
run *j*).  Batching changes nothing about the output or the I/O pattern
-- it only aggregates the per-record CPU cost into one op.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.records.format import key_columns as _key_columns
from repro.records.format import key_sort_indices, key_words
from repro.sim.fluid import vector_enabled
from repro.storage.file import SimFile
from repro.units import ceil_div


class RunCursor:
    """Window over one sorted run file of fixed-size entries.

    The driver loop must uphold the protocol::

        while not cursor.done:
            if cursor.needs_refill:
                data = yield cursor.refill_op(tag, threads)
                cursor.accept(data)
            ...

    Hot-path note: installing a window (via :meth:`accept` or assigning
    ``cursor.window``) precomputes the window's big-endian uint64 key
    columns and its last key as Python ``bytes``.  ``count_leq`` then
    runs two-level binary search over the cached columns (the window is
    sorted) instead of re-deriving columns and scanning a boolean mask
    per call, and ``take`` advances an offset rather than reslicing.
    """

    def __init__(
        self,
        run_file: SimFile,
        entry_size: int,
        key_size: int,
        window_bytes: int,
    ):
        if entry_size < key_size:
            raise SimulationError("entry_size must be >= key_size")
        self.file = run_file
        self.entry_size = entry_size
        self.key_size = key_size
        self.window_entries = max(1, window_bytes // entry_size)
        self.pos = 0
        #: Set by :class:`_FrontierIndex` when it mirrors this cursor's
        #: windows: the scalar search caches (``_cols``, first/last key
        #: bytes) are then skipped on install and materialized lazily if
        #: a scalar consumer ever asks.
        self._index_owned = False
        self.window = np.zeros((0, entry_size), dtype=np.uint8)
        self.bytes_loaded = 0
        #: Entries consumed via :meth:`take` (checkpoint/recovery state).
        self.taken = 0

    # ------------------------------------------------------------------
    @property
    def window(self) -> np.ndarray:
        """Entries not yet taken from the current window (a view)."""
        if self._start:
            return self._window[self._start :]
        return self._window

    @window.setter
    def window(self, data: np.ndarray) -> None:
        self._window = data
        self._start = 0
        self._n = data.shape[0]
        if self._n and not self._index_owned:
            self._install_search_caches()
        else:
            self._cols = []
            self._first_bytes = None
            self._last_bytes = None

    def _install_search_caches(self) -> None:
        keys = self._window[:, : self.key_size]
        # Native-endian copies of the big-endian comparison columns:
        # identical numeric values, faster searchsorted.
        self._cols = [
            np.ascontiguousarray(c, dtype=np.uint64)
            for c in _key_columns(keys)
        ]
        self._first_bytes = keys[self._start].tobytes()
        self._last_bytes = keys[-1].tobytes()

    @property
    def remaining(self) -> int:
        """Entries left in the current window."""
        return self._n - self._start

    @property
    def file_exhausted(self) -> bool:
        return self.pos >= self.file.size

    @property
    def done(self) -> bool:
        return self.file_exhausted and self._n - self._start == 0

    @property
    def needs_refill(self) -> bool:
        return self._n - self._start == 0 and not self.file_exhausted

    def grow_window(self, extra_bytes: int) -> None:
        """Absorb buffer space released by a drained neighbour (Sec 3.7)."""
        self.window_entries += max(0, extra_bytes // self.entry_size)

    def refill_op(self, tag: str, threads: int = 1):
        """Build the sequential read op for the next window."""
        if not self.needs_refill:
            raise SimulationError("refill_op called on a non-empty cursor")
        nbytes = min(self.window_entries * self.entry_size, self.file.size - self.pos)
        op = self.file.read(self.pos, nbytes, tag=tag, threads=threads)
        self.pos += nbytes
        self.bytes_loaded += nbytes
        return op

    def accept(self, data: np.ndarray) -> None:
        """Install the bytes returned by a refill op as the new window."""
        if data.size % self.entry_size:
            raise SimulationError("window is not a whole number of entries")
        self.window = data.reshape(-1, self.entry_size)

    # ------------------------------------------------------------------
    def last_key(self) -> np.ndarray:
        return self.window[-1, : self.key_size]

    def count_leq(self, bound: np.ndarray) -> int:
        """How many windowed entries have key <= bound (window is sorted)."""
        return self._count_leq_words(key_words(bound))

    def _count_leq_words(self, bound_words: Tuple[int, ...]) -> int:
        """count_leq with the bound pre-split into uint64 words.

        Narrows the candidate band column by column: rows strictly below
        the bound word are counted; rows equal to it stay undecided and
        pass to the next column.  Exact unsigned-lexicographic count,
        O(cols * log n).
        """
        lo, hi = self._start, self._n
        if lo >= hi:
            return 0
        if not self._cols:
            # Index-owned cursor: caches were skipped on install;
            # materialize them for this scalar consumer.
            self._install_search_caches()
        less = 0
        for col, b in zip(self._cols, bound_words):
            seg = col[lo:hi]
            lt = int(seg.searchsorted(b, side="left"))
            r = int(seg.searchsorted(b, side="right"))
            less += lt
            lo, hi = lo + lt, lo + r
            if lo == hi:
                break
        return less + (hi - lo)

    def take(self, count: int) -> np.ndarray:
        start = self._start
        end = start + count
        self._start = end
        self.taken += count
        if end < self._n:
            self._first_bytes = self._window[end, : self.key_size].tobytes()
        return self._window[start:end]

    def skip_entries(self, count: int) -> None:
        """Crash-recovery resume: mark the first ``count`` file entries
        as already consumed.

        Must be called before the first refill (empty window); the next
        refill reads from the new position.  Entries that were merely
        *windowed* (prefetched) before a crash are volatile and simply
        re-read -- only ``taken`` counts, which the checkpoint recorded,
        are skipped.
        """
        nbytes = count * self.entry_size
        if self._n - self._start:
            raise SimulationError("skip_entries requires an empty window")
        if nbytes > self.file.size:
            raise SimulationError(
                f"cannot skip {count} entries past end of {self.file.name!r}"
            )
        self.pos = nbytes
        self.taken = count


def _frontier_step(
    live: List[RunCursor], exhausted_flags: Optional[dict] = None
) -> Tuple[np.ndarray, int, List[RunCursor]]:
    """Emit one batch of globally-safe entries from non-empty cursors.

    Precondition: every cursor in ``live`` has a non-empty window.
    Returns ``(entries, ways, emptied)`` -- the key-sorted emitted rows,
    the number of participating runs, and the cursors whose window the
    step drained (they need a refill, or are done if their file is
    exhausted).  ``exhausted_flags`` optionally maps cursors to a cached
    ``file_exhausted`` value so the property need not be re-evaluated
    every step.
    """
    if exhausted_flags is None:
        bounds = [c._last_bytes for c in live if not c.file_exhausted]
    else:
        bounds = [c._last_bytes for c in live if not exhausted_flags[c]]
    pieces = []
    emptied: List[RunCursor] = []
    if bounds:
        # Python bytes comparison is unsigned lexicographic, identical
        # to min_key over the stacked key rows (all bounds equal-width).
        threshold_bytes = min(bounds)
        threshold = key_words(threshold_bytes)
        for cursor in live:
            # A cursor contributes iff its window head is <= the
            # threshold; the bytes compare skips the binary search for
            # the (typical) majority of cursors that contribute nothing.
            if cursor._first_bytes > threshold_bytes:
                continue
            count = cursor._count_leq_words(threshold)
            if count:
                pieces.append(cursor.take(count))
                if cursor._start == cursor._n:
                    emptied.append(cursor)
    else:
        # Every file fully windowed: drain everything.
        for cursor in live:
            pieces.append(cursor.take(cursor.remaining))
            emptied.append(cursor)
    if not pieces:
        # Impossible: the cursor that defines the threshold always has
        # its whole window <= threshold.
        raise SimulationError("merge_step emitted nothing")
    merged = np.concatenate(pieces, axis=0)
    key_size = live[0].key_size
    order = key_sort_indices(merged[:, :key_size])
    return merged[order], len(live), emptied


def merge_step(cursors: List[RunCursor]) -> Tuple[np.ndarray, int]:
    """Emit one batch of globally-safe entries from the cursor set.

    Preconditions: every non-done cursor has a non-empty window.
    Returns ``(entries, ways)`` where ``entries`` is a key-sorted matrix
    of emitted rows and ``ways`` the number of runs still participating
    (for merge-cost accounting).  Raises if nothing can be emitted
    (which the protocol makes impossible).
    """
    live = [c for c in cursors if c.remaining]
    if not live:
        return np.zeros((0, cursors[0].entry_size if cursors else 0), dtype=np.uint8), 0
    emitted, ways, _emptied = _frontier_step(live)
    return emitted, ways


class _FrontierIndex:
    """Columnar mirror of every live window for batched frontier steps.

    One row per cursor: ``S`` is a ``(k, W)`` matrix of fixed-width
    ``S<key_size>`` byte strings (the window keys), ``E`` mirrors the
    raw window entries ``(k, W, entry_size)``, and k-vectors ``L`` /
    ``F`` track each row's last and current-head key.  numpy's bytes
    comparison (trailing-NUL-stripped lexicographic) is order- and
    equality-isomorphic to fixed-width unsigned lexicographic
    comparison: at the first differing byte position either both
    stripped strings still extend past it (same byte decides both
    compares) or exactly the NUL-holding side ended early (prefix <
    extension, same verdict).  A frontier step is therefore a handful of
    whole-array bytes compares -- threshold = min over ``L`` of the
    still-readable rows (cached between steps; it only changes on
    refill or drain), ``F <= threshold`` picks the contributing rows,
    ``S[rows] <= threshold`` gives the emit counts, and one
    segment-gather pulls every emitted entry (plus its sort key) out of
    the mirrors without a per-cursor Python loop.

    Bit-identity with :func:`_frontier_step` (asserted by the
    equivalence suite): per-row emit counts equal ``_count_leq_words``
    exactly (isomorphic predicate; already-taken rows are covered by
    threshold monotonicity -- the frontier threshold never decreases,
    so everything taken under an earlier threshold is ``<=`` the
    current one); pieces are gathered in ascending row order, which is
    the scalar path's ``live`` order (live-list filtering preserves
    construction order); and the final stable argsort over the gathered
    keys is the same permutation as the stable ``np.lexsort`` inside
    :func:`key_sort_indices` (same ordering and tie classes by the
    isomorphism, and both sorts are stable).

    The index owns its cursors' windows outright -- they skip their
    scalar search caches on install (see ``RunCursor._index_owned``).
    Only uniform fleets of plain :class:`RunCursor` qualify (subclasses
    may redefine window semantics); :class:`MergeFrontier` falls back
    to the scalar step otherwise or when ``REPRO_SIM_VECTOR=0``.
    """

    __slots__ = (
        "row_cursors",
        "k",
        "key_size",
        "sdtype",
        "entry_size",
        "width",
        "S",
        "E",
        "L",
        "F",
        "starts",
        "ns",
        "ready",
        "exhausted",
        "_threshold",
        "_tdirty",
    )

    def __init__(self, cursors: List[RunCursor]):
        self.row_cursors = list(cursors)
        self.k = len(self.row_cursors)
        first = self.row_cursors[0]
        self.key_size = first.key_size
        self.sdtype = np.dtype("S%d" % self.key_size)
        self.entry_size = first.entry_size
        width = 1
        for c in self.row_cursors:
            width = max(width, c._n)
        self.width = width
        k = self.k
        self.S = np.zeros((k, width), dtype=self.sdtype)
        self.E = np.zeros((k, width, self.entry_size), dtype=np.uint8)
        self.L = np.zeros(k, dtype=self.sdtype)
        self.F = np.zeros(k, dtype=self.sdtype)
        self.starts = np.zeros(k, dtype=np.int64)
        self.ns = np.zeros(k, dtype=np.int64)
        #: Rows with an installed window; unready live rows are awaiting
        #: their refill and never participate in a step (the driver
        #: protocol refills before stepping).
        self.ready = np.zeros(k, dtype=bool)
        self.exhausted = np.zeros(k, dtype=bool)
        #: Cached frontier threshold key (``None`` = drain-all); valid
        #: while ``_tdirty`` is clear -- the threshold depends only on
        #: last keys and exhaustion, which change on refill/death, not
        #: on takes.
        self._threshold: Optional[bytes] = None
        self._tdirty = True
        for i, c in enumerate(self.row_cursors):
            c._vrow = i
            c._index_owned = True
            if c._n:
                self.load_row(c)
            else:
                self.exhausted[i] = c.file_exhausted

    @staticmethod
    def eligible(cursors: List[RunCursor]) -> bool:
        if not cursors:
            return False
        first = cursors[0]
        return all(
            type(c) is RunCursor
            and c.key_size == first.key_size
            and c.entry_size == first.entry_size
            for c in cursors
        )

    def _grow(self, needed: int) -> None:
        new_width = max(needed, self.width * 2)
        fresh_s = np.zeros((self.k, new_width), dtype=self.sdtype)
        fresh_s[:, : self.width] = self.S
        self.S = fresh_s
        fresh_e = np.zeros((self.k, new_width, self.entry_size), dtype=np.uint8)
        fresh_e[:, : self.width] = self.E
        self.E = fresh_e
        self.width = new_width

    def load_row(self, c: RunCursor) -> None:
        """(Re)install a cursor's freshly accepted window into its row."""
        i = c._vrow
        n = c._n
        if n > self.width:
            self._grow(n)
        start = c._start
        keys = np.ascontiguousarray(c._window[:, : self.key_size])
        skeys = keys.reshape(-1).view(self.sdtype)
        self.S[i, :n] = skeys
        self.L[i] = skeys[n - 1]
        self.F[i] = skeys[start]
        self.E[i, :n] = c._window
        self.starts[i] = start
        self.ns[i] = n
        self.ready[i] = True
        self.exhausted[i] = c.file_exhausted
        self._tdirty = True

    def mark_dead(self, c: RunCursor) -> None:
        """Retire a drained cursor's row (zero rows emit nothing)."""
        i = c._vrow
        self.ready[i] = False
        self.exhausted[i] = True
        self.starts[i] = 0
        self.ns[i] = 0
        self._tdirty = True

    def _refresh_threshold(self) -> None:
        # Lexicographic min of the still-readable last keys.  ``None``
        # means every file is fully windowed (drain-all mode).  numpy
        # has no min-reduction for bytes dtypes, so take the Python min
        # over the (at most k) candidates.
        sel = self.ready & ~self.exhausted
        if sel.any():
            self._threshold = min(self.L[sel].tolist())
        else:
            self._threshold = None
        self._tdirty = False

    def step_batch(self) -> Tuple[np.ndarray, List[RunCursor]]:
        """One frontier step over the mirrors; see class docstring."""
        ns = self.ns
        starts = self.starts
        if self._tdirty:
            self._refresh_threshold()
        threshold = self._threshold
        if threshold is not None:
            # Contributing rows: installed window whose head key is <=
            # the threshold -- the matrix analogue of the scalar path's
            # ``_first_bytes > threshold_bytes`` skip.
            mask = self.F <= threshold
            mask &= self.ready
            rows = np.nonzero(mask)[0]
            if not rows.size:
                # Impossible under the driver protocol: the cursor that
                # defines the threshold always contributes its head.
                raise SimulationError("merge_step emitted nothing")
            # Emit counts for just those rows: entries with key <= the
            # threshold, counted by binary search over each sorted
            # mirrored row -- exactly _count_leq_words' predicate by
            # the isomorphism.  Entries before `starts` were taken
            # under an earlier (<=) threshold, so the count minus
            # `starts` is the number of fresh entries to take.
            S = self.S
            counts = [
                S[r, :n].searchsorted(threshold, side="right")
                for r, n in zip(rows.tolist(), ns[rows].tolist())
            ]
            lens = np.asarray(counts, dtype=np.int64) - starts[rows]
        else:
            # Every file fully windowed: drain everything left.
            rows = np.nonzero(self.ready)[0]
            if not rows.size:
                raise SimulationError("merge_step emitted nothing")
            lens = (ns - starts)[rows]
        s_arr = starts[rows]
        new_starts = s_arr + lens
        ns_r = ns[rows]
        # Cursor bookkeeping (replaces per-piece ``take`` calls).
        emptied: List[RunCursor] = []
        row_cursors = self.row_cursors
        ready = self.ready
        for r, s_new, n_row, cnt in zip(
            rows.tolist(), new_starts.tolist(), ns_r.tolist(), lens.tolist()
        ):
            c = row_cursors[r]
            c._start = s_new
            c.taken += cnt
            if s_new == n_row:
                # Await refill (or death): a drained row must not keep
                # feeding its stale last key into the threshold.
                ready[r] = False
                emptied.append(c)
        starts[rows] = new_starts
        if rows.size == 1:
            # Single contributing window: the slice is already sorted
            # (a stable sort would be the identity permutation).
            i = int(rows[0])
            s = int(s_arr[0])
            e = int(new_starts[0])
            if e < ns[i]:
                self.F[i] = self.S[i, e]
            return self.E[i, s:e].copy(), emptied
        # Segment-gather every emitted entry (and its sort key) out of
        # the mirrors in one shot: rows ascending, then window order --
        # identical to the scalar path's piece concatenation order.
        total = int(lens.sum())
        rep_rows = np.repeat(rows, lens)
        csum = np.cumsum(lens)
        within = np.arange(total, dtype=np.int64) - np.repeat(csum - lens, lens)
        pos = np.repeat(s_arr, lens) + within
        merged = self.E[rep_rows, pos]
        skeys = self.S[rep_rows, pos]
        # Refresh head keys of rows that still have entries windowed.
        open_mask = new_starts < ns_r
        alive = rows[open_mask]
        if alive.size:
            self.F[alive] = self.S[alive, new_starts[open_mask]]
        order = np.argsort(skeys, kind="stable")
        return merged[order], emptied


class MergeFrontier:
    """Incremental cursor bookkeeping for a k-way merge loop.

    The naive loop re-derives everything from the full cursor list every
    step -- ``any(not c.done)``, ``[c for c in cursors if
    c.needs_refill]``, the live filter inside :func:`merge_step` and two
    more filters inside :func:`redistribute_on_drain` -- which is O(k)
    property evaluations per emitted batch and dominates wide merges.
    The frontier tracks the same state transitions incrementally: a
    cursor only changes state when a step empties its window, so refill
    and drain sets fall out of :func:`_frontier_step` for free, and
    ``file_exhausted`` is evaluated once per refill instead of once per
    step.  Buffer-share redistribution on drain is applied identically
    to :func:`redistribute_on_drain`.
    """

    def __init__(self, cursors: List[RunCursor]):
        self.cursors = list(cursors)
        self.live = [c for c in self.cursors if not c.done]
        self.to_refill = [c for c in self.live if c.needs_refill]
        self._exhausted = {c: c.file_exhausted for c in self.live}
        # Cursors already done before the merge starts (empty run files)
        # still hold a buffer share; the reference loop hands it to the
        # survivors on its first redistribute call, i.e. after the first
        # step -- not before the first refill.
        self._initial_drained = [
            c for c in self.cursors if c.done and c.window_entries > 0
        ]
        #: Columnar batch index (vector path); ``None`` falls back to
        #: the scalar :func:`_frontier_step` -- non-uniform or
        #: subclassed cursor fleets, or ``REPRO_SIM_VECTOR=0``.
        self._index = (
            _FrontierIndex(self.live)
            if vector_enabled() and _FrontierIndex.eligible(self.live)
            else None
        )

    @property
    def done(self) -> bool:
        return not self.live

    def take_refills(self) -> List[RunCursor]:
        """Cursors whose window must be refilled before the next step."""
        refills, self.to_refill = self.to_refill, []
        return refills

    def note_refilled(self, cursors: List[RunCursor]) -> None:
        """Refresh cached exhaustion state after ``accept`` calls."""
        exhausted = self._exhausted
        index = self._index
        for c in cursors:
            exhausted[c] = c.file_exhausted
            if index is not None:
                index.load_row(c)

    def step(self) -> Tuple[np.ndarray, int]:
        """One merge step; updates refill/drain bookkeeping."""
        if self._index is not None:
            emitted, emptied = self._index.step_batch()
            ways = len(self.live)
        else:
            emitted, ways, emptied = _frontier_step(self.live, self._exhausted)
        newly_drained: List[RunCursor] = []
        for c in emptied:
            if self._exhausted[c]:
                newly_drained.append(c)
            else:
                self.to_refill.append(c)
        drained = self._initial_drained + newly_drained
        if newly_drained:
            dset = set(newly_drained)
            self.live = [c for c in self.live if c not in dset]
            for c in newly_drained:
                del self._exhausted[c]
                if self._index is not None:
                    self._index.mark_dead(c)
        if drained:
            if self.live:
                self._initial_drained = []
                # Same arithmetic as redistribute_on_drain: the freshly
                # drained cursors' buffer share moves to the survivors.
                freed_entries = sum(c.window_entries for c in drained)
                for c in drained:
                    c.window_entries = 0
                share = ceil_div(freed_entries, len(self.live))
                for c in self.live:
                    c.window_entries += share
        return emitted, ways


def redistribute_on_drain(cursors: List[RunCursor]) -> None:
    """Hand a freshly-drained cursor's buffer share to live neighbours.

    "the read buffer space allotted to this IndexMap will be transferred
    to a neighboring IndexMaps evenly" (Sec 3.7, step 9).
    """
    live = [c for c in cursors if not c.done]
    drained = [c for c in cursors if c.done and c.window_entries > 0]
    if not live or not drained:
        return
    freed_entries = sum(c.window_entries for c in drained)
    for c in drained:
        c.window_entries = 0
    share = ceil_div(freed_entries, len(live))
    for c in live:
        c.window_entries += share


def window_bytes_per_run(read_buffer: int, n_runs: int, entry_size: int) -> int:
    """Split the read buffer evenly among runs, aligned to entries."""
    if n_runs < 1:
        raise SimulationError("need at least one run")
    per_run = read_buffer // n_runs
    return max(entry_size, (per_run // entry_size) * entry_size)
