"""WiscSort core: the paper's primary contribution.

Public pieces:

* :class:`~repro.core.wiscsort.WiscSort` -- the BRAID-compliant external
  sort (OnePass / MergePass, Sec 3).
* :class:`~repro.core.klv_sort.WiscSortKLV` -- the variable-length-value
  variant (Sec 3.7.3).
* :class:`~repro.core.controller.ThreadPoolController` -- pool sizing
  from device calibration (Sec 3.4).
* :class:`~repro.core.base.SortConfig` / concurrency models (Fig 2).
"""

from repro.core.base import ConcurrencyModel, SortConfig, SortResult, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.indexmap import IndexMap
from repro.core.natural_runs import NaturalRunWiscSort, find_natural_runs, sortedness
from repro.core.wiscsort import WiscSort
from repro.core.klv_sort import WiscSortKLV

__all__ = [
    "ConcurrencyModel",
    "SortConfig",
    "SortResult",
    "SortSystem",
    "ThreadPoolController",
    "IndexMap",
    "NaturalRunWiscSort",
    "find_natural_runs",
    "sortedness",
    "WiscSort",
    "WiscSortKLV",
]
