"""IndexMap compression (paper Sec 5, future work).

"one could compress the IndexMap files before they are written to the
BRAID device ... Compression will be worthwhile only if the cost of
reads and decompression is smaller than that of compression and writes.
Compression also places new demands on the CPU."

We implement exactly that tradeoff: IndexMap runs are compressed with
zlib in fixed-entry *frames* (so the merge phase can still stream them
window-by-window), the real compressed bytes are written, and the CPU
cost of (de)compression is charged against the host model.
:func:`estimate_benefit` evaluates the paper's worthwhileness formula
for a given device and measured ratio, and the ablation benchmark
exercises it on both incompressible (uniform gensort) and compressible
(low-cardinality key) workloads.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.core.kway import RunCursor
from repro.device.host import HostModel
from repro.device.profile import DeviceProfile
from repro.errors import ConfigError, SimulationError
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@dataclass(frozen=True)
class CompressionModel:
    """Throughput/shape constants of the (de)compressor.

    Defaults approximate single-core zlib level 1 on key-pointer data.
    """

    compress_bw_per_core: float = 0.5 * GB
    decompress_bw_per_core: float = 1.5 * GB
    level: int = 1
    frame_entries: int = 4096

    def __post_init__(self):
        if not 1 <= self.level <= 9:
            raise ConfigError("zlib level must be in [1, 9]")
        if self.frame_entries < 1:
            raise ConfigError("frame_entries must be >= 1")

    def compress_seconds(self, nbytes: int) -> float:
        """Single-core CPU time to compress ``nbytes`` of input."""
        return nbytes / self.compress_bw_per_core

    def decompress_seconds(self, nbytes: int) -> float:
        """Single-core CPU time to decompress to ``nbytes`` of output."""
        return nbytes / self.decompress_bw_per_core


def estimate_benefit(
    profile: DeviceProfile,
    host: HostModel,
    model: CompressionModel,
    ratio: float,
    cores: int = 1,
) -> float:
    """Net simulated seconds saved per input byte by compressing a run.

    Positive means worthwhile.  A run file is written once and read once
    (run write + merge read); compression shrinks both transfers by
    ``1 - 1/ratio`` but costs CPU on both sides.  This is the paper's
    Sec 5 criterion made explicit.
    """
    if ratio <= 0:
        raise ConfigError("ratio must be positive")
    write_bw = profile.write.peak
    read_bw = profile.seq_read.peak
    saved_io = (1 - 1 / ratio) * (1 / write_bw + 1 / read_bw)
    cpu_cost = (
        model.compress_seconds(1) + model.decompress_seconds(1)
    ) / max(1, min(cores, host.ncores))
    return saved_io - cpu_cost


@dataclass
class FrameInfo:
    """Location of one compressed frame inside a run file."""

    offset: int
    compressed_bytes: int
    n_entries: int


class CompressedRunWriter:
    """Compress IndexMap bytes into frames and emit the write plan.

    The caller (WiscSort's run phase) performs the actual timed ops:
    one compute op for compression, one sequential write of the
    compressed payload.
    """

    def __init__(self, model: CompressionModel):
        self.model = model

    def build_frames(
        self, entry_bytes: np.ndarray, entry_size: int
    ) -> Tuple[np.ndarray, List[FrameInfo], float]:
        """Returns (payload, frame_table, achieved_ratio)."""
        if entry_bytes.size % entry_size:
            raise SimulationError("buffer is not a whole number of entries")
        n = entry_bytes.size // entry_size
        frames: List[FrameInfo] = []
        chunks: List[np.ndarray] = []
        offset = 0
        step = self.model.frame_entries
        raw = entry_bytes.tobytes()
        for start in range(0, n, step):
            stop = min(n, start + step)
            piece = raw[start * entry_size : stop * entry_size]
            comp = zlib.compress(piece, self.model.level)
            chunks.append(np.frombuffer(comp, dtype=np.uint8))
            frames.append(FrameInfo(offset, len(comp), stop - start))
            offset += len(comp)
        payload = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint8)
        )
        ratio = entry_bytes.size / payload.size if payload.size else 1.0
        return payload, frames, ratio


class CompressedRunCursor(RunCursor):
    """A RunCursor over a frame-compressed run file.

    ``refill_op`` reads the next whole frame; ``accept`` decompresses it
    (real zlib) and returns a compute op the driver must yield to charge
    the decompression cost.
    """

    def __init__(
        self,
        run_file: "SimFile",
        frames: List[FrameInfo],
        entry_size: int,
        key_size: int,
        machine: "Machine",
        model: CompressionModel,
    ):
        # window_bytes is irrelevant: frames define the window.
        super().__init__(run_file, entry_size, key_size, entry_size)
        self.frames = frames
        self.machine = machine
        self.model = model
        self._next_frame = 0

    @property
    def file_exhausted(self) -> bool:  # type: ignore[override]
        return self._next_frame >= len(self.frames)

    def refill_op(self, tag: str, threads: int = 1):
        if not self.needs_refill:
            raise SimulationError("refill_op called on a non-empty cursor")
        frame = self.frames[self._next_frame]
        self._next_frame += 1
        self.bytes_loaded += frame.compressed_bytes
        return self.file.read(
            frame.offset, frame.compressed_bytes, tag=tag, threads=threads
        )

    def accept(self, data: np.ndarray):  # type: ignore[override]
        raw = zlib.decompress(data.tobytes())
        self.window = np.frombuffer(raw, dtype=np.uint8).reshape(
            -1, self.entry_size
        ).copy()
        return self.machine.compute(
            self.model.decompress_seconds(len(raw)),
            tag="MERGE decompress",
            cores=1,
        )
