"""Shared sorting-system interface, configuration and results.

Every sorting system in the reproduction (WiscSort, external merge sort,
PMSort, sample sort) implements :class:`SortSystem` and is driven the
same way by tests, examples and benchmarks::

    machine = Machine(profile=pmem_profile())
    input_file = generate_dataset(machine, "input", 400_000)
    result = WiscSort(fmt).run(machine, input_file)
    print(result.total_time, result.phases)

Each run expects a *fresh* machine so phase statistics are attributable.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigError
from repro.units import MiB, fmt_seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


class ConcurrencyModel(enum.Enum):
    """The three concurrency mechanisms of the paper's Fig 2.

    * ``NO_SYNC`` (Fig 2a): every worker independently loops
      read-sort-write; no pool sizing, reads and writes overlap freely.
    * ``IO_OVERLAP`` (Fig 2b): thread-pool controller sizes read/write
      pools, but reads of the next batch overlap writes of the previous.
    * ``NO_IO_OVERLAP`` (Fig 2c): pool sizing *and* interference-aware
      scheduling -- reads and writes never overlap (WiscSort's choice).
    """

    NO_SYNC = "no-sync"
    IO_OVERLAP = "io-overlap"
    NO_IO_OVERLAP = "no-io-overlap"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class SortConfig:
    """Tunables shared by all sorting systems.

    Buffer defaults mirror the paper's setup scaled by the same factor
    as record counts (10 GB read / 5 GB write buffers -> 10 MB / 5 MB).
    ``None`` thread counts defer to the thread-pool controller.
    """

    read_buffer: int = 10 * MiB
    write_buffer: int = 5 * MiB
    concurrency: ConcurrencyModel = ConcurrencyModel.NO_IO_OVERLAP
    read_threads: Optional[int] = None
    write_threads: Optional[int] = None
    sort_cores: Optional[int] = None
    validate: bool = True

    def __post_init__(self):
        if self.read_buffer < 4096 or self.write_buffer < 4096:
            raise ConfigError("buffers must be at least 4 KiB")
        for name in ("read_threads", "write_threads", "sort_cores"):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ConfigError(f"{name} must be >= 1 or None")


@dataclass
class SortResult:
    """Outcome of one sorting run on one machine."""

    system: str
    total_time: float
    phases: Dict[str, float]
    internal_read: float
    internal_written: float
    user_read: float
    user_written: float
    output_name: str
    n_records: int
    validated: bool
    extras: Dict[str, float] = field(default_factory=dict)

    def phase(self, tag: str) -> float:
        """Busy time of one phase tag (0.0 when the phase never ran)."""
        return self.phases.get(tag, 0.0)

    def summary(self) -> str:
        parts = ", ".join(
            f"{tag}={fmt_seconds(t)}" for tag, t in self.phases.items()
        )
        return f"{self.system}: total={fmt_seconds(self.total_time)} ({parts})"


class SortSystem(ABC):
    """Base class: orchestrates a run and harvests machine statistics."""

    #: Human-readable system name (overridden per subclass/instance).
    name: str = "abstract-sort"

    @abstractmethod
    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        """Run the sort; returns the output file.

        Implementations spawn simulated processes on ``machine`` and run
        the engine to completion.
        """

    def _validate(
        self, machine: "Machine", input_file: "SimFile", output_file: "SimFile"
    ) -> int:
        """Check output correctness; returns the record count."""
        raise NotImplementedError

    def _execute_recover(
        self, machine: "Machine", input_file: "SimFile"
    ) -> "SimFile":
        """Resume after a crash from the last durable checkpoint.

        Only checkpoint-enabled systems implement this; the default
        refuses (nothing durable exists to resume from).
        """
        raise NotImplementedError(f"{self.name} does not support recovery")

    def run(
        self,
        machine: "Machine",
        input_file: "SimFile",
        validate: bool = True,
    ) -> SortResult:
        """Execute the sort and package timing/traffic results."""
        return self._drive_and_harvest(machine, input_file, validate, recover=False)

    def recover(
        self,
        machine: "Machine",
        input_file: "SimFile",
        validate: bool = True,
    ) -> SortResult:
        """Resume an interrupted sort after :meth:`Machine.reboot`.

        Replays the checkpoint manifest, discards torn state, redoes
        only lost work, and packages results exactly like :meth:`run`.
        Because device statistics survive reboots, phase times and
        traffic in the result cover the *entire* workload including
        pre-crash and redone work; ``extras`` carries the
        salvaged-vs-redone byte accounting of this recovery.
        """
        return self._drive_and_harvest(machine, input_file, validate, recover=True)

    def _drive_and_harvest(
        self,
        machine: "Machine",
        input_file: "SimFile",
        validate: bool,
        recover: bool,
    ) -> SortResult:
        t0 = machine.now
        read0 = machine.stats.bytes_read_internal
        written0 = machine.stats.bytes_written_internal
        # Root tracing span; ``trace_span`` is a no-op context manager
        # on untraced machines (and clusters duck-typed as machines).
        with machine.trace_span(f"sort:{self.name}", cat="sort", recover=recover):
            if recover:
                output_file = self._execute_recover(machine, input_file)
            else:
                output_file = self._execute(machine, input_file)
            n_records = (
                self._validate(machine, input_file, output_file) if validate else -1
            )
        phases = {
            tag: stats.busy_time for tag, stats in machine.stats.tag_table()
        }
        user_read = sum(
            s.user_bytes
            for t, s in machine.stats.tags.items()
            if "read" in t.lower()
        )
        user_written = sum(
            s.user_bytes
            for t, s in machine.stats.tags.items()
            if "write" in t.lower()
        )
        result = SortResult(
            system=self.name,
            total_time=machine.now - t0,
            phases=phases,
            internal_read=machine.stats.bytes_read_internal - read0,
            internal_written=machine.stats.bytes_written_internal - written0,
            user_read=user_read,
            user_written=user_written,
            output_name=output_file.name,
            n_records=n_records,
            validated=validate,
        )
        metrics = getattr(self, "last_recovery", None)
        if recover and metrics:
            result.extras.update(metrics)
            if machine.faults is not None:
                machine.faults.stats.salvaged_bytes += int(
                    metrics.get("salvaged_bytes", 0)
                )
                machine.faults.stats.redone_bytes += int(
                    metrics.get("redone_bytes", 0)
                )
        return result
