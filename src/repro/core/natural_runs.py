"""Natural-run detection (Sec 6 related work: MONTRES-NVM, NVMSorting).

"They detect naturally sorted portions of the data set which are
ignored during the run generation phase to reduce the total number of
writes.  These natural runs are merged on the fly during MERGE phase."
The paper notes WiscSort is orthogonal to this idea and that combining
them could further help -- this module does the combining.

:class:`NaturalRunWiscSort` behaves like WiscSort MergePass, but any
run-generation chunk whose keys are already non-decreasing is *not*
sorted and *no IndexMap file is written* for it: during the merge phase
a :class:`NaturalRunCursor` windows the chunk's keys directly from the
input file with strided gathers, synthesising pointers on the fly.
On fully or mostly presorted inputs this eliminates most RUN-phase
writes and MERGE-phase IndexMap reads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.core.indexmap import IndexMap
from repro.core.kway import RunCursor
from repro.core.wiscsort import WiscSort
from repro.device.profile import Pattern
from repro.errors import SimulationError
from repro.records.format import keys_ascending
from repro.registry import register_system

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.file import SimFile


def find_natural_runs(keys: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal non-decreasing segments of a key sequence.

    Returns half-open ``(start, stop)`` row ranges covering all rows.
    """
    n = keys.shape[0]
    if n == 0:
        return []
    from repro.records.format import key_columns

    cols = key_columns(keys)
    descents = np.zeros(n - 1, dtype=bool)
    undecided = np.ones(n - 1, dtype=bool)
    for col in cols:
        left, right = col[:-1], col[1:]
        descents |= undecided & (left > right)
        undecided &= left == right
    boundaries = np.flatnonzero(descents) + 1
    edges = [0, *boundaries.tolist(), n]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def sortedness(keys: np.ndarray) -> float:
    """Fraction of adjacent pairs already in order (1.0 = fully sorted)."""
    n = keys.shape[0]
    if n <= 1:
        return 1.0
    runs = find_natural_runs(keys)
    in_order = sum(stop - start - 1 for start, stop in runs)
    return in_order / (n - 1)


class NaturalRunCursor(RunCursor):
    """Merge cursor over a presorted input region -- no run file.

    Windows are filled by strided key gathers directly from the input
    file; pointers are synthesised from the region's record positions,
    so the emitted entries are byte-compatible with IndexMap entries.
    """

    def __init__(
        self,
        input_file: "SimFile",
        first_record: int,
        n_records: int,
        record_size: int,
        key_size: int,
        pointer_size: int,
        window_bytes: int,
    ):
        entry_size = key_size + pointer_size
        super().__init__(input_file, entry_size, key_size, window_bytes)
        self.first_record = first_record
        self.n_records = n_records
        self.record_size = record_size
        self.pointer_size = pointer_size
        self._consumed = 0  # records already windowed

    @property
    def file_exhausted(self) -> bool:  # type: ignore[override]
        return self._consumed >= self.n_records

    def refill_op(self, tag: str, threads: int = 1):
        if not self.needs_refill:
            raise SimulationError("refill_op called on a non-empty cursor")
        count = min(self.window_entries, self.n_records - self._consumed)
        start_record = self.first_record + self._consumed
        self._pending_start = start_record
        self._pending_count = count
        self._consumed += count
        self.bytes_loaded += count * self.key_size
        return self.file.read_strided(
            offset=start_record * self.record_size,
            count=count,
            stride=self.record_size,
            access_size=self.key_size,
            tag=tag,
            threads=threads,
        )

    def accept(self, keys: np.ndarray):  # type: ignore[override]
        imap = IndexMap.for_fixed_records(
            keys, self._pending_start, self.record_size, self.pointer_size
        )
        self.window = imap.to_bytes().reshape(-1, self.entry_size)
        return None


@register_system("wiscsort-natural")
class NaturalRunWiscSort(WiscSort):
    """WiscSort MergePass with natural-run elision.

    During run generation each chunk's gathered keys are checked for
    sortedness (a cheap linear scan, charged as touch work).  Presorted
    chunks skip the in-memory sort and the IndexMap write; at merge time
    they are windowed straight from the input.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.name = self.name.replace("wiscsort[", "wiscsort-nr[")
        self.natural_chunks = 0
        self.sorted_chunks = 0
        self._natural_regions: List[Tuple[int, int]] = []

    # -- run phase ------------------------------------------------------
    def _run_phase(self, machine, input_file, controller, n, chunk):
        fmt = self.fmt
        write_pool = controller.write_threads()
        read_pool = controller.read_threads(Pattern.RAND)
        run_names: List[str] = []
        self._natural_regions = []
        for i, first in enumerate(range(0, n, chunk)):
            count = min(chunk, n - first)
            keys = yield input_file.read_strided(
                offset=first * fmt.record_size,
                count=count,
                stride=fmt.record_size,
                access_size=fmt.key_size,
                tag="RUN read",
                threads=read_pool,
            )
            # Sortedness check: one linear pass over the chunk's keys.
            yield machine.compute(
                machine.host.touch_seconds(count), tag="RUN read",
                cores=controller.sort_cores(),
            )
            if keys_ascending(keys):
                self.natural_chunks += 1
                self._natural_regions.append((first, count))
                continue
            self.sorted_chunks += 1
            imap = IndexMap.for_fixed_records(
                keys, first, fmt.record_size, fmt.pointer_size
            )
            yield machine.sort_compute(
                count, tag="RUN sort", cores=controller.sort_cores()
            )
            run_name = f"{self.output_name}.indexmap.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            yield run_file.write(
                0, imap.sorted().to_bytes(), tag="RUN write", threads=write_pool
            )
        return run_names

    # -- merge phase ----------------------------------------------------
    def _merge_cursors(self, machine, run_names, window):
        fmt = self.fmt
        cursors: List[RunCursor] = [
            RunCursor(
                machine.fs.open(name), fmt.index_entry_size, fmt.key_size, window
            )
            for name in run_names
        ]
        for first, count in self._natural_regions:
            cursors.append(
                NaturalRunCursor(
                    self._input_file,
                    first,
                    count,
                    fmt.record_size,
                    fmt.key_size,
                    fmt.pointer_size,
                    window,
                )
            )
        return cursors

    def _merge_pass(self, machine, input_file, output, controller, n, chunk):
        self._input_file = input_file
        run_names = yield from self._run_phase(
            machine, input_file, controller, n, chunk
        )
        if not run_names and not self._natural_regions:
            return
        yield from self._merge_phase(
            machine, input_file, output, controller, run_names
        )
        for name in run_names:
            machine.fs.delete(name)

    def _merge_phase(self, machine, input_file, output, controller, run_names):
        # Reuse the parent merge loop but with mixed cursor types: patch
        # by temporarily overriding cursor construction.
        from repro.core.kway import window_bytes_per_run

        fmt = self.fmt
        k = len(run_names) + len(self._natural_regions)
        if k == 0:
            return
        window = window_bytes_per_run(
            self.config.read_buffer, k, fmt.index_entry_size
        )
        cursors = self._merge_cursors(machine, run_names, window)
        yield from self._merge_loop(machine, input_file, output, controller, cursors)
