"""WiscSort for variable-length values (paper Sec 3.7.3).

Two changes versus the fixed-size algorithm:

* the IndexMap gains a value-length attribute: entries are
  ``(key, pointer, vlength)``, with the pointer addressing the *value*
  bytes in the input file;
* RUN read is **serial**: value lengths are only discovered by reading
  each record's header, so one reader thread walks the file ("this
  restriction is shared by other sorting algorithms as well").

Value gathers in the RECORD-read steps use variable-size random reads
partitioned over the gather pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.base import SortConfig, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.indexmap import IndexMap
from repro.core.kway import (
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.core.scheduler import pipelined_batches, run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import RecordFormatError
from repro.records.klv import KLVFormat
from repro.records.validate import validate_sorted_klv
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


def scan_klv_headers(
    stream: np.ndarray, fmt: KLVFormat
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Walk a KLV stream; returns (keys, value_offsets, vlens).

    The walk is inherently serial: the next header's position depends on
    the current value length.
    """
    stream = np.ascontiguousarray(stream, dtype=np.uint8).reshape(-1)
    keys: List[np.ndarray] = []
    offsets: List[int] = []
    lengths: List[int] = []
    pos = 0
    total = stream.size
    shifts = [8 * i for i in range(fmt.len_size)]
    while pos < total:
        if pos + fmt.header_size > total:
            raise RecordFormatError(f"truncated KLV header at {pos}")
        keys.append(stream[pos : pos + fmt.key_size])
        length = 0
        for i, shift in enumerate(shifts):
            length |= int(stream[pos + fmt.key_size + i]) << shift
        pos += fmt.header_size
        if pos + length > total:
            raise RecordFormatError(f"truncated KLV value at {pos}")
        offsets.append(pos)
        lengths.append(length)
        pos += length
    if not keys:
        return (
            np.zeros((0, fmt.key_size), dtype=np.uint8),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    return (
        np.stack(keys),
        np.asarray(offsets, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
    )


def reencode_klv(
    keys: np.ndarray, vlens: np.ndarray, values_flat: np.ndarray, fmt: KLVFormat
) -> np.ndarray:
    """Rebuild a KLV stream from sorted keys + gathered value bytes."""
    n = keys.shape[0]
    pieces: List[np.ndarray] = []
    cursor = 0
    for i in range(n):
        header = np.empty(fmt.header_size, dtype=np.uint8)
        header[: fmt.key_size] = keys[i]
        length = int(vlens[i])
        for j in range(fmt.len_size):
            header[fmt.key_size + j] = (length >> (8 * j)) & 0xFF
        pieces.append(header)
        pieces.append(values_flat[cursor : cursor + length])
        cursor += length
    if not pieces:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(pieces)


class WiscSortKLV(SortSystem):
    """WiscSort over Key-Length-Value encoded variable-size records."""

    def __init__(
        self,
        fmt: Optional[KLVFormat] = None,
        config: Optional[SortConfig] = None,
        force_merge_pass: bool = False,
        merge_chunk_entries: Optional[int] = None,
        output_name: str = "wiscsort-klv.out",
    ):
        self.fmt = fmt if fmt is not None else KLVFormat()
        self.config = config if config is not None else SortConfig()
        self.force_merge_pass = force_merge_pass
        self.merge_chunk_entries = merge_chunk_entries
        self.output_name = output_name
        self.used_merge_pass: Optional[bool] = None
        self.name = f"wiscsort-klv[{self.config.concurrency}]"

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_klv(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        controller = ThreadPoolController(machine, self.config)
        output = machine.fs.create(self.output_name)
        machine.run(
            self._drive(machine, input_file, output, controller),
            name="wiscsort-klv",
        )
        return output

    # ------------------------------------------------------------------
    def _serial_scan(self, machine, input_file, first_byte: int, nbytes: int):
        """Serially read headers across ``[first_byte, first_byte+nbytes)``.

        The device streams the extent sequentially with one thread; only
        the header bytes cross the memory bus.
        """
        fmt = self.fmt
        with machine.fs.unaudited("KLV header scan, charged via io_raw below"):
            data = input_file.peek(first_byte, nbytes)  # reprolint: disable=DEV001 -- charged via the io_raw scan op below
        keys, offsets, vlens = scan_klv_headers(data, fmt)
        work = machine.profile.io_work(Pattern.SEQ, nbytes)
        op = machine.io_raw(
            work,
            "read",
            Pattern.SEQ,
            user_bytes=len(keys) * fmt.header_size,
            tag="RUN read",
            threads=1,
        )
        yield op
        yield machine.compute(
            machine.host.touch_seconds(len(keys)), tag="RUN read", cores=1
        )
        return IndexMap(
            keys=keys,
            pointers=offsets + first_byte,
            pointer_size=fmt.pointer_size,
            vlens=vlens,
            len_size=fmt.len_size,
        )

    def _batches_by_bytes(self, imap: IndexMap) -> List[IndexMap]:
        """Split a sorted IndexMap so each batch's output fits the buffer."""
        fmt = self.fmt
        limit = self.config.write_buffer
        batches: List[IndexMap] = []
        start = 0
        acc = 0
        for i in range(len(imap)):
            rec_bytes = fmt.header_size + int(imap.vlens[i])
            if acc + rec_bytes > limit and i > start:
                batches.append(imap.slice(start, i))
                start = i
                acc = 0
            acc += rec_bytes
        if start < len(imap):
            batches.append(imap.slice(start, len(imap)))
        return batches

    def _drive(self, machine, input_file, output, controller):
        fmt = self.fmt
        config = self.config
        # --- RUN phase: serial header scans -> sorted IndexMap chunks.
        full_map = yield from self._serial_scan(machine, input_file, 0, input_file.size)
        n = len(full_map)
        if n == 0:
            return
        map_bytes = n * full_map.entry_size
        chunk = self._plan_chunk(machine, n, map_bytes)
        self.used_merge_pass = chunk < n
        if not self.used_merge_pass:
            yield machine.sort_compute(n, tag="RUN sort", cores=controller.sort_cores())
            yield from self._emit(machine, input_file, output, controller, full_map.sorted())
            return
        # MergePass: sort and persist IndexMap runs chunk by chunk.
        run_names: List[str] = []
        write_pool = controller.write_threads()
        for i, start in enumerate(range(0, n, chunk)):
            part = full_map.slice(start, min(n, start + chunk))
            yield machine.sort_compute(
                len(part), tag="RUN sort", cores=controller.sort_cores()
            )
            run_name = f"{self.output_name}.indexmap.{i}"
            run_file = machine.fs.create(run_name)
            run_names.append(run_name)
            yield run_file.write(
                0, part.sorted().to_bytes(), tag="RUN write", threads=write_pool
            )
        yield from self._merge(machine, input_file, output, controller, run_names)
        for name in run_names:
            machine.fs.delete(name)

    def _plan_chunk(self, machine, n: int, map_bytes: int) -> int:
        if machine.dram.would_fit(map_bytes + self.config.write_buffer) and not self.force_merge_pass:
            return n
        if self.merge_chunk_entries is not None:
            return max(1, min(self.merge_chunk_entries, n - 1))
        entry = self.fmt.index_entry_size
        if machine.dram.budget is not None:
            # Chunk IndexMaps fill the DRAM cap, as in the fixed-size sort.
            avail = machine.dram.available or 0
            return max(1, min(avail // entry, n - 1))
        return max(1, ceil_div(n, 4))

    def _emit(self, machine, input_file, output, controller, imap: IndexMap):
        """Gather values batch-by-batch and write the sorted KLV stream."""
        fmt = self.fmt
        gather_pool = controller.read_threads(Pattern.RAND)
        write_pool = controller.write_threads()
        batches = self._batches_by_bytes(imap)

        def produce(batch: IndexMap):
            return input_file.read_gather_var(
                batch.pointers, batch.vlens, tag="RECORD read", threads=gather_pool
            )

        def consume(batch: IndexMap, values_flat):
            stream = reencode_klv(batch.keys, batch.vlens, values_flat, fmt)
            # append: safe because each batch's write op is created only
            # after the previous one has been applied to the file.
            return output.append(stream, tag="RUN write", threads=write_pool)

        yield from pipelined_batches(
            machine, self.config.concurrency, batches, produce, consume
        )

    def _merge(self, machine, input_file, output, controller, run_names):
        fmt = self.fmt
        entry = fmt.index_entry_size
        k = len(run_names)
        window = window_bytes_per_run(self.config.read_buffer, k, entry)
        cursors = [
            RunCursor(machine.fs.open(name), entry, fmt.key_size, window)
            for name in run_names
        ]
        read_pool = controller.read_threads(Pattern.SEQ)
        pending: List[IndexMap] = []
        pending_bytes = 0

        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            if refills:
                per_op = max(1, read_pool // len(refills))
                ops = [c.refill_op(tag="MERGE read", threads=per_op) for c in refills]
                datas = yield from run_ops_parallel(machine, ops)
                for cursor, data in zip(refills, datas):
                    cursor.accept(data)
            emitted, ways = merge_step(cursors)
            if emitted.shape[0]:
                yield machine.compute(
                    machine.host.merge_compare_seconds(emitted.shape[0], ways),
                    tag="MERGE other",
                    cores=1,
                )
                part = IndexMap.from_bytes(
                    emitted.reshape(-1), fmt.key_size, fmt.pointer_size, fmt.len_size
                )
                pending.append(part)
                pending_bytes += int(part.vlens.sum()) + len(part) * fmt.header_size
                if pending_bytes >= self.config.write_buffer:
                    merged = _concat_indexmaps(pending, fmt)
                    pending, pending_bytes = [], 0
                    yield from self._emit(machine, input_file, output, controller, merged)
            redistribute_on_drain(cursors)
        if pending:
            merged = _concat_indexmaps(pending, fmt)
            yield from self._emit(machine, input_file, output, controller, merged)


def _concat_indexmaps(parts: List[IndexMap], fmt: KLVFormat) -> IndexMap:
    return IndexMap(
        keys=np.concatenate([p.keys for p in parts]),
        pointers=np.concatenate([p.pointers for p in parts]),
        pointer_size=fmt.pointer_size,
        vlens=np.concatenate([p.vlens for p in parts]),
        len_size=fmt.len_size,
    )
