"""WiscSort: BRAID-compliant external sorting (paper Sec 3).

The algorithm follows Fig 3's data-flow exactly:

OnePass (IndexMap fits in DRAM):
  1. *RUN read*    -- strided gather of keys, pointers generated on the fly
  2. *RUN sort*    -- concurrent in-place sort of the IndexMap
  3. *RECORD read* -- concurrent random reads of values into the write buffer
  4. *RUN write*   -- sequential flush of the write buffer to the output

MergePass (IndexMap exceeds DRAM):
  1-2 as above per chunk, then
  5. *RUN write*   -- persist each sorted IndexMap chunk as a run file
  6. *MERGE read*  -- window the IndexMap files into the read buffer
  7. *MERGE other* -- find minima, enqueue pointers on the offset queue
  8. *RECORD read* -- batch-gather values once the offset queue fills
  9. *MERGE write* -- flush the write buffer to the output

Reads and writes never overlap under the default NO_IO_OVERLAP model;
the IO_OVERLAP and NO_SYNC variants exist to reproduce Fig 7's ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.base import ConcurrencyModel, SortConfig, SortSystem
from repro.core.controller import ThreadPoolController
from repro.core.indexmap import IndexMap
from repro.core.kway import (
    MergeFrontier,
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.core.recovery import (
    CheckpointLog,
    pack_entries,
    unpack_entries,
)
from repro.core.scheduler import pipelined_batches, run_ops_parallel
from repro.device.profile import Pattern
from repro.errors import ConfigError, RecoveryError
from repro.records.format import RecordFormat
from repro.records.validate import validate_sorted_file
from repro.registry import register_system
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.storage.file import SimFile


@register_system("wiscsort")
class WiscSort(SortSystem):
    """The paper's sorting system for fixed-size records."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        force_merge_pass: bool = False,
        merge_chunk_entries: Optional[int] = None,
        output_name: str = "wiscsort.out",
        compression: Optional["CompressionModel"] = None,
        checkpoint: bool = False,
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        self.force_merge_pass = force_merge_pass
        self.merge_chunk_entries = merge_chunk_entries
        self.output_name = output_name
        #: Optional Sec 5 extension: compress IndexMap run files.
        self.compression = compression
        #: Crash-consistent checkpointing (see repro.core.recovery): the
        #: sort persists a manifest after every durable milestone and can
        #: resume via :meth:`recover` after a simulated crash.  Off by
        #: default -- with it off the op stream is identical to earlier
        #: builds.
        self.checkpoint = checkpoint
        self._ckpt: Optional[CheckpointLog] = None
        self._inter_seq = 0
        #: Salvaged-vs-redone accounting of the last ``recover()`` call.
        self.last_recovery: dict = {}
        self._run_frames: dict = {}
        self.achieved_compression_ratio: Optional[float] = None
        self.used_merge_pass: Optional[bool] = None
        #: Number of merge phases M of the last run (0 for OnePass).
        self.merge_passes: int = 0
        mode = "merge" if force_merge_pass else "auto"
        self.name = f"wiscsort[{self.config.concurrency}:{mode}]"

    # ------------------------------------------------------------------
    def _validate(self, machine, input_file, output_file) -> int:
        return validate_sorted_file(input_file, output_file, self.fmt)

    def _execute(self, machine: "Machine", input_file: "SimFile") -> "SimFile":
        gen, output, name = self._prepare(machine, input_file)
        machine.run(gen, name=name)
        return output

    def _prepare(self, machine: "Machine", input_file: "SimFile"):
        """Plan the sort without driving the engine.

        Returns ``(generator, output_file, process_name)``.  The split
        lets a standalone run drive the generator via ``machine.run``
        while an already-running engine (cluster shards, the job
        scheduler) spawns it as a child process instead -- the engine
        cannot be re-entered from inside a simulated process.
        """
        fmt = self.fmt
        if input_file.size % fmt.record_size:
            raise ConfigError(
                f"input size {input_file.size} not a multiple of record size"
            )
        n = input_file.size // fmt.record_size
        if n > fmt.max_addressable_records():
            raise ConfigError(
                f"{n} records exceed {fmt.pointer_size}-byte pointer range"
            )
        self._check_checkpoint_config()
        controller = ThreadPoolController(machine, self.config)
        output = machine.fs.create(self.output_name)
        self._ckpt = (
            CheckpointLog(machine.fs, self._manifest_name())
            if self.checkpoint
            else None
        )
        self._inter_seq = 0
        chunk = self._plan_chunk(machine, n)
        self.used_merge_pass = chunk < n
        if not self.used_merge_pass:
            gen = self._one_pass(machine, input_file, output, controller, n)
            name = "wiscsort-onepass"
        else:
            gen = self._merge_pass(machine, input_file, output, controller, n, chunk)
            name = "wiscsort-mergepass"
        return gen, output, name

    def sort_process(self, machine: "Machine", input_file: "SimFile"):
        """Run the whole sort as one simulated process (yield from).

        For callers that already own a running engine: cluster shards
        sorting concurrently, or scheduler-admitted jobs.  Returns the
        output file as the process result.
        """
        gen, output, _name = self._prepare(machine, input_file)
        yield from gen
        return output

    def _manifest_name(self) -> str:
        return f"{self.output_name}.manifest"

    def _check_checkpoint_config(self) -> None:
        if not self.checkpoint:
            return
        if self.compression is not None:
            raise ConfigError(
                "checkpointing is incompatible with IndexMap compression "
                "(run-file sizes are no longer predictable, so torn runs "
                "cannot be told apart from complete ones)"
            )
        if self.config.concurrency is not ConcurrencyModel.NO_IO_OVERLAP:
            raise ConfigError(
                "checkpointing requires the no-io-overlap concurrency "
                "model: a checkpoint must only commit after the writes it "
                "describes are durable"
            )

    def _plan_chunk(self, machine: "Machine", n: int) -> int:
        """Entries per IndexMap chunk; == n selects OnePass."""
        if n == 0:
            return 0
        entry = self.fmt.index_entry_size
        full_map = n * entry
        # The paper's criterion: OnePass iff the whole IndexMap fits in
        # the available DRAM (Sec 3.6 / 4.1 -- buffers are accounted
        # separately from the 20 GB IndexMap cap).
        fits = machine.dram.would_fit(full_map)
        if fits and not self.force_merge_pass:
            return n
        if self.merge_chunk_entries is not None:
            chunk = self.merge_chunk_entries
        elif machine.dram.budget is not None:
            # Same criterion as the OnePass check: each chunk's IndexMap
            # fills the DRAM cap (buffers are accounted separately).
            avail = machine.dram.available or 0
            chunk = max(1, avail // entry)
        else:
            chunk = ceil_div(n, 4)
        return max(1, min(chunk, max(1, n - 1) if self.force_merge_pass else n))

    # ------------------------------------------------------------------
    # OnePass
    # ------------------------------------------------------------------
    def _one_pass(self, machine, input_file, output, controller, n: int,
                  start_records: int = 0):
        fmt = self.fmt
        if n == 0:
            return
        with machine.trace_span("phase:onepass", records=n):
            imap = yield from self._load_sorted_chunk(
                machine, input_file, controller, first_record=0, count=n
            )
            yield from self._scatter_gather_out(
                machine, input_file, output, controller, imap,
                skip_records=start_records,
            )
            if self._ckpt is not None:
                yield from self._ckpt.save({"phase": "done"})

    def _load_sorted_chunk(self, machine, input_file, controller, first_record, count):
        """Steps 1-2: strided key gather + concurrent in-place sort."""
        fmt = self.fmt
        read_pool = controller.read_threads(Pattern.RAND)
        with machine.trace_span(
            "run", cat="chunk", first=first_record, records=count
        ):
            keys = yield input_file.read_strided(
                offset=first_record * fmt.record_size,
                count=count,
                stride=fmt.record_size,
                access_size=fmt.key_size,
                tag="RUN read",
                threads=read_pool,
            )
            # Pointer generation on the fly (Sec 3.7 step 1).
            yield machine.compute(
                machine.host.touch_seconds(count),
                tag="RUN read",
                cores=controller.sort_cores(),
            )
            imap = IndexMap.for_fixed_records(
                keys, first_record, fmt.record_size, fmt.pointer_size
            )
            yield machine.sort_compute(
                count, tag="RUN sort", cores=controller.sort_cores()
            )
        return imap.sorted()

    def _scatter_gather_out(self, machine, input_file, output, controller,
                            imap, skip_records: int = 0):
        """Steps 3-4: batched random value gathers + sequential writes.

        ``skip_records`` supports crash recovery: output batches below it
        are already durable and are not regenerated (write-minimising
        recovery -- the cheap key gather and sort are redone, the
        expensive value writes are not).
        """
        fmt = self.fmt
        batch_records = max(1, self.config.write_buffer // fmt.record_size)
        gather_pool = controller.read_threads(Pattern.RAND)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        n = len(imap)
        starts = [s for s in range(0, n, batch_records) if s >= skip_records]

        def produce(start):
            part = imap.slice(start, min(n, start + batch_records))
            return input_file.read_gather(
                part.pointers, fmt.record_size, tag="RECORD read",
                threads=gather_pool,
            )

        def consume(start, data):
            offset = start * fmt.record_size
            return output.write(
                offset, data.reshape(-1), tag="RUN write", threads=write_pool
            )

        with machine.trace_span("phase:output", batches=len(starts)):
            if self._ckpt is not None:
                # Checkpointed OnePass: strictly sequential (NO_IO_OVERLAP
                # is enforced), one manifest commit per durable output
                # batch.
                for start in starts:
                    data = yield produce(start)
                    yield consume(start, data)
                    yield from self._ckpt.save(
                        {
                            "phase": "onepass",
                            "out_records": min(n, start + batch_records),
                            "n_records": n,
                        }
                    )
                return
            yield from pipelined_batches(machine, model, starts, produce, consume)

    # ------------------------------------------------------------------
    # MergePass
    # ------------------------------------------------------------------
    def _merge_pass(self, machine, input_file, output, controller, n, chunk):
        run_names = yield from self._run_phase(
            machine, input_file, controller, n, chunk
        )
        yield from self._merge_tail(
            machine, input_file, output, controller, run_names
        )

    def _merge_tail(self, machine, input_file, output, controller, run_names):
        """Intermediate merge rounds + the final value-gathering merge.

        Entered both by a normal MergePass run (after the run phase) and
        by crash recovery (with the manifest's surviving run set).
        """
        from repro.core.multipass import grouped, max_fanin, merge_rounds

        # Multiple merge phases (Sec 2.1) when the IndexMap run count
        # exceeds the read buffer's fan-in.  Intermediate phases merge
        # *entries only* -- values are gathered exactly once, in the
        # final phase, which is key-value separation's second dividend.
        fanin = max_fanin(self.config.read_buffer, self.fmt.index_entry_size)
        self.merge_passes = merge_rounds(len(run_names), fanin)
        if len(run_names) > fanin:
            with machine.trace_span(
                "phase:intermediate-merge", runs=len(run_names), fanin=fanin
            ):
                while len(run_names) > fanin:
                    next_names: List[str] = []
                    groups = list(grouped(run_names, fanin))
                    for gi, group in enumerate(groups):
                        if len(group) == 1:
                            next_names.append(group[0])
                            continue
                        inter_name = self._next_inter_name(machine.fs)
                        machine.fs.create(inter_name)
                        yield from self._merge_entries_to(
                            machine, machine.fs.open(inter_name), controller,
                            group,
                        )
                        next_names.append(inter_name)
                        if self._ckpt is not None:
                            # Commit the new live set *before* deleting
                            # the merged inputs: a crash in between
                            # leaves both, and recovery discards
                            # whatever the manifest disowns.
                            live = next_names + [
                                nm for g in groups[gi + 1 :] for nm in g
                            ]
                            yield from self._ckpt.save(
                                {"phase": "intermediate", "run_names": live}
                            )
                        for name in group:
                            machine.fs.delete(name)
                    run_names = next_names
        if self._ckpt is not None:
            yield from self._ckpt.save(
                {
                    "phase": "merge",
                    "run_names": list(run_names),
                    "out_records": 0,
                    "consumed": [0] * len(run_names),
                    "residual": "",
                }
            )
        yield from self._merge_phase(
            machine, input_file, output, controller, run_names
        )
        for name in run_names:
            machine.fs.delete(name)
        if self._ckpt is not None:
            yield from self._ckpt.save({"phase": "done"})

    def _next_inter_name(self, fs) -> str:
        """A fresh intermediate-run name (never reused across recoveries,
        so a torn intermediate file can't collide with a survivor)."""
        self._inter_seq += 1
        name = f"{self.output_name}.indexmerge.{self._inter_seq}"
        while fs.exists(name):
            self._inter_seq += 1
            name = f"{self.output_name}.indexmerge.{self._inter_seq}"
        return name

    def _merge_entries_to(self, machine, out_file, controller, run_names):
        """Intermediate merge phase: merge IndexMap runs entry-wise.

        No value gathering happens here -- only key-pointer entries
        stream through the read buffer and out to the intermediate run.
        """
        fmt = self.fmt
        entry = fmt.index_entry_size
        window = window_bytes_per_run(self.config.read_buffer, len(run_names), entry)
        cursors = [self._make_cursor(machine, name, window) for name in run_names]
        read_pool = controller.read_threads(Pattern.SEQ)
        write_pool = controller.write_threads()
        flush_bytes = self.config.write_buffer
        pending: List[np.ndarray] = []
        pending_bytes = 0
        while any(not c.done for c in cursors):
            refills = [c for c in cursors if c.needs_refill]
            if refills:
                per_op = max(1, read_pool // len(refills))
                ops = [c.refill_op(tag="MERGE read", threads=per_op) for c in refills]
                datas = yield from run_ops_parallel(machine, ops)
                cpu_ops = []
                for cursor, data in zip(refills, datas):
                    cpu_op = cursor.accept(data)
                    if cpu_op is not None:
                        cpu_ops.append(cpu_op)
                if cpu_ops:
                    yield from run_ops_parallel(machine, cpu_ops)
            emitted, ways = merge_step(cursors)
            if emitted.shape[0]:
                yield machine.compute(
                    machine.host.merge_compare_seconds(emitted.shape[0], ways),
                    tag="MERGE other",
                    cores=1,
                )
                pending.append(emitted)
                pending_bytes += emitted.size
                if pending_bytes >= flush_bytes:
                    flat = np.concatenate(pending, axis=0)
                    pending, pending_bytes = [], 0
                    yield out_file.append(
                        flat.reshape(-1), tag="MERGE write", threads=write_pool
                    )
            redistribute_on_drain(cursors)
        if pending:
            flat = np.concatenate(pending, axis=0)
            yield out_file.append(
                flat.reshape(-1), tag="MERGE write", threads=write_pool
            )

    def _make_cursor(self, machine, name, window):
        """A cursor for one IndexMap run, compressed or plain."""
        fmt = self.fmt
        entry = fmt.index_entry_size
        if self.compression is not None and name in self._run_frames:
            from repro.core.compression import CompressedRunCursor

            return CompressedRunCursor(
                machine.fs.open(name),
                self._run_frames[name],
                entry,
                fmt.key_size,
                machine,
                self.compression,
            )
        return RunCursor(machine.fs.open(name), entry, fmt.key_size, window)

    def _run_phase(self, machine, input_file, controller, n, chunk):
        """Steps 1, 2 and 5 repeated per chunk."""
        fmt = self.fmt
        write_pool = controller.write_threads()
        run_names: List[str] = []
        firsts = list(range(0, n, chunk))
        model = self.config.concurrency
        pending_write = None
        with machine.trace_span("phase:run-generation", chunks=len(firsts)):
            for i, first in enumerate(firsts):
                count = min(chunk, n - first)
                imap = yield from self._load_sorted_chunk(
                    machine, input_file, controller, first, count
                )
                run_name = f"{self.output_name}.indexmap.{i}"
                run_file = machine.fs.create(run_name)
                run_names.append(run_name)
                payload = imap.to_bytes()
                if self.compression is not None:
                    from repro.core.compression import CompressedRunWriter

                    writer = CompressedRunWriter(self.compression)
                    raw_bytes = payload.size
                    payload, frames, ratio = writer.build_frames(
                        payload, fmt.index_entry_size
                    )
                    self._run_frames[run_name] = frames
                    self.achieved_compression_ratio = ratio
                    yield machine.compute(
                        self.compression.compress_seconds(raw_bytes),
                        tag="RUN compress",
                        cores=controller.sort_cores(),
                    )
                write_op = run_file.write(
                    0, payload, tag="RUN write", threads=write_pool
                )
                if model is not ConcurrencyModel.NO_IO_OVERLAP:
                    # IO_OVERLAP: deliberately overlap this chunk's
                    # IndexMap write with the next chunk's key gather.
                    # NO_SYNC: uncoordinated workers overlap phases the
                    # same way (straggler writes under neighbour reads).
                    from repro.sim.engine import Join, Spawn
                    from repro.core.scheduler import _op_runner

                    if pending_write is not None:
                        yield Join(pending_write)
                    pending_write = yield Spawn(_op_runner(write_op), "imap-write")
                else:
                    yield write_op
                    if self._ckpt is not None:
                        yield from self._ckpt.save(
                            {
                                "phase": "run",
                                "runs_done": len(run_names),
                                "n_runs": len(firsts),
                            }
                        )
            if pending_write is not None:
                from repro.sim.engine import Join

                yield Join(pending_write)
        return run_names

    def _merge_phase(self, machine, input_file, output, controller, run_names,
                     resume=None):
        """Steps 6-9: cursor merge + offset queue + batched gathers.

        ``resume`` (crash recovery) carries the last committed merge
        checkpoint: per-run consumed entry counts, durable output record
        count and the taken-but-unflushed residual entries.
        """
        fmt = self.fmt
        entry = fmt.index_entry_size
        k = len(run_names)
        window = window_bytes_per_run(self.config.read_buffer, k, entry)
        cursors = [self._make_cursor(machine, name, window) for name in run_names]
        if resume is not None:
            for cursor, consumed in zip(cursors, resume["consumed"]):
                cursor.skip_entries(consumed)
        with machine.trace_span("phase:final-merge", fanin=k):
            yield from self._merge_loop(
                machine, input_file, output, controller, cursors,
                run_names=run_names, resume=resume,
            )

    def _merge_loop(self, machine, input_file, output, controller, cursors,
                    run_names=None, resume=None):
        """The cursor-driven merge over any mix of run cursors."""
        fmt = self.fmt
        entry = fmt.index_entry_size
        read_pool = controller.read_threads(Pattern.SEQ)
        gather_pool = controller.read_threads(Pattern.RAND)
        write_pool = controller.write_threads()
        model = self.config.concurrency
        queue_capacity = max(1, self.config.write_buffer // fmt.record_size)
        pending_entries: List[np.ndarray] = []
        pending_count = 0
        out_offset = 0
        if resume is not None:
            residual = unpack_entries(resume["residual"], entry)
            if residual.shape[0]:
                pending_entries = [residual]
                pending_count = residual.shape[0]
            out_offset = resume["out_records"] * fmt.record_size

        def flush_batches(final: bool):
            """Generator: drain full offset-queue batches to the output."""
            nonlocal pending_entries, pending_count, out_offset
            while pending_count >= queue_capacity or (final and pending_count):
                take = queue_capacity if pending_count >= queue_capacity else pending_count
                flat = np.concatenate(pending_entries, axis=0)
                batch, rest = flat[:take], flat[take:]
                pending_entries = [rest] if rest.shape[0] else []
                pending_count = rest.shape[0]
                imap = IndexMap.from_bytes(
                    batch.reshape(-1), fmt.key_size, fmt.pointer_size
                )
                gather_op = input_file.read_gather(
                    imap.pointers, fmt.record_size, tag="RECORD read",
                    threads=gather_pool,
                )
                write_at = out_offset
                out_offset += take * fmt.record_size

                if model is ConcurrencyModel.NO_IO_OVERLAP:
                    data = yield gather_op
                    yield output.write(
                        write_at, data.reshape(-1), tag="MERGE write",
                        threads=write_pool,
                    )
                    if self._ckpt is not None and run_names is not None:
                        # Consistent snapshot: per-cursor consumption
                        # covers both the durable output and the residual
                        # (taken-but-unflushed) entries saved alongside.
                        rest_flat = (
                            np.concatenate(pending_entries, axis=0)
                            if pending_entries
                            else np.zeros((0, entry), dtype=np.uint8)
                        )
                        yield from self._ckpt.save(
                            {
                                "phase": "merge",
                                "run_names": list(run_names),
                                "out_records": out_offset // fmt.record_size,
                                "consumed": [c.taken for c in cursors],
                                "residual": pack_entries(rest_flat),
                            }
                        )
                elif model is ConcurrencyModel.IO_OVERLAP:
                    data = yield gather_op
                    write_op = output.write(
                        write_at, data.reshape(-1), tag="MERGE write",
                        threads=write_pool,
                    )
                    # Write proceeds while the loop returns to produce
                    # the next batch; collected by the caller.
                    from repro.core.scheduler import _op_runner
                    from repro.sim.engine import Spawn

                    proc = yield Spawn(_op_runner(write_op), "merge-write")
                    overlap_writes.append(proc)
                else:  # NO_SYNC: gather and write the same batch overlap
                    data = gather_op.on_complete(gather_op)
                    gather_op.on_complete = None
                    write_op = output.write(
                        write_at, data.reshape(-1), tag="MERGE write",
                        threads=write_pool,
                    )
                    yield from run_ops_parallel(machine, [gather_op, write_op])

        overlap_writes: List = []
        # The frontier replaces the per-iteration O(k) cursor scans
        # (done/needs_refill/redistribute filters) with incremental
        # bookkeeping; the op sequence it produces is identical.
        frontier = MergeFrontier(cursors)
        while not frontier.done:
            refills = frontier.take_refills()
            if refills:
                per_op_threads = max(1, read_pool // len(refills))
                ops = [
                    c.refill_op(tag="MERGE read", threads=per_op_threads)
                    for c in refills
                ]
                datas = yield from run_ops_parallel(machine, ops)
                cpu_ops = []
                for cursor, data in zip(refills, datas):
                    cpu_op = cursor.accept(data)
                    if cpu_op is not None:
                        cpu_ops.append(cpu_op)
                if cpu_ops:
                    # Frame decompression (compressed IndexMap runs only).
                    yield from run_ops_parallel(machine, cpu_ops)
                frontier.note_refilled(refills)
            emitted, ways = frontier.step()
            if emitted.shape[0] == 0:
                continue
            # Step 7: single-threaded min-finding / enqueueing cost.
            yield machine.compute(
                machine.host.merge_compare_seconds(emitted.shape[0], ways),
                tag="MERGE other",
                cores=1,
            )
            pending_entries.append(emitted)
            pending_count += emitted.shape[0]
            yield from flush_batches(final=False)
        yield from flush_batches(final=True)
        if overlap_writes:
            from repro.sim.engine import Join

            yield Join(overlap_writes)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _execute_recover(self, machine: "Machine", input_file: "SimFile"):
        """Resume after a :class:`~repro.errors.SimulatedCrash`.

        Loads the last committed manifest, classifies every on-device
        artifact as salvageable (complete per the durability rules in
        DESIGN.md) or torn (discarded and redone), and re-enters the sort
        at the furthest checkpointed point.  Repeated crashes during
        recovery are safe: every path below is itself checkpointed.
        """
        if not self.checkpoint:
            raise RecoveryError(
                f"{self.name}: recovery requires checkpoint=True"
            )
        self._check_checkpoint_config()
        fmt = self.fmt
        fs = machine.fs
        n = input_file.size // fmt.record_size
        controller = ThreadPoolController(machine, self.config)
        output = (
            fs.open(self.output_name)
            if fs.exists(self.output_name)
            else fs.create(self.output_name)
        )
        self._ckpt = CheckpointLog(fs, self._manifest_name())
        state = self._ckpt.load()
        # Same machine configuration => same OnePass/MergePass decision
        # and chunking as the crashed run.
        chunk = self._plan_chunk(machine, n)
        self.used_merge_pass = chunk < n
        self.last_recovery = metrics = {
            "salvaged_bytes": 0,
            "redone_bytes": 0,
            "salvaged_runs": 0,
            "redone_runs": 0,
        }
        machine.run(
            self._recover_driver(
                machine, input_file, output, controller, n, chunk, state, metrics
            ),
            name="wiscsort-recover",
        )
        return output

    def _recover_driver(self, machine, input_file, output, controller, n,
                        chunk, state, metrics):
        with machine.trace_span(
            "phase:recover", checkpoint=state.get("phase") if state else None
        ):
            yield from self._recover_body(
                machine, input_file, output, controller, n, chunk, state,
                metrics,
            )

    def _recover_body(self, machine, input_file, output, controller, n,
                      chunk, state, metrics):
        fmt = self.fmt
        fs = machine.fs
        phase = state.get("phase") if state else None
        if phase == "done":
            # Crashed after the sort completed (e.g. during validation):
            # the whole output is durable.
            metrics["salvaged_bytes"] += output.size
            return
        if not self.used_merge_pass:
            out_records = state["out_records"] if phase == "onepass" else 0
            keep = out_records * fmt.record_size
            if output.size > keep:
                metrics["redone_bytes"] += output.size - keep
                output.truncate(keep)
            metrics["salvaged_bytes"] += keep
            yield from self._one_pass(
                machine, input_file, output, controller, n,
                start_records=out_records,
            )
            return
        if phase == "merge":
            run_names = state["run_names"]
            metrics["redone_bytes"] += self._drop_strays(fs, run_names)
            keep = state["out_records"] * fmt.record_size
            if output.size > keep:
                metrics["redone_bytes"] += output.size - keep
                output.truncate(keep)
            metrics["salvaged_bytes"] += keep
            for name in run_names:
                metrics["salvaged_bytes"] += fs.open(name).size
            metrics["salvaged_runs"] += len(run_names)
            resume = {
                "consumed": state["consumed"],
                "out_records": state["out_records"],
                "residual": state.get("residual", ""),
            }
            yield from self._merge_phase(
                machine, input_file, output, controller, run_names,
                resume=resume,
            )
            for name in run_names:
                fs.delete(name)
            yield from self._ckpt.save({"phase": "done"})
            return
        if phase == "intermediate":
            run_names = state["run_names"]
            metrics["redone_bytes"] += self._drop_strays(fs, run_names)
            if output.size:
                metrics["redone_bytes"] += output.size
                output.truncate(0)
            for name in run_names:
                metrics["salvaged_bytes"] += fs.open(name).size
            metrics["salvaged_runs"] += len(run_names)
            yield from self._merge_tail(
                machine, input_file, output, controller, run_names
            )
            return
        # phase is "run" or None: salvage complete IndexMap runs by their
        # expected exact size (torn writes are strict prefixes, so a
        # full-size run file is known complete) and rebuild the rest.
        entry = fmt.index_entry_size
        if output.size:
            metrics["redone_bytes"] += output.size
            output.truncate(0)
        firsts = list(range(0, n, chunk))
        run_names: List[str] = []
        write_pool = controller.write_threads()
        for i, first in enumerate(firsts):
            count = min(chunk, n - first)
            name = f"{self.output_name}.indexmap.{i}"
            expected = count * entry
            run_names.append(name)
            if fs.exists(name) and fs.open(name).size == expected:
                metrics["salvaged_bytes"] += expected
                metrics["salvaged_runs"] += 1
                continue
            if fs.exists(name):
                metrics["redone_bytes"] += fs.open(name).size
                fs.delete(name)
            metrics["redone_bytes"] += expected
            metrics["redone_runs"] += 1
            imap = yield from self._load_sorted_chunk(
                machine, input_file, controller, first, count
            )
            run_file = fs.create(name)
            yield run_file.write(
                0, imap.to_bytes(), tag="RUN write", threads=write_pool
            )
            yield from self._ckpt.save(
                {"phase": "run", "runs_done": i + 1, "n_runs": len(firsts)}
            )
        yield from self._merge_tail(
            machine, input_file, output, controller, run_names
        )

    def _drop_strays(self, fs, live) -> int:
        """Delete artifacts the manifest disowns (torn intermediates,
        already-merged inputs whose delete didn't happen before the
        crash).  Returns the byte total dropped."""
        keep = set(live)
        keep.update(
            (self.output_name, self._manifest_name(), self._ckpt.tmp_name)
        )
        prefix = self.output_name + "."
        dropped = 0
        for name in list(fs.list()):
            if name.startswith(prefix) and name not in keep:
                dropped += fs.open(name).size
                fs.delete(name)
        return dropped


@register_system("wiscsort-merge")
def _wiscsort_forced_merge(
    fmt: Optional[RecordFormat] = None, config: Optional[SortConfig] = None
) -> WiscSort:
    """WiscSort with MergePass forced regardless of DRAM headroom."""
    return WiscSort(fmt, config=config, force_merge_pass=True)
