"""Thread-pool controller (paper Sec 3.4).

Determines the pool size for each operation class from device
calibration.  On the paper's PMEM testbed this resolves to 16-32 read
threads and ~5 write threads; on other BRAID devices the controller
adapts automatically because it consumes measured scaling curves, not
hard-coded constants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.calibrate.microbench import CalibrationResult, calibrate_device
from repro.core.base import ConcurrencyModel, SortConfig
from repro.device.profile import Pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


class ThreadPoolController:
    """Pool-size oracle for one machine's device.

    ``NO_SYNC`` runs bypass the controller by design (Fig 2a): pools are
    *uncontrolled* -- every operation uses as many threads as there are
    cores, which is exactly what hurts on devices whose write bandwidth
    degrades beyond a few threads.
    """

    def __init__(self, machine: "Machine", config: SortConfig):
        self.machine = machine
        self.config = config
        self.calibration: CalibrationResult = calibrate_device(
            machine.profile, machine.host
        )

    # ------------------------------------------------------------------
    def read_threads(self, pattern: Pattern = Pattern.SEQ) -> int:
        """Pool size for reads of the given access pattern."""
        if self.config.concurrency is ConcurrencyModel.NO_SYNC:
            return self.machine.host.ncores
        if self.config.read_threads is not None:
            return self.config.read_threads
        if pattern is Pattern.SEQ:
            return self.calibration.seq_read.best_threads
        return self.calibration.rand_read.best_threads

    def write_threads(self) -> int:
        """Pool size for writes (PMEM: small -- writes do not scale)."""
        if self.config.concurrency is ConcurrencyModel.NO_SYNC:
            return self.machine.host.ncores
        if self.config.write_threads is not None:
            return self.config.write_threads
        return self.calibration.write.best_threads

    def sort_cores(self) -> int:
        """Cores used by in-memory sorting."""
        if self.config.sort_cores is not None:
            return self.config.sort_cores
        return self.machine.host.ncores

    def describe(self) -> str:
        return (
            f"pools(device={self.calibration.device_name}): "
            f"seq-read={self.read_threads(Pattern.SEQ)}, "
            f"rand-read={self.read_threads(Pattern.RAND)}, "
            f"write={self.write_threads()}, sort={self.sort_cores()}"
        )


class WritePoolArbiter:
    """Per-device write admission for cross-shard shuffles (Sec 3.4 at
    cluster scale).

    Each destination device gets one calibrated write pool; concurrent
    source shards pushing partitions to the same destination must take
    that device's slot before writing, so a device never sees more than
    its controller-chosen write-thread count -- the single-machine
    write-pool discipline, extended across shards.
    """

    def __init__(self, cluster):
        self._cluster = cluster
        self._slots = {}
        self._controllers = {}
        for shard in cluster.shards:
            self._admit(shard)

    def _admit(self, shard) -> None:
        controller = ThreadPoolController(shard, self._cluster.config)
        self._controllers[shard.domain] = controller
        self._slots[shard.domain] = shard.semaphore(
            1, name=f"write-pool:{shard.domain}", reason="write-slot"
        )

    def ensure(self, domain: str) -> None:
        """Late-admit a shard that joined after construction (elastic
        scale-out): build its controller and write slot on first use."""
        if domain not in self._slots:
            self._admit(self._cluster.shard_by_domain(domain))

    def write_threads(self, domain: str) -> int:
        """The destination device's calibrated write-pool size."""
        return self._controllers[domain].write_threads()

    def controller(self, domain: str) -> ThreadPoolController:
        return self._controllers[domain]

    def acquire(self, domain: str):
        """Yieldable acquire of the destination device's write slot."""
        return self._slots[domain].acquire()

    def release(self, domain: str) -> None:
        self._slots[domain].release()
