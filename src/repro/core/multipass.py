"""Multi-phase merge planning.

"large amounts of data or small DRAM sizes may necessitate multiple
merge phases since a record from each run file might not fit in
available memory" (paper Sec 2.1); external merge sort produces
``(1 + M)`` times the dataset in device traffic, with M merge phases
(Sec 2.4.1, M = 1 in dominant cases).

The fan-in of one merge phase is bounded by how many run windows the
read buffer can hold while staying efficient: below a minimum window
size, every refill is a tiny read and cursor overhead dominates.  When
the run count exceeds the fan-in, runs are merged in groups into
intermediate runs, repeatedly, until one final phase remains.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.errors import ConfigError

#: Smallest useful per-run window, in entries.
MIN_WINDOW_ENTRIES = 16


def max_fanin(read_buffer: int, entry_size: int) -> int:
    """How many runs one merge phase can window at once."""
    if entry_size < 1:
        raise ConfigError("entry_size must be >= 1")
    fanin = read_buffer // (entry_size * MIN_WINDOW_ENTRIES)
    return max(2, fanin)


def merge_rounds(n_runs: int, fanin: int) -> int:
    """Number of merge phases M needed for ``n_runs`` at ``fanin``."""
    if fanin < 2:
        raise ConfigError("fanin must be >= 2")
    if n_runs <= 1:
        return min(1, n_runs)
    rounds = 0
    while n_runs > 1:
        n_runs = -(-n_runs // fanin)
        rounds += 1
    return rounds


def grouped(names: Sequence[str], fanin: int) -> Iterator[List[str]]:
    """Split run names into consecutive groups of at most ``fanin``."""
    for start in range(0, len(names), fanin):
        yield list(names[start : start + fanin])
