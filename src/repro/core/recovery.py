"""Crash-consistent checkpoint manifests for resumable sorts.

The durability protocol is the classic write-ahead rename dance:

1. serialise the checkpoint payload (JSON) behind a self-validating
   header -- magic, body length, SHA-256 of the body;
2. write it to ``<manifest>.tmp`` as a *timed* device write (checkpoint
   overhead is visible in phase timings under the ``CKPT write`` tag);
3. atomically :meth:`~repro.storage.filesystem.SimFS.rename` the temp
   file over the live manifest name.

A crash can therefore leave (a) no manifest, (b) the previous manifest,
or (c) the new manifest -- never a torn mixture; a torn ``.tmp`` is
ignored on recovery.  Data files referenced by a manifest were written
*before* the manifest committed, and because simulated torn writes are
strict prefixes, a referenced file whose size matches its manifest entry
is known complete.

Payloads are small dicts keyed by ``phase`` (``run`` / ``intermediate``
/ ``merge`` / ``onepass`` / ``done``); each sorting system defines its
own schema -- see :class:`repro.core.wiscsort.WiscSort` and
:class:`repro.baselines.external_merge_sort.ExternalMergeSort`.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.filesystem import SimFS

_MAGIC = b"WSCKPT1\n"
_HEADER = len(_MAGIC) + 8 + 32  # magic + u64 body length + sha256


def encode_manifest(payload: dict) -> np.ndarray:
    """Serialise ``payload`` with the self-validating header."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    header = (
        _MAGIC
        + len(body).to_bytes(8, "little")
        + hashlib.sha256(body).digest()
    )
    return np.frombuffer(header + body, dtype=np.uint8)


def decode_manifest(data: np.ndarray) -> dict:
    """Parse and verify manifest bytes; raises :class:`RecoveryError`."""
    raw = bytes(bytearray(data))
    if len(raw) < _HEADER or not raw.startswith(_MAGIC):
        raise RecoveryError("manifest header missing or truncated")
    length = int.from_bytes(raw[len(_MAGIC) : len(_MAGIC) + 8], "little")
    digest = raw[len(_MAGIC) + 8 : _HEADER]
    body = raw[_HEADER : _HEADER + length]
    if len(body) != length:
        raise RecoveryError("manifest body truncated")
    if hashlib.sha256(body).digest() != digest:
        raise RecoveryError("manifest checksum mismatch")
    try:
        payload = json.loads(body.decode())
    except ValueError as exc:
        raise RecoveryError(f"manifest is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise RecoveryError("manifest payload is not an object")
    return payload


class CheckpointLog:
    """One live manifest on a simulated filesystem.

    ``save`` is a generator (the manifest write is a timed device op);
    drive it with ``yield from`` inside a simulated process.  ``load``
    and ``discard`` are metadata operations and run untimed.
    """

    TAG = "CKPT write"

    def __init__(self, fs: "SimFS", name: str, write_threads: int = 1):
        self.fs = fs
        self.name = name
        self.tmp_name = name + ".tmp"
        self.write_threads = write_threads

    def save(self, payload: dict):
        """Durably replace the manifest with ``payload`` (generator)."""
        encoded = encode_manifest(payload)
        if self.fs.exists(self.tmp_name):
            self.fs.delete(self.tmp_name)
        tmp = self.fs.create(self.tmp_name)
        yield tmp.write(0, encoded, tag=self.TAG, threads=self.write_threads)
        self.fs.rename(self.tmp_name, self.name)

    def load(self) -> Optional[dict]:
        """The last committed payload, or None if nothing ever committed.

        A leftover torn ``.tmp`` from a crash mid-save is deleted.
        """
        if self.fs.exists(self.tmp_name):
            self.fs.delete(self.tmp_name)
        if not self.fs.exists(self.name):
            return None
        # Recovery-time metadata read, like scanning a superblock during
        # boot: deliberately untimed (and audit-exempt) by design.
        with self.fs.unaudited("manifest load during recovery"):
            return decode_manifest(self.fs.open(self.name).peek())  # reprolint: disable=DEV001 -- untimed boot-time metadata read by design

    def discard(self) -> None:
        """Remove the manifest (end of a successfully completed sort)."""
        for name in (self.tmp_name, self.name):
            if self.fs.exists(name):
                self.fs.delete(name)


def pack_entries(entries: np.ndarray) -> str:
    """Hex-encode residual (taken-but-unflushed) entries for a manifest."""
    return bytes(bytearray(np.ascontiguousarray(entries).reshape(-1))).hex()


def unpack_entries(text: str, entry_size: int) -> np.ndarray:
    """Inverse of :func:`pack_entries`; returns an (n, entry_size) matrix."""
    raw = bytes.fromhex(text)
    if len(raw) % entry_size:
        raise RecoveryError("residual entries are not a whole entry multiple")
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, entry_size).copy()
