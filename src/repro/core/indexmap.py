"""The IndexMap: WiscSort's key-pointer (and optionally value-length) runs.

"Each key read has a pointer associated with it to represent the file
offset of the record.  We call this key-pointer combination an *index*
and the list of key-pointers an *IndexMap*." (Sec 3.3)

Pointers are little-endian unsigned integers of ``pointer_size`` bytes
(5 by default: 2^40 record offsets).  For KLV datasets each entry also
carries the value length (Sec 3.7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import RecordFormatError
from repro.records.format import key_sort_indices


def _encode_uints(values: np.ndarray, width: int) -> np.ndarray:
    """Pack int64 values into ``(n, width)`` little-endian bytes."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size and (values.min() < 0 or int(values.max()) >= 1 << (8 * width)):
        raise RecordFormatError(
            f"value out of range for {width}-byte encoding"
        )
    as_u64 = values.astype("<u8")
    return as_u64.view(np.uint8).reshape(-1, 8)[:, :width].copy()


def _decode_uints(raw: np.ndarray) -> np.ndarray:
    """Unpack ``(n, width)`` little-endian bytes into int64 values."""
    n, width = raw.shape
    padded = np.zeros((n, 8), dtype=np.uint8)
    padded[:, :width] = raw
    return padded.view("<u8").reshape(n).astype(np.int64)


@dataclass
class IndexMap:
    """A (possibly sorted) collection of key/pointer[/vlen] entries."""

    keys: np.ndarray  # (n, key_size) uint8
    pointers: np.ndarray  # (n,) int64 byte offsets into the input file
    pointer_size: int = 5
    vlens: Optional[np.ndarray] = None  # (n,) int64, KLV only
    len_size: int = 0

    def __post_init__(self):
        if self.keys.ndim != 2:
            raise RecordFormatError("keys must be (n, key_size)")
        n = self.keys.shape[0]
        if self.pointers.shape != (n,):
            raise RecordFormatError("pointers must be (n,)")
        if (self.vlens is None) != (self.len_size == 0):
            raise RecordFormatError("vlens and len_size must be set together")
        if self.vlens is not None and self.vlens.shape != (n,):
            raise RecordFormatError("vlens must be (n,)")

    def __len__(self) -> int:
        return self.keys.shape[0]

    @property
    def key_size(self) -> int:
        return self.keys.shape[1]

    @property
    def entry_size(self) -> int:
        return self.key_size + self.pointer_size + self.len_size

    @property
    def nbytes(self) -> int:
        return len(self) * self.entry_size

    # ------------------------------------------------------------------
    def sorted(self) -> "IndexMap":
        """A new IndexMap in stable ascending key order."""
        order = key_sort_indices(self.keys)
        return self.select(order)

    def select(self, indices: np.ndarray) -> "IndexMap":
        """A new IndexMap comprising the given rows, in that order."""
        return IndexMap(
            keys=self.keys[indices],
            pointers=self.pointers[indices],
            pointer_size=self.pointer_size,
            vlens=None if self.vlens is None else self.vlens[indices],
            len_size=self.len_size,
        )

    def slice(self, start: int, stop: int) -> "IndexMap":
        return IndexMap(
            keys=self.keys[start:stop],
            pointers=self.pointers[start:stop],
            pointer_size=self.pointer_size,
            vlens=None if self.vlens is None else self.vlens[start:stop],
            len_size=self.len_size,
        )

    # ------------------------------------------------------------------
    def to_bytes(self) -> np.ndarray:
        """Serialise entries to a flat uint8 array (key | ptr [| vlen])."""
        n = len(self)
        out = np.empty((n, self.entry_size), dtype=np.uint8)
        out[:, : self.key_size] = self.keys
        out[:, self.key_size : self.key_size + self.pointer_size] = _encode_uints(
            self.pointers, self.pointer_size
        )
        if self.vlens is not None:
            out[:, self.key_size + self.pointer_size :] = _encode_uints(
                self.vlens, self.len_size
            )
        return out.reshape(-1)

    @classmethod
    def from_bytes(
        cls,
        data: np.ndarray,
        key_size: int,
        pointer_size: int = 5,
        len_size: int = 0,
    ) -> "IndexMap":
        """Parse a flat byte buffer written by :meth:`to_bytes`."""
        entry = key_size + pointer_size + len_size
        data = np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        if data.size % entry:
            raise RecordFormatError(
                f"buffer of {data.size}B is not a multiple of entry size {entry}"
            )
        rows = data.reshape(-1, entry)
        keys = rows[:, :key_size].copy()
        pointers = _decode_uints(rows[:, key_size : key_size + pointer_size])
        vlens = None
        if len_size:
            vlens = _decode_uints(rows[:, key_size + pointer_size :])
        return cls(
            keys=keys,
            pointers=pointers,
            pointer_size=pointer_size,
            vlens=vlens,
            len_size=len_size,
        )

    @classmethod
    def for_fixed_records(
        cls,
        keys: np.ndarray,
        first_record: int,
        record_size: int,
        pointer_size: int = 5,
    ) -> "IndexMap":
        """IndexMap for contiguous fixed-size records.

        "each pointer is a hex address, calculated as (start_address +
        record_id * record_size)" (Sec 3.7, step 1).
        """
        n = keys.shape[0]
        ids = np.arange(first_record, first_record + n, dtype=np.int64)
        return cls(
            keys=keys.copy(),
            pointers=ids * record_size,
            pointer_size=pointer_size,
        )
