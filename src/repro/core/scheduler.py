"""Interference-aware scheduling helpers (paper Sec 3.5).

The drivers express each phase as a sequence of (produce, consume)
batches -- e.g. (gather values, write them out).  How those batches are
scheduled is the concurrency model:

* ``NO_IO_OVERLAP``: strictly alternate -- reads stall while the write
  buffer flushes, so reads and writes never overlap (Fig 2c).
* ``IO_OVERLAP``: double-buffered -- the write of batch *i* overlaps the
  produce of batch *i+1* (Fig 2b).
* ``NO_SYNC``: produce and consume of the same batch are issued
  concurrently ("values moved directly from the input file to the
  output file"), maximising read-write interference (Fig 2a).

All helpers are generators intended for ``yield from`` inside a driver
process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.core.base import ConcurrencyModel
from repro.sim.engine import Join, ParallelOps, Spawn
from repro.sim.fluid import FluidOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def _op_runner(op: FluidOp):
    """A process body that performs exactly one op."""
    result = yield op
    return result


def run_ops_parallel(machine: "Machine", ops: List[FluidOp]):
    """Issue several ops concurrently and wait for all (yield from).

    All ops enter the device at the same simulated instant and the
    caller resumes when the last one finishes -- one ``ParallelOps``
    engine command instead of a spawn/join pair per op.  When the
    machine's engine has ``batch_ops`` enabled, homogeneous ops in the
    batch are further aggregated into a single carrier op.
    """
    if not ops:
        return []
    results = yield ParallelOps(ops)
    return results


def pipelined_batches(
    machine: "Machine",
    model: ConcurrencyModel,
    items: Iterable,
    produce: Callable[[object], FluidOp],
    consume: Callable[[object, object], Optional[FluidOp]],
):
    """Run produce/consume over ``items`` under a concurrency model.

    ``produce(item)`` returns the read/gather op (its completion value is
    handed to consume); ``consume(item, data)`` returns the write op, or
    None when the batch produces no output.  The helper guarantees that
    the data of batch *i* is produced before its consume op is built, so
    file contents stay correct under every model.
    """
    if model is ConcurrencyModel.NO_IO_OVERLAP:
        for item in items:
            data = yield produce(item)
            write_op = consume(item, data)
            if write_op is not None:
                yield write_op
        return

    if model is ConcurrencyModel.IO_OVERLAP:
        pending = None
        for item in items:
            data = yield produce(item)
            if pending is not None:
                yield Join(pending)
            write_op = consume(item, data)
            if write_op is not None:
                pending = yield Spawn(_op_runner(write_op), name="overlap-write")
            else:
                pending = None
        if pending is not None:
            yield Join(pending)
        return

    if model is ConcurrencyModel.NO_SYNC:
        # Produce and consume of the same batch overlap on the device:
        # the batch's data dependency is satisfied eagerly by the storage
        # layer, only the timing ops run concurrently.
        for item in items:
            read_op = produce(item)
            data = read_op.on_complete(read_op) if read_op.on_complete else None
            read_op.on_complete = None
            write_op = consume(item, data)
            ops = [read_op] + ([write_op] if write_op is not None else [])
            yield from run_ops_parallel(machine, ops)
        return

    raise ValueError(f"unknown concurrency model {model!r}")
