"""Declarative registries for sorting systems, experiments and profiles.

Replaces the hard-coded lambda dicts that used to live in ``cli.py``:
any module can declare a sorting system with::

    @register_system("my-sort")
    class MySort(SortSystem):
        def __init__(self, fmt=None, config=None): ...

or, for parameterised variants, decorate a factory function with the
same ``(fmt, config)`` signature.  The CLI, the benchmark harness, the
cluster job scheduler and the tests all consume the same registry, so a
newly registered system is immediately sortable, benchmarkable and
schedulable by name.

Lookups of unknown names raise :class:`~repro.errors.UnknownSystemError`
listing the valid choices.  Built-in entries self-register when their
defining modules import; :func:`_ensure_builtins` imports those modules
lazily so lookups work regardless of what the caller imported first.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ConfigError, UnknownSystemError

_SYSTEMS: Dict[str, Callable] = {}
_EXPERIMENTS: Dict[str, Callable] = {}
_PROFILES: Dict[str, Callable] = {}
_POLICIES: Dict[str, Callable] = {}

_KINDS = {
    "system": _SYSTEMS,
    "experiment": _EXPERIMENTS,
    "profile": _PROFILES,
    "policy": _POLICIES,
}

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import every module that registers built-in entries (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    # Local imports: these modules import the registry back, so loading
    # them at module scope would cycle.
    import repro.baselines.external_merge_sort  # noqa: F401
    import repro.baselines.modified_key_sort  # noqa: F401
    import repro.baselines.pmsort  # noqa: F401
    import repro.baselines.sample_sort  # noqa: F401
    import repro.bench  # noqa: F401  (registers the experiment entries)
    import repro.cluster.policies  # noqa: F401
    import repro.core.natural_runs  # noqa: F401
    import repro.core.wiscsort  # noqa: F401
    from repro.device.profiles import PROFILE_FACTORIES

    for name, factory in PROFILE_FACTORIES.items():
        if name not in _PROFILES:
            _PROFILES[name] = factory


def _register(table: Dict[str, Callable], kind: str, name: str) -> Callable:
    if not name:
        raise ConfigError(f"{kind} registration needs a non-empty name")

    def decorator(obj: Callable) -> Callable:
        if name in table and table[name] is not obj:
            raise ConfigError(f"{kind} {name!r} is already registered")
        table[name] = obj
        return obj

    return decorator


def register_system(name: str) -> Callable:
    """Class/factory decorator: make a sorting system creatable by name.

    The decorated callable must accept ``(fmt, config=...)`` -- the
    uniform constructor surface every :class:`~repro.core.base.SortSystem`
    exposes.
    """
    return _register(_SYSTEMS, "system", name)


def register_experiment(name: str) -> Callable:
    """Function decorator: make a bench experiment runnable by name."""
    return _register(_EXPERIMENTS, "experiment", name)


def register_profile(name: str) -> Callable:
    """Factory decorator: make a device profile constructible by name."""
    return _register(_PROFILES, "profile", name)


def register_policy(name: str) -> Callable:
    """Class/factory decorator: make an admission policy creatable by name.

    The decorated callable must be constructible with no arguments and
    implement the :class:`repro.cluster.policies.AdmissionPolicy`
    surface (``on_arrival`` / ``pick``); ``--policy`` names on the CLI,
    :class:`~repro.cluster.scheduler.JobScheduler` and
    :class:`~repro.cluster.service.SortService` all resolve here.
    """
    return _register(_POLICIES, "policy", name)


def _lookup(kind: str, name: str) -> Callable:
    _ensure_builtins()
    table = _KINDS[kind]
    try:
        return table[name]
    except KeyError:
        raise UnknownSystemError(
            name, kind=kind, choices=tuple(sorted(table))
        ) from None


def get_system(name: str) -> Callable:
    """The registered constructor/factory for a sorting system."""
    return _lookup("system", name)


def get_experiment(name: str) -> Callable:
    """The registered experiment function."""
    return _lookup("experiment", name)


def get_profile(name: str) -> Callable:
    """The registered device-profile factory."""
    return _lookup("profile", name)


def get_policy(name: str) -> Callable:
    """The registered admission-policy class/factory."""
    return _lookup("policy", name)


def create_policy(name: str):
    """Instantiate a registered admission policy."""
    return get_policy(name)()


def create_system(name: str, fmt=None, config=None):
    """Instantiate a registered sorting system with the uniform surface."""
    factory = get_system(name)
    return factory(fmt, config=config)


def available(kind: str = "system") -> Tuple[str, ...]:
    """Sorted names registered under ``kind`` (system/experiment/profile)."""
    if kind not in _KINDS:
        raise ConfigError(f"unknown registry kind {kind!r}; use {sorted(_KINDS)}")
    _ensure_builtins()
    return tuple(sorted(_KINDS[kind]))


class RegistryView(Mapping):
    """Read-only mapping view over one registry kind.

    Keeps the historical ``SYSTEMS`` / ``EXPERIMENTS`` dict-style names
    importable from :mod:`repro.cli` while the registry stays the single
    source of truth.
    """

    def __init__(self, kind: str):
        if kind not in _KINDS:
            raise ConfigError(f"unknown registry kind {kind!r}")
        self._kind = kind

    def __getitem__(self, name: str) -> Callable:
        return _lookup(self._kind, name)

    def __contains__(self, name: object) -> bool:
        # Mapping's default __contains__ expects KeyError from
        # __getitem__, but lookups raise UnknownSystemError.
        return name in available(self._kind)

    def __iter__(self) -> Iterator[str]:
        return iter(available(self._kind))

    def __len__(self) -> int:
        return len(available(self._kind))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegistryView({self._kind}: {', '.join(available(self._kind))})"
