"""The Machine: one simulated host + one BRAID device.

A :class:`Machine` bundles the event engine, the BRAID rate model, the
device statistics recorder, a simulated filesystem and a DRAM budget.
Sorting systems and workload generators are written against this facade.

Typical usage::

    machine = Machine(profile=pmem_profile())
    input_file = machine.fs.create("input")
    ...                      # generate workload into input_file
    def job():
        data = yield input_file.read(0, 4096, tag="RUN read")
        yield machine.compute(0.001, tag="RUN sort", cores=16)
        yield input_file.write(0, data, tag="RUN write")
    machine.run(job(), name="demo")
    print(machine.engine.now)         # simulated seconds elapsed
"""

from __future__ import annotations

from typing import Any, Optional

from repro.device.device import BraidRateModel, make_io_op
from repro.device.host import HostModel
from repro.device.profile import DeviceProfile, Pattern
from repro.device.profiles import pmem_profile
from repro.device.stats import DeviceStats
from repro.errors import ConfigError
from repro.sim.engine import Engine, SimGenerator
from repro.sim.fluid import FluidOp
from repro.sim.primitives import Barrier, Semaphore, SimQueue
from repro.storage.dram import DramTracker
from repro.storage.filesystem import SimFS


class Machine:
    """A simulated single-socket host with one byte-addressable device.

    Standalone by default: the machine owns its engine and rate model.
    As a *shard* of a :class:`repro.cluster.Cluster` it instead joins a
    shared engine whose rate model is a
    :class:`~repro.sim.domains.DomainRouter`: pass ``engine=`` and a
    unique ``domain=`` key, and every op this machine builds is tagged
    with the domain so the router rates it against this machine's own
    device/host models, isolated from the other shards.  ``dram=``
    substitutes a shared :class:`~repro.storage.dram.DramTracker` so
    concurrent jobs reserve memory from one cluster-wide pool.
    """

    def __init__(
        self,
        profile: Optional[DeviceProfile] = None,
        host: Optional[HostModel] = None,
        dram_budget: Optional[int] = None,
        memoize_rates: bool = True,
        batch_ops: bool = False,
        engine: Optional[Engine] = None,
        domain: Optional[str] = None,
        dram: Optional[DramTracker] = None,
    ):
        self.profile = profile if profile is not None else pmem_profile()
        self.host = host if host is not None else HostModel()
        self.rate_model = BraidRateModel(
            self.profile, self.host, memoize=memoize_rates
        )
        #: Domain key stamped on every op (None on standalone machines,
        #: where op attributes stay identical to earlier builds).
        self.domain = domain
        if engine is not None:
            if domain is None:
                raise ConfigError("a machine joining a shared engine needs a domain")
            from repro.sim.domains import DomainRouter

            router = engine.fluid.model
            if not isinstance(router, DomainRouter):
                raise ConfigError(
                    "shared engines must be built on a DomainRouter rate model"
                )
            router.add_domain(domain, self.rate_model)
            self.engine = engine
        else:
            if domain is not None:
                raise ConfigError("domain= requires a shared engine=")
            self.engine = Engine(self.rate_model, batch_ops=batch_ops)
        self.stats = DeviceStats(self.host)
        if domain is None:
            self.engine.fluid.interval_observers.append(self.stats.observe)
        else:
            self.engine.fluid.interval_observers.append(self._domain_observe)
        self.fs = SimFS(self)
        self.dram = dram if dram is not None else DramTracker(dram_budget)
        #: Installed :class:`repro.faults.injector.FaultInjector`, if any.
        self.faults = None
        #: Installed :class:`repro.analysis.sanitizer.SimSanitizer`, if any.
        self.sanitizer = None
        #: Installed :class:`repro.trace.Tracer`, if any.
        self.tracer = None
        #: Installed :class:`repro.analysis.race.RaceDetector`, if any.
        self.race = None
        #: Installed :class:`repro.analysis.race.SchedulePermuter`, if any.
        self.schedule_fuzz = None

    # ------------------------------------------------------------------
    # Fault injection and crash recovery
    # ------------------------------------------------------------------
    def install_faults(self, plan, count_only: bool = False):
        """Install a :class:`~repro.faults.plan.FaultPlan` on this machine.

        Returns the :class:`~repro.faults.injector.FaultInjector`.  With
        an empty plan the injector stays unarmed and the storage layer
        takes its fault-free fast path (zero overhead); ``count_only``
        arms it purely as an op counter (probe runs).
        """
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(plan, count_only=count_only)
        injector.attach(self)
        self.faults = injector
        return injector

    def install_sanitizer(self, trace: bool = False):
        """Install a :class:`~repro.analysis.sanitizer.SimSanitizer`.

        Opt-in runtime checking: deadlock diagnostics that name stuck
        coroutines, a charge-accounting audit cross-checking storage
        byte moves against device charges, and (with ``trace=True``) an
        event trace for determinism diffing.  Returns the sanitizer;
        call its :meth:`~repro.analysis.sanitizer.SimSanitizer.check`
        after the run to raise on accounting drift.
        """
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer(trace=trace)
        sanitizer.install(self)
        self.sanitizer = sanitizer
        return sanitizer

    def install_tracer(self, detail: bool = False):
        """Install a :class:`repro.trace.Tracer` on this machine.

        Opt-in observability: sim-time spans, per-op device events with
        byte/class/amplification/interference attribution, and
        bandwidth/DRAM counter tracks, exportable to Perfetto (see
        :mod:`repro.trace`).  Observe-only -- simulated results are
        bit-identical with or without it.  Returns the tracer.
        """
        from repro.trace import Tracer

        tracer = Tracer(detail=detail)
        tracer.install(self)
        return tracer

    def install_race_detector(self):
        """Install a :class:`~repro.analysis.race.RaceDetector`.

        Opt-in dynamic race detection: vector clocks over the engine's
        spawn/block/resume edges plus a per-file byte-range access log,
        flagging conflicting same-instant accesses with no
        happens-before ordering.  Observe-only -- simulated results are
        bit-identical with or without it.  Returns the detector; call
        its :meth:`~repro.analysis.race.RaceDetector.check` after the
        run to raise on findings.
        """
        from repro.analysis.race import RaceDetector

        detector = RaceDetector()
        detector.install(self)
        return detector

    def install_schedule_fuzz(self, seed: int):
        """Permute same-instant scheduling ties from ``seed``.

        Every permuted schedule is legal, so a correct workload must
        produce byte-identical output under any seed (see
        :func:`repro.analysis.race.schedule_fuzz` for the sweep
        harness).  Returns the
        :class:`~repro.analysis.race.SchedulePermuter`.
        """
        from repro.analysis.race import SchedulePermuter

        permuter = SchedulePermuter(seed)
        self.schedule_fuzz = permuter
        self.engine.schedule_fuzz = permuter
        return permuter

    def trace_span(self, name: str, cat: str = "phase", **args):
        """A sim-time span context manager, or a no-op when untraced.

        Sorting systems call this around their phases; the ``nullcontext``
        fast path keeps untraced runs free of tracer imports and
        overhead.
        """
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        track = self.domain if self.domain is not None else self.tracer.MAIN_TRACK
        return self.tracer.span(name, cat=cat, track=track, **args)

    def reboot(self) -> None:
        """Crash recovery: replace the engine, carrying the clock forward.

        Models a host restart after a :class:`~repro.errors.SimulatedCrash`:
        volatile state (in-flight processes, DRAM contents, any transient
        degradation) is lost, while the device -- filesystem contents and
        accumulated statistics -- survives.  The new engine's clock
        continues from the crash time, so recovery cost is visible in the
        total simulated duration.  An installed fault injector is
        re-attached and keeps its global op counter and fired-event
        state.
        """
        if self.domain is not None:
            raise ConfigError(
                "cluster shards cannot reboot independently; reboot is a "
                "whole-host operation on the owning cluster"
            )
        now = self.engine.now
        batch_ops = self.engine.batch_ops
        self.rate_model.degrade = 1.0
        self.engine = Engine(self.rate_model, batch_ops=batch_ops, start_time=now)
        self.engine.fluid.interval_observers.append(self.stats.observe)
        self.dram = DramTracker(self.dram.budget)
        if self.faults is not None:
            self.faults.attach(self)
        if self.sanitizer is not None:
            # Waits-for state was volatile; fs.audit and the stats
            # wrapper live on persistent objects and survive as-is.
            self.sanitizer.attach_engine(self.engine)
        if self.race is not None:
            # Live clocks were volatile (pre-crash coroutines are gone);
            # recorded races survive.  fs.race lives on the filesystem.
            self.race.attach_engine(self.engine)
        if self.schedule_fuzz is not None:
            # The permuter's RNG stream continues across the reboot, so
            # one seed covers the whole crash-recovery schedule.
            self.engine.schedule_fuzz = self.schedule_fuzz
        if self.tracer is not None:
            # The replacement engine, fluid scheduler and DRAM tracker
            # all need fresh hooks; recorded spans/events survive.
            self.tracer.reattach(self)

    # ------------------------------------------------------------------
    # Op builders
    # ------------------------------------------------------------------
    def _domain_observe(self, t0: float, t1: float, ops: list) -> None:
        """Interval observer for cluster shards: this domain's ops only.

        The shared scheduler passes *all* active ops in issue order; the
        filtered subset keeps that order, so per-shard statistics stay
        run-to-run deterministic exactly like the standalone path.
        """
        domain = self.domain
        mine = [
            op
            for op in ops
            if op.attrs is not None and op.attrs.get("domain") == domain
        ]
        if mine:
            self.stats.observe(t0, t1, mine)

    def io(
        self,
        direction: str,
        pattern: Pattern,
        nbytes: int,
        tag: str,
        accesses: int = 1,
        stride: int = 0,
        threads: int = 1,
        host_bytes: int | None = None,
    ) -> FluidOp:
        """A device I/O op; work derived from the profile's cost model."""
        op = make_io_op(
            self.profile,
            direction,
            pattern,
            nbytes,
            tag,
            accesses=accesses,
            stride=stride,
            threads=threads,
            host_bytes=host_bytes,
        )
        if self.domain is not None:
            op.attrs["domain"] = self.domain
        self.stats.credit_submission(tag, nbytes, direction, pattern.value)
        return op

    def io_raw(
        self,
        work: float,
        direction: str,
        pattern: Pattern,
        user_bytes: int,
        tag: str,
        threads: int = 1,
    ) -> FluidOp:
        """A device I/O op with explicitly precomputed internal work."""
        host_ratio = (user_bytes / work) if work > 0 else 0.0
        op = FluidOp(
            work,
            kind="io",
            tag=tag,
            direction=direction,
            pattern=pattern,
            threads=threads,
            host_ratio=host_ratio,
            user_bytes=user_bytes,
        )
        if self.domain is not None:
            op.attrs["domain"] = self.domain
        self.stats.credit_submission(tag, user_bytes, direction, pattern.value)
        return op

    def compute(self, cpu_seconds: float, tag: str, cores: int = 1) -> FluidOp:
        """Pure CPU work, spread over up to ``cores`` cores."""
        op = FluidOp(cpu_seconds, kind="cpu", tag=tag, mode="compute", cores=cores)
        if self.domain is not None:
            op.attrs["domain"] = self.domain
        return op

    def copy(self, nbytes: int, tag: str, cores: int = 1) -> FluidOp:
        """A DRAM-to-DRAM memcpy of ``nbytes`` using up to ``cores`` cores."""
        op = FluidOp(float(nbytes), kind="cpu", tag=tag, mode="copy", cores=cores)
        if self.domain is not None:
            op.attrs["domain"] = self.domain
        return op

    def sort_compute(self, n_items: int, tag: str, cores: int = 1) -> FluidOp:
        """In-memory sort cost for ``n_items`` (IPS4o-style when cores>1)."""
        return self.compute(self.host.sort_seconds(n_items), tag, cores=cores)

    # ------------------------------------------------------------------
    # Execution and synchronisation helpers
    # ------------------------------------------------------------------
    def run(self, gen: SimGenerator, name: str = "main") -> Any:
        """Run a root process to completion; returns its result.

        Stops as soon as the root process finishes, so perpetual
        background processes (multi-tenant interference clients) do not
        keep the clock running.
        """
        proc = self.engine.spawn(gen, name)
        return self.engine.run_until(proc)

    @property
    def now(self) -> float:
        return self.engine.now

    def barrier(self, parties: int, name: str = "") -> Barrier:
        return Barrier(self.engine, parties, name=name)

    def semaphore(
        self, count: int = 1, name: str = "", reason: Optional[str] = None
    ) -> Semaphore:
        return Semaphore(self.engine, count, name=name, reason=reason)

    def queue(
        self,
        maxsize: Optional[int] = None,
        name: str = "",
        reason: Optional[str] = None,
    ) -> SimQueue:
        return SimQueue(self.engine, maxsize, name=name, reason=reason)
