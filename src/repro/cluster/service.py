"""Sort-as-a-service: open-loop arrivals, admission control and SLOs.

The batch :class:`~repro.cluster.scheduler.JobScheduler` answers "how
fast do K pre-submitted jobs drain?".  The :class:`SortService` answers
the production question instead: jobs *arrive on their own clock* (an
:class:`~repro.workloads.arrivals.ArrivalProcess`), queue under an
admission policy, optionally get *shed* under overload, and the things
that matter are the latency/slowdown percentiles of the completed jobs
and the declared :class:`SLO` verdicts -- not the makespan.

The pieces:

* :class:`SLO` -- a declarative objective like ``latency:p99<0.05``
  (metric, percentile, comparator, threshold in simulated seconds);
  :func:`parse_slo` parses the string grammar.
* :class:`SortService` -- drives one arrival stream through the
  cluster under a registry-resolved policy
  (``fifo``/``fair``/``edf``/``backpressure``/``shed``) and collects
  per-job metrics into a :class:`~repro.trace.MetricsRegistry`.
* :class:`ServiceReport` -- counters, a p50/p99/p999 percentile table
  and SLO verdicts, with a byte-deterministic :meth:`~ServiceReport.render`
  and :meth:`~ServiceReport.to_json` (the CI service gate compares the
  rendered bytes across runs).

Everything is a pure function of the arrival process seed and the
cluster configuration: same inputs, byte-identical report.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.api import RunOptions
from repro.core.base import SortConfig
from repro.errors import ConfigError, DramBudgetError
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.records.validate import validate_sorted_file
from repro.registry import create_system, get_policy
from repro.sim.engine import Now, Sleep, Spawn
from repro.sim.primitives import Semaphore
from repro.trace.metrics import MetricsRegistry

from repro.cluster.cluster import Cluster
from repro.cluster.policies import SchedulingContext
from repro.cluster.scheduler import Job
from repro.workloads.arrivals import ArrivalProcess, JobSpec

#: Log-spaced latency/queue-time buckets (simulated seconds).
TIME_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
    1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0,
)

#: Slowdown buckets (dimensionless, >= 1).
SLOWDOWN_BUCKETS = (
    1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0,
)

#: The percentiles every report tabulates.
REPORT_PERCENTILES = (("p50", 50.0), ("p99", 99.0), ("p999", 99.9))

#: Metrics an SLO may target -> histogram name in the registry.
SLO_METRICS = {
    "latency": "job_latency_seconds",
    "slowdown": "job_slowdown",
    "queue": "job_queue_seconds",
}

_SLO_RE = re.compile(
    r"^(?P<metric>[a-z]+):p(?P<pct>\d+)(?P<op><=?)(?P<threshold>[0-9.eE+-]+)$"
)


@dataclass(frozen=True)
class SLO:
    """One service-level objective: ``<metric> percentile op threshold``.

    ``metric`` is one of ``latency`` / ``slowdown`` / ``queue``;
    ``percentile`` is 0-100 (``99.9`` for p999); ``op`` is ``<`` or
    ``<=``.  Thresholds are simulated seconds for the time metrics and
    dimensionless for slowdown.
    """

    metric: str
    percentile: float
    threshold: float
    op: str = "<"

    def __post_init__(self):
        if self.metric not in SLO_METRICS:
            raise ConfigError(
                f"unknown SLO metric {self.metric!r}; choices: "
                + ", ".join(sorted(SLO_METRICS))
            )
        if not 0.0 <= self.percentile <= 100.0:
            raise ConfigError("SLO percentile must be in [0, 100]")
        if self.op not in ("<", "<="):
            raise ConfigError(f"SLO comparator must be < or <=, not {self.op!r}")

    def spec(self) -> str:
        """Canonical spec string (round-trips through :func:`parse_slo`)."""
        pct = f"{self.percentile:g}".replace(".", "")
        return f"{self.metric}:p{pct}{self.op}{self.threshold:g}"

    def check(self, measured: float) -> bool:
        return measured < self.threshold if self.op == "<" \
            else measured <= self.threshold


def parse_slo(spec: Union[str, SLO]) -> SLO:
    """Parse ``"latency:p99<0.05"`` grammar into an :class:`SLO`.

    The percentile digits read naturally: ``p50``, ``p99``, ``p999``
    (= 99.9), ``p9999`` (= 99.99).
    """
    if isinstance(spec, SLO):
        return spec
    m = _SLO_RE.match(spec.strip())
    if m is None:
        raise ConfigError(
            f"bad SLO spec {spec!r}; expected e.g. latency:p99<0.05 "
            f"(metrics: {', '.join(sorted(SLO_METRICS))})"
        )
    digits = m.group("pct")
    # p50 -> 50, p999 -> 99.9, p9999 -> 99.99: digits past the first
    # two go behind the decimal point.
    pct = float(digits) if len(digits) <= 2 else \
        float(f"{digits[:2]}.{digits[2:]}")
    try:
        threshold = float(m.group("threshold"))
    except ValueError:
        raise ConfigError(f"bad SLO threshold in {spec!r}") from None
    return SLO(
        metric=m.group("metric"),
        percentile=pct,
        threshold=threshold,
        op=m.group("op"),
    )


#: Version stamp on every JSON report this module (and the trace
#: analyzer) emits; ``repro trace-diff`` refuses to compare documents
#: whose schemas disagree.
REPORT_SCHEMA = 1


class SLOMonitor:
    """Windowed error-budget burn-rate tracking for declared SLOs.

    SRE-style accounting: an SLO like ``latency:p99<0.05`` grants an
    *error budget* of 1% of jobs over threshold.  The monitor buckets
    completions into fixed sim-time windows and, at each window close,
    computes the burn rate -- the window's violation fraction divided
    by the budget fraction -- per SLO.  A burn rate of 1.0 consumes the
    budget exactly as fast as the SLO allows; ``burn_threshold`` (a
    multiple of that) raises a deterministic alert, recorded in
    :attr:`alerts` and, when a tracer is attached, as an ``slo_alert``
    instant in the trace.

    Everything is a pure function of the observation stream: same jobs,
    byte-identical windows and alerts.  Observe-only -- attaching a
    monitor never changes simulated results.
    """

    def __init__(
        self,
        slos: Sequence[Union[str, SLO]],
        window: float = 1.0,
        burn_threshold: float = 2.0,
    ):
        if window <= 0:
            raise ConfigError("SLO monitor window must be > 0 sim seconds")
        if burn_threshold <= 0:
            raise ConfigError("burn threshold must be > 0")
        self.slos = [parse_slo(s) for s in slos]
        self.window = window
        self.burn_threshold = burn_threshold
        #: Optional tracer; alerts also become ``slo_alert`` instants.
        self.tracer = None
        #: Closed windows: ``{"window", "t0", "t1", "slos": {spec:
        #: {"total", "violations", "burn"}}}`` in time order.
        self.windows: List[dict] = []
        #: Raised alerts: ``{"t", "window", "slo", "burn",
        #: "violations", "total"}`` in time order.
        self.alerts: List[dict] = []
        self._cur_idx: Optional[int] = None
        self._cur: Dict[str, List[int]] = {}

    def _budget(self, slo: SLO) -> float:
        # A p100 SLO has zero nominal budget; the tiny floor keeps the
        # burn rate finite (and deterministic) instead of dividing by 0.
        return max(1.0 - slo.percentile / 100.0, 1e-9)

    def observe(self, t: float, values: Dict[str, float]) -> None:
        """Record one completion at sim-time ``t``.

        ``values`` maps metric names (``latency``/``slowdown``/
        ``queue``) to the job's measured values; metrics without a
        declared SLO are ignored.
        """
        idx = int(t // self.window)
        if idx != self._cur_idx:
            self._close_window()
            self._cur_idx = idx
            self._cur = {slo.spec(): [0, 0] for slo in self.slos}
        for slo in self.slos:
            value = values.get(slo.metric)
            if value is None:
                continue
            counts = self._cur[slo.spec()]
            counts[0] += 1
            if not slo.check(value):
                counts[1] += 1

    def finalize(self) -> None:
        """Close the trailing window (call once, after the last job)."""
        self._close_window()
        self._cur_idx = None
        self._cur = {}

    def _close_window(self) -> None:
        if self._cur_idx is None or not any(
            self._cur[slo.spec()][0] for slo in self.slos
        ):
            return
        idx = self._cur_idx
        t0 = idx * self.window
        t1 = (idx + 1) * self.window
        row: dict = {"window": idx, "t0": t0, "t1": t1, "slos": {}}
        for slo in self.slos:
            spec = slo.spec()
            total, violations = self._cur[spec]
            burn = 0.0
            if total:
                burn = (violations / total) / self._budget(slo)
            row["slos"][spec] = {
                "total": total,
                "violations": violations,
                "burn": burn,
            }
            if total and burn >= self.burn_threshold:
                alert = {
                    "t": t1,
                    "window": idx,
                    "slo": spec,
                    "burn": burn,
                    "violations": violations,
                    "total": total,
                }
                self.alerts.append(alert)
                if self.tracer is not None:
                    self.tracer.instant(
                        "slo_alert", cat="service", track="service",
                        slo=spec, burn=burn, window=idx,
                        violations=violations, total=total,
                    )
        self.windows.append(row)

    def summary(self) -> dict:
        """JSON-safe summary embedded in :meth:`ServiceReport.as_dict`."""
        return {
            "window": self.window,
            "burn_threshold": self.burn_threshold,
            "windows": self.windows,
            "alerts": self.alerts,
        }


@dataclass
class ServiceReport:
    """What one open-loop service run produced, rendered deterministically."""

    policy: str
    jobs_arrived: int = 0
    jobs_admitted: int = 0
    jobs_completed: int = 0
    jobs_shed: int = 0
    deadline_misses: int = 0
    offered_rate: float = 0.0
    achieved_rate: float = 0.0
    makespan: float = 0.0
    #: ``{metric: {p50: v, p99: v, p999: v}}``.
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ``[{"slo": spec, "measured": v, "ok": bool}, ...]``.
    slo_results: List[dict] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    jobs: List[Job] = field(default_factory=list)
    extras: dict = field(default_factory=dict)
    #: :meth:`SLOMonitor.summary` when a monitor was attached.
    burn: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when every declared SLO held."""
        return all(r["ok"] for r in self.slo_results)

    def as_dict(self) -> dict:
        """JSON-safe summary (no live objects)."""
        out = {
            "schema": REPORT_SCHEMA,
            "policy": self.policy,
            "jobs_arrived": self.jobs_arrived,
            "jobs_admitted": self.jobs_admitted,
            "jobs_completed": self.jobs_completed,
            "jobs_shed": self.jobs_shed,
            "deadline_misses": self.deadline_misses,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "makespan": self.makespan,
            "percentiles": self.percentiles,
            "slos": self.slo_results,
            "ok": self.ok,
        }
        if self.burn is not None:
            out["burn"] = self.burn
        return out

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, full float repr)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        """Deterministic plain-text report (the CI gate hashes this)."""
        lines = [
            f"sort service report: policy={self.policy} "
            f"arrived={self.jobs_arrived} admitted={self.jobs_admitted} "
            f"completed={self.jobs_completed} shed={self.jobs_shed} "
            f"deadline_misses={self.deadline_misses}",
            f"offered {self.offered_rate:.6g} jobs/s, achieved "
            f"{self.achieved_rate:.6g} jobs/s, makespan "
            f"{self.makespan:.6g} s",
            f"{'metric':<10} {'p50':>12} {'p99':>12} {'p999':>12}",
        ]
        for metric in ("latency", "slowdown", "queue"):
            row = self.percentiles.get(metric, {})
            lines.append(
                f"{metric:<10} "
                + " ".join(
                    f"{row.get(p, 0.0):>12.6g}" for p, _q in REPORT_PERCENTILES
                )
            )
        for result in self.slo_results:
            verdict = "PASS" if result["ok"] else "FAIL"
            lines.append(
                f"SLO {result['slo']}  measured {result['measured']:.6g}  "
                f"{verdict}"
            )
        if self.burn is not None:
            lines.append(
                f"burn monitor: window {self.burn['window']:.6g} s, "
                f"alert at {self.burn['burn_threshold']:.6g}x, "
                f"{len(self.burn['alerts'])} alert(s)"
            )
            for alert in self.burn["alerts"]:
                lines.append(
                    f"ALERT t={alert['t']:.6g} {alert['slo']}  burn "
                    f"{alert['burn']:.6g}x ({alert['violations']}/"
                    f"{alert['total']} in window {alert['window']})"
                )
        return "\n".join(lines)


class SortService:
    """Open-loop sort service over one cluster.

    Jobs from an :class:`~repro.workloads.arrivals.ArrivalProcess` are
    materialised on arrival (dataset generated on their round-robin
    shard), passed to the admission policy's ``on_arrival`` (which may
    shed them), queued, and admitted by ``pick`` whenever DRAM frees
    up.  All per-job defaults come from ``base_options``
    (:class:`~repro.api.RunOptions`); each job stores its own derived
    options, the same object a standalone ``api.sort`` run would use.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "fifo",
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        queue_cap: Optional[int] = None,
        slos: Sequence[Union[str, SLO]] = (),
        validate: bool = True,
        base_options: Optional[RunOptions] = None,
        monitor: Optional[SLOMonitor] = None,
    ):
        self.cluster = cluster
        #: Policy name (display); the object drives decisions.
        self.policy = policy
        self._policy = get_policy(policy)()
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else cluster.config
        self.queue_cap = queue_cap
        self.slos = [parse_slo(s) for s in slos]
        self.validate = validate
        self.base_options = (
            base_options if base_options is not None else RunOptions()
        )
        #: Optional live burn-rate monitor (off by default, so reports
        #: and fingerprints are byte-identical without one).
        self.monitor = monitor
        #: Every job that arrived, shed ones included, in arrival order.
        self.jobs: List[Job] = []
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    def serve(
        self,
        arrivals: ArrivalProcess,
        horizon: Optional[float] = None,
        max_jobs: Optional[int] = None,
    ) -> ServiceReport:
        """Run the arrival stream to completion and report.

        Infinite (generative) processes need a ``horizon`` in simulated
        seconds and/or a ``max_jobs`` bound; finite traces run whole by
        default.  Returns the :class:`ServiceReport`.
        """
        if not arrivals.finite and horizon is None and max_jobs is None:
            raise ConfigError(
                "an infinite arrival process needs a horizon= or "
                "max_jobs= bound"
            )
        if horizon is not None and horizon <= 0:
            raise ConfigError("horizon must be > 0 simulated seconds")
        if max_jobs is not None and max_jobs < 1:
            raise ConfigError("max_jobs must be >= 1")
        pending: List[Job] = []
        state = {
            "arrived": 0, "shed": 0, "completed": 0,
            "deadline_misses": 0, "running": 0, "arrivals_done": False,
            "last_arrival": 0.0, "rr": 0,
        }
        service: Dict[str, float] = {}
        in_service: Dict[str, int] = {}
        # Admission waits here for new work *and* freed DRAM; the
        # reason tag lets the trace analyzer bill those stalls to DRAM.
        kick = Semaphore(
            self.cluster.engine, 0, name="service-kick", reason="dram"
        )
        if self.monitor is not None:
            self.monitor.tracer = self.cluster.engine.tracer
        self.cluster.run(
            self._service_proc(
                arrivals, horizon, max_jobs, pending, state,
                service, in_service, kick,
            ),
            name=f"service[{self.policy}]",
        )
        if self.validate:
            for job in self.jobs:
                if job.output_file is None:
                    continue
                validate_sorted_file(job.input_file, job.output_file, self.fmt)
        return self._report(state, horizon)

    # ------------------------------------------------------------------
    def _make_job(self, spec: JobSpec) -> Job:
        dram_bytes = (
            spec.records * self.fmt.index_entry_size
            + self.config.read_buffer
            + self.config.write_buffer
        )
        options = self.base_options.replace(
            system=spec.system,
            records=spec.records,
            seed=spec.seed,
            fmt=self.fmt,
            config=self.config,
        )
        deadline = (
            spec.arrival_time + spec.deadline
            if spec.deadline is not None else None
        )
        return Job(
            spec.name, spec.tenant, spec.system, spec.records, spec.seed,
            dram_bytes, seq=spec.index, deadline=deadline, options=options,
        )

    def _context(
        self,
        service: Dict[str, float],
        in_service: Dict[str, int],
        state: dict,
    ) -> SchedulingContext:
        dram = self.cluster.dram
        return SchedulingContext(
            now=self.cluster.now,
            fits=lambda job: dram.would_fit(job.dram_bytes),
            service=service,
            in_service=in_service,
            running=state["running"],
            dram_budget=dram.budget,
            dram_available=dram.available,
            queue_cap=self.queue_cap,
        )

    def _service_proc(
        self, arrivals, horizon, max_jobs, pending, state,
        service, in_service, kick,
    ):
        yield Spawn(
            self._arrival_proc(
                arrivals, horizon, max_jobs, pending, state,
                service, in_service, kick,
            ),
            name="service-arrivals",
        )
        yield from self._admission_proc(
            pending, state, service, in_service, kick
        )

    def _arrival_proc(
        self, arrivals, horizon, max_jobs, pending, state,
        service, in_service, kick,
    ):
        budget = self.cluster.dram.budget
        tracer = self.cluster.engine.tracer
        count = 0
        for spec in arrivals.stream():
            if max_jobs is not None and count >= max_jobs:
                break
            if horizon is not None and spec.arrival_time > horizon:
                break
            now = yield Now()
            if spec.arrival_time > now:
                yield Sleep(spec.arrival_time - now)
            count += 1
            state["arrived"] += 1
            state["last_arrival"] = spec.arrival_time
            job = self._make_job(spec)
            job.submit_time = spec.arrival_time
            service.setdefault(job.tenant, 0.0)
            in_service.setdefault(job.tenant, 0)
            oversized = budget is not None and job.dram_bytes > budget
            ctx = self._context(service, in_service, state)
            if oversized or not self._policy.on_arrival(job, pending, ctx):
                job.shed = True
                state["shed"] += 1
                self.jobs.append(job)
                if tracer is not None:
                    tracer.instant(
                        "shed", cat="service", track="service",
                        job=job.name, tenant=job.tenant,
                    )
                continue
            shard = self.cluster.shards[state["rr"] % len(self.cluster.shards)]
            state["rr"] += 1
            job.shard = shard
            job.input_file = generate_dataset(
                shard, f"{job.name}.in", job.n_records, self.fmt,
                seed=job.seed,
            )
            pending.append(job)
            self.jobs.append(job)
            if tracer is not None:
                tracer.counter_sample(
                    "service", "queue_depth", float(len(pending))
                )
            kick.release()
        state["arrivals_done"] = True
        kick.release()

    def _admission_proc(self, pending, state, service, in_service, kick):
        # Arrivals and completions both funnel through `kick`, so one
        # wait point covers "new work" and "freed DRAM" alike.
        tracer = self.cluster.engine.tracer
        while True:
            while pending:
                ctx = self._context(service, in_service, state)
                job = self._policy.pick(pending, ctx)
                if job is None or not ctx.fits(job):
                    if state["running"] == 0 and state["arrivals_done"]:
                        stuck = job if job is not None else pending[0]
                        raise DramBudgetError(
                            f"job {stuck.name!r} needs {stuck.dram_bytes} B "
                            f"but only {self.cluster.dram.available} B "
                            f"remain with no job left to finish"
                        )
                    break
                pending.remove(job)
                self.cluster.dram.allocate(job.dram_bytes)
                in_service[job.tenant] += 1
                job.start_time = yield Now()
                if tracer is not None:
                    tracer.counter_sample(
                        "service", "queue_depth", float(len(pending))
                    )
                    tracer.instant(
                        "admit", cat="service", track="service",
                        job=job.name, tenant=job.tenant,
                        shard=job.shard.domain,
                    )
                yield Spawn(
                    self._job_body(job, state, service, in_service, kick),
                    name=f"job:{job.name}",
                )
                state["running"] += 1
            if state["arrivals_done"] and not pending \
                    and state["running"] == 0:
                return
            yield kick.acquire()

    def _job_body(self, job, state, service, in_service, kick):
        options = job.options
        system = create_system(
            options.system, options.record_format, config=options.sort_config
        )
        if not hasattr(system, "sort_process"):
            raise ConfigError(
                f"system {job.system!r} cannot run as a service job "
                f"(no sort_process); use a wiscsort variant"
            )
        system.output_name = f"{job.name}.out"
        output = yield from system.sort_process(job.shard, job.input_file)
        job.output_file = output
        job.finish_time = yield Now()
        self.cluster.dram.free(job.dram_bytes)
        service[job.tenant] += job.service_time
        in_service[job.tenant] -= 1
        state["running"] -= 1
        state["completed"] += 1
        if job.missed_deadline:
            state["deadline_misses"] += 1
        if self.monitor is not None:
            self.monitor.observe(
                job.finish_time,
                {
                    "latency": job.latency,
                    "slowdown": job.slowdown,
                    "queue": job.queue_time,
                },
            )
        kick.release()

    # ------------------------------------------------------------------
    def _report(self, state: dict, horizon: Optional[float]) -> ServiceReport:
        latency = self.metrics.histogram(
            "job_latency_seconds", buckets=TIME_BUCKETS
        )
        slowdown = self.metrics.histogram(
            "job_slowdown", buckets=SLOWDOWN_BUCKETS
        )
        queue = self.metrics.histogram(
            "job_queue_seconds", buckets=TIME_BUCKETS
        )
        completed = [j for j in self.jobs if j.finish_time is not None]
        for job in completed:
            latency.observe(job.latency)
            slowdown.observe(job.slowdown)
            queue.observe(job.queue_time)
        self.metrics.counter("jobs_arrived").set_total(state["arrived"])
        self.metrics.counter("jobs_shed").set_total(state["shed"])
        self.metrics.counter("jobs_completed").set_total(state["completed"])
        self.metrics.counter("deadline_misses").set_total(
            state["deadline_misses"]
        )
        hists = {"latency": latency, "slowdown": slowdown, "queue": queue}
        percentiles = {
            metric: {
                p: hist.percentile(q) for p, q in REPORT_PERCENTILES
            }
            for metric, hist in hists.items()
        }
        slo_results = []
        for slo in self.slos:
            measured = hists[slo.metric].percentile(slo.percentile)
            slo_results.append({
                "slo": slo.spec(),
                "measured": measured,
                "ok": slo.check(measured),
            })
        burn = None
        if self.monitor is not None:
            self.monitor.finalize()
            burn = self.monitor.summary()
        makespan = self.cluster.now
        span = horizon if horizon is not None else state["last_arrival"]
        offered = state["arrived"] / span if span and span > 0 else 0.0
        achieved = (
            state["completed"] / makespan if makespan > 0 else 0.0
        )
        return ServiceReport(
            policy=self.policy,
            jobs_arrived=state["arrived"],
            jobs_admitted=state["arrived"] - state["shed"],
            jobs_completed=state["completed"],
            jobs_shed=state["shed"],
            deadline_misses=state["deadline_misses"],
            offered_rate=offered,
            achieved_rate=achieved,
            makespan=makespan,
            percentiles=percentiles,
            slo_results=slo_results,
            metrics=self.metrics,
            jobs=list(self.jobs),
            burn=burn,
        )
