"""Admission-control policies for the job scheduler and the sort service.

A policy decides two things and nothing else:

* :meth:`AdmissionPolicy.on_arrival` -- accept or *shed* a job the
  instant it arrives (open-loop service only; the batch scheduler never
  sheds pre-submitted work).  Shedding is how a policy protects latency
  under overload instead of letting the queue grow without bound.
* :meth:`AdmissionPolicy.pick` -- which pending job to admit next, or
  ``None`` to wait for a completion.  The caller owns the DRAM
  reservation; a policy that returns a job that does not fit causes a
  head-of-line stall (deliberate for FIFO/fair/EDF, bypassed by the
  backpressure policy which only ever returns fitting jobs).

Policies are stateless between runs and constructible with no
arguments; they register under :func:`repro.registry.register_policy`
so ``--policy`` names resolve exactly like system names do (unknown
names raise :class:`~repro.errors.UnknownSystemError` listing the
choices).

Everything a decision may read is in the :class:`SchedulingContext`:
the simulated clock, DRAM fit checks, per-tenant attained service and
the queue cap.  Decisions must be deterministic -- every tie needs a
total tie-break (submission sequence, tenant name) or the admission
order would drift across legal same-instant schedules.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.registry import register_policy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.scheduler import Job

#: Default pending-queue cap for the load-shedding policy.
DEFAULT_QUEUE_CAP = 64

#: Default DRAM backlog multiple for the backpressure policy.
DEFAULT_BACKLOG_FACTOR = 2.0


class SchedulingContext:
    """Read-only view of the scheduler state a policy may consult."""

    __slots__ = (
        "now", "fits", "service", "in_service", "running",
        "dram_budget", "dram_available", "queue_cap",
    )

    def __init__(
        self,
        now: float,
        fits: Callable[["Job"], bool],
        service: Dict[str, float],
        in_service: Dict[str, int],
        running: int = 0,
        dram_budget: Optional[int] = None,
        dram_available: Optional[int] = None,
        queue_cap: Optional[int] = None,
    ):
        #: Current simulated time.
        self.now = now
        #: ``fits(job)`` -- would the job's DRAM reservation fit right now?
        self.fits = fits
        #: Per-tenant attained service seconds (fair-share accounting).
        self.service = service
        #: Per-tenant count of jobs currently in service.
        self.in_service = in_service
        #: Jobs currently admitted and running.
        self.running = running
        #: Cluster DRAM budget in bytes (None = unbounded).
        self.dram_budget = dram_budget
        #: DRAM bytes currently unreserved (None = unbounded).
        self.dram_available = dram_available
        #: Service-level pending-queue cap (None = policy default).
        self.queue_cap = queue_cap


class AdmissionPolicy:
    """Base class; concrete policies override ``pick`` (and optionally
    ``on_arrival`` to shed)."""

    #: Registry name (set on concrete classes).
    name = "abstract"

    def on_arrival(
        self, job: "Job", pending: List["Job"], ctx: SchedulingContext
    ) -> bool:
        """Accept (True) or shed (False) an arriving job. Default: accept."""
        return True

    def pick(
        self, pending: List["Job"], ctx: SchedulingContext
    ) -> Optional["Job"]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@register_policy("fifo")
class FifoPolicy(AdmissionPolicy):
    """Strict submission order with head-of-line blocking."""

    name = "fifo"

    def pick(self, pending, ctx):
        return pending[0] if pending else None


@register_policy("fair")
class FairSharePolicy(AdmissionPolicy):
    """Least-attained-service fair share across tenants.

    Among tenants with pending work, admit the next job of the tenant
    that has accumulated the least service time; ties break toward the
    tenant with fewer jobs currently in service (so a burst from one
    tenant cannot grab every slot before anyone finishes), then by
    tenant name.
    """

    name = "fair"

    def pick(self, pending, ctx):
        if not pending:
            return None
        tenants: List[str] = []
        for job in pending:
            if job.tenant not in tenants:
                tenants.append(job.tenant)
        chosen = min(
            tenants,
            key=lambda t: (ctx.service[t], ctx.in_service[t], t),
        )
        for job in pending:
            if job.tenant == chosen:
                return job
        raise AssertionError("unreachable: chosen tenant has pending work")


@register_policy("edf")
class EdfPolicy(AdmissionPolicy):
    """Deadline-aware earliest-deadline-first admission.

    Jobs carry absolute deadlines (service arrivals stamp them from the
    spec's relative deadline); the pending job with the earliest
    deadline is admitted first.  Jobs without a deadline sort last, and
    all ties break by submission sequence, keeping the order total
    under same-instant arrivals.
    """

    name = "edf"

    def pick(self, pending, ctx):
        if not pending:
            return None
        return min(
            pending,
            key=lambda j: (
                j.deadline if j.deadline is not None else math.inf,
                j.seq,
            ),
        )


@register_policy("backpressure")
class BackpressurePolicy(AdmissionPolicy):
    """DRAM-aware backpressure: bound the reserved backlog, skip stalls.

    Arrivals are shed once the pending queue's total DRAM reservation
    (plus the newcomer's) would exceed ``backlog_factor`` times the
    cluster budget -- the queue may hold at most a couple of budgets'
    worth of future work, so queueing delay stays bounded by a constant
    number of drain cycles.  With no DRAM budget configured there is
    nothing to press back on and every job is accepted.

    Admission never stalls on the head: the first pending job (in
    submission order) whose reservation fits right now is admitted, so
    a whale at the head cannot starve minnows behind it.
    """

    name = "backpressure"

    def __init__(self, backlog_factor: float = DEFAULT_BACKLOG_FACTOR):
        self.backlog_factor = backlog_factor

    def on_arrival(self, job, pending, ctx):
        if ctx.dram_budget is None:
            return True
        backlog = sum(j.dram_bytes for j in pending) + job.dram_bytes
        return backlog <= self.backlog_factor * ctx.dram_budget

    def pick(self, pending, ctx):
        for job in pending:
            if ctx.fits(job):
                return job
        return None


@register_policy("shed")
class ShedPolicy(AdmissionPolicy):
    """FIFO admission with queue-depth load shedding.

    Arrivals are dropped once the pending queue holds ``queue_cap``
    jobs (the service's ``queue_cap`` overrides the default) -- the
    classic bounded-queue server: sacrifice a counted fraction of the
    offered load to keep latency percentiles of the admitted jobs flat
    through overload.
    """

    name = "shed"

    def __init__(self, queue_cap: int = DEFAULT_QUEUE_CAP):
        self.queue_cap = queue_cap

    def on_arrival(self, job, pending, ctx):
        cap = ctx.queue_cap if ctx.queue_cap is not None else self.queue_cap
        return len(pending) < cap

    def pick(self, pending, ctx):
        return pending[0] if pending else None
