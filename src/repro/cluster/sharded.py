"""Range-partitioned sorting across cluster shards.

``ShardedWiscSort`` turns N per-shard input files into N per-shard
sorted outputs whose concatenation is byte-identical to what a single
device running WiscSort over the whole dataset would produce:

1. **Plan** -- every shard gathers its key column (the strided key
   gather WiscSort itself uses) and the driver picks ``N-1`` splitters
   from deterministic stride samples of those keys (no RNG: the same
   input always yields the same splitters).
2. **Shuffle** -- each source shard streams its records sequentially,
   splits every batch by partition id, and writes each slice into the
   destination shard's staging file at a *reserved* offset.  Offsets
   are precomputed from the per-(source, dest) record counts so staging
   content lands in global input order no matter how the concurrent
   writes interleave in time -- timing and content are fully decoupled,
   which is what keeps the merged output deterministic and stable.
   Writes into each destination device are admitted one at a time by
   the :class:`~repro.core.controller.WritePoolArbiter`, each using the
   destination's calibrated write-pool thread count (the paper's write
   discipline, extended across shards).  Cross-shard slices additionally
   pay for the wire: the device write runs in parallel with a
   :meth:`~repro.cluster.cluster.Cluster.net_op` transfer rated by the
   max-min fair interconnect model, so incast onto a hot destination is
   a first-class cost.
3. **Sort** -- every shard runs an unmodified per-shard sort (WiscSort
   by default, any registered system exposing ``sort_process``) over
   its staging file; the per-shard sorts run concurrently on the shared
   engine.

Byte identity argument: partitions are key ranges in shard order (keys
equal to a splitter all land in the same shard), the reserved-offset
shuffle preserves global input order inside each partition, and the
per-shard sort is stable -- so ties keep input order exactly like the
single-device stable sort, and concatenating the shard outputs *is* the
single-device output.

Fault tolerance (``checkpoint=True``) reuses the atomic-rename/SHA-256
manifest scheme of :mod:`repro.core.recovery` at partition granularity:

* a **plan manifest** on shard 0 freezes the chosen splitters and the
  per-(source, dest) record counts the moment planning completes;
* one **scatter manifest** per source shard commits after that source
  finished writing all its slices (reserved offsets make re-scattering
  an uncommitted source idempotent);
* one **sorted manifest** per partition commits after the partition's
  output file is durable, recording which shard holds it and its size.

After a whole-shard crash (see
:meth:`~repro.cluster.cluster.Cluster.reboot` and
:func:`~repro.faults.harness.run_cluster_with_faults`) recovery
re-executes *only* what no manifest covers: unmarked sources re-gather
keys and re-scatter against the frozen splitters, and unsalvaged
partitions are re-sorted -- on an idle spare shard when one exists (the
staging file travels over the interconnect), otherwise on the rebooted
home shard.

Straggler speculation (active only when a fault plan is installed, so
fault-free runs are bit-identical to pre-speculation builds): a monitor
process compares each open partition's predicted finish -- the fluid
scheduler's scheduled horizon for that shard's resource group -- against
``spec_factor`` times the slowest *completed* partition.  A partition
predicted to overshoot is re-issued on an idle shard from a staging
copy.  The first attempt to complete wins; the engine's deterministic
completion order makes the winner identical across runs and across the
scalar/vector kernels, and the loser is torn down with
:meth:`~repro.sim.engine.Engine.cancel_tree` (which settles the fluid
model first, so all partial progress is charged to device stats before
the loser's remaining work vanishes).  Speculative copies deliberately
bypass the write-pool arbiter's slots: a cancelled loser must never die
holding an admission slot another shard is waiting on.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

import numpy as np

from repro.core.base import SortConfig, SortSystem
from repro.core.controller import WritePoolArbiter
from repro.core.recovery import CheckpointLog, pack_entries, unpack_entries
from repro.device.profile import Pattern
from repro.errors import ConfigError, RecoveryError
from repro.records.format import (
    RecordFormat,
    key_sort_indices,
    leq_mask,
)
from repro.records.validate import validate_sorted_records
from repro.registry import create_system
from repro.sim.engine import Join, ParallelOps, Sleep, Spawn
from repro.sim.primitives import Semaphore

from repro.cluster.cluster import Cluster, ShardedFile


class ShardedWiscSort(SortSystem):
    """Cross-shard shuffle + concurrent per-shard sorts on a Cluster."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        system: str = "wiscsort",
        output_name: str = "sharded-wiscsort.out",
        oversample: int = 32,
        checkpoint: bool = False,
        speculate: bool = True,
        spec_factor: float = 1.75,
        spec_interval: Optional[float] = None,
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        #: Registered name of the per-shard sorting system.
        self.system = system
        self.output_name = output_name
        #: Splitter samples per shard boundary (balance knob only --
        #: correctness never depends on where the splitters land).
        if oversample < 1:
            raise ConfigError("oversample must be >= 1")
        self.oversample = oversample
        #: Write partition-granular manifests so a shard crash loses
        #: only uncommitted work (required for ``recover()``).
        self.checkpoint = checkpoint
        #: Allow straggler re-issue (only ever active under an
        #: installed fault plan; see module docstring).
        self.speculate = speculate
        if spec_factor <= 1.0:
            raise ConfigError("spec_factor must be > 1")
        #: A partition is a straggler when its predicted duration
        #: exceeds ``spec_factor`` x the slowest completed partition.
        self.spec_factor = spec_factor
        if spec_interval is not None and spec_interval <= 0:
            raise ConfigError("spec_interval must be positive or None")
        #: Monitor poll period in simulated seconds; None derives it
        #: from the scheduled horizon (an eighth of the remaining work).
        self.spec_interval = spec_interval
        self.name = f"sharded-{system}[{self.config.concurrency}]"
        #: Chosen splitter keys of the last run ((n_parts-1, key_size)).
        self.splitters: Optional[np.ndarray] = None
        #: Per-(source, dest) record counts of the last shuffle.
        self.shuffle_counts: Optional[np.ndarray] = None
        #: Salvaged-vs-redone accounting of the last ``recover()``.
        self.last_recovery: Optional[dict] = None

    # ------------------------------------------------------------------
    def _validate(self, cluster, sharded_input, sharded_output) -> int:
        rec = self.fmt.record_size
        inp = sharded_input.merged().reshape(-1, rec)
        out = sharded_output.merged().reshape(-1, rec)
        validate_sorted_records(inp, out, self.fmt.key_size)
        return inp.shape[0]

    def _execute(self, cluster: Cluster, sharded_input: ShardedFile) -> ShardedFile:
        homes = self._homes(cluster, sharded_input)
        n_parts = len(homes)
        for part in sharded_input.parts:
            if part.size % self.fmt.record_size:
                raise ConfigError(
                    f"part {part.name!r} size is not a multiple of record size"
                )
        arbiter = WritePoolArbiter(cluster)
        stagings = [
            shard.fs.create(f"{self.output_name}.stage{d}")
            for d, shard in enumerate(homes)
        ]
        outputs: List = [None] * n_parts
        cluster.run(
            self._drive(cluster, homes, sharded_input, stagings, arbiter, outputs),
            name=f"sharded-{self.system}",
        )
        for d, shard in enumerate(homes):
            shard.fs.delete(stagings[d].name)
        if self.checkpoint:
            self._discard_manifests(cluster)
        return ShardedFile(self.output_name, outputs)

    def _homes(self, cluster: Cluster, sharded_input: ShardedFile) -> List:
        """The shards owning this run's partitions, in partition order.

        The partition count is the *input's* part count; shards beyond
        it (admitted via :meth:`Cluster.add_shard`, before or during the
        run) serve as spares for speculation and crash re-execution.
        The next dataset generated on the grown cluster has more parts,
        so the next run re-plans -- and rebalances its splitters -- over
        the full shard count.
        """
        n_parts = len(sharded_input.parts)
        if n_parts > len(cluster.shards):
            raise ConfigError(
                f"input has {n_parts} parts for a "
                f"{len(cluster.shards)}-shard cluster"
            )
        return list(cluster.shards[:n_parts])

    # ------------------------------------------------------------------
    def _drive(self, cluster, homes, sharded_input, stagings, arbiter, outputs):
        fmt = self.fmt
        rec = fmt.record_size
        n_parts = len(homes)

        # -- Plan: concurrent per-shard key gathers ---------------------
        plan_procs = []
        for shard, part in zip(homes, sharded_input.parts):
            ctrl = arbiter.controller(shard.domain)
            proc = yield Spawn(
                self._gather_keys(shard, part, ctrl), name=f"plan:{shard.domain}"
            )
            plan_procs.append(proc)
        shard_keys = yield Join(plan_procs)

        splitters = self._choose_splitters(shard_keys, n_parts)
        self.splitters = splitters
        pids = [self._partition_ids(keys, splitters) for keys in shard_keys]
        counts = np.zeros((n_parts, n_parts), dtype=np.int64)
        for s in range(n_parts):
            if pids[s].size:
                counts[s] = np.bincount(pids[s], minlength=n_parts)
        self.shuffle_counts = counts

        if self.checkpoint:
            # Freeze the plan: with splitters and counts durable, every
            # later phase is re-executable at partition granularity.
            yield from self._plan_log(homes[0]).save(
                {
                    "phase": "plan",
                    "n_parts": n_parts,
                    "record_size": rec,
                    "splitters": pack_entries(splitters),
                    "counts": counts.reshape(-1).tolist(),
                }
            )

        # Charge the partition scan (classifying every key against the
        # splitters is a DRAM-bandwidth-bound sweep of the key arrays).
        scan_ops = []
        for shard, keys in zip(homes, shard_keys):
            ctrl = arbiter.controller(shard.domain)
            scan_ops.append(
                shard.copy(
                    keys.shape[0] * fmt.key_size,
                    tag="SHUFFLE partition",
                    cores=ctrl.sort_cores(),
                )
            )
        yield ParallelOps(scan_ops)

        # Reserved staging offsets: source s writes its dest-d records at
        # [base, base + counts[s][d]*rec) where base skips all earlier
        # sources' records -- staging content order == global input order.
        bases = np.zeros((n_parts, n_parts), dtype=np.int64)
        bases[1:] = np.cumsum(counts[:-1], axis=0)
        bases *= rec

        # -- Shuffle: concurrent per-source streaming scatter -----------
        shuffle_procs = []
        for s, (shard, part) in enumerate(zip(homes, sharded_input.parts)):
            ctrl = arbiter.controller(shard.domain)
            log = self._scatter_log(shard, s) if self.checkpoint else None
            proc = yield Spawn(
                self._shuffle_source(
                    cluster, homes, part, pids[s], bases[s].copy(), stagings,
                    arbiter, ctrl, shard.domain, scatter_log=log, src_index=s,
                ),
                name=f"shuffle:{shard.domain}",
            )
            shuffle_procs.append(proc)
        yield Join(shuffle_procs)

        # -- Sort: unmodified per-shard sorts, concurrently -------------
        entries = []
        for d, shard in enumerate(homes):
            part_name = f"{self.output_name}.shard{d}"
            if stagings[d].size == 0:
                outputs[d] = shard.fs.create(part_name)
                continue
            entries.append((d, shard))
        if not entries:
            return
        # Speculation changes the engine's event schedule (monitor
        # timers), so it arms only under an installed fault plan --
        # fault-free runs stay bit-identical to the plain Join path.
        faults = cluster.faults
        if self.speculate and faults is not None and not faults.count_only:
            yield from self._sort_with_speculation(
                cluster, entries, stagings, arbiter, outputs
            )
            return
        sort_procs = []
        for d, shard in entries:
            proc = yield Spawn(
                self._sort_partition(
                    d, shard, stagings[d], f"{self.output_name}.shard{d}"
                ),
                name=f"sort:{shard.domain}",
            )
            sort_procs.append((d, proc))
        results = yield Join([proc for _d, proc in sort_procs])
        for (d, _proc), output in zip(sort_procs, results):
            outputs[d] = output

    # ------------------------------------------------------------------
    def _gather_keys(self, shard, part, ctrl):
        """Per-shard plan step: strided gather of the full key column."""
        fmt = self.fmt
        n = part.size // fmt.record_size
        keys = yield part.read_strided(
            0,
            n,
            fmt.record_size,
            fmt.key_size,
            tag="SHUFFLE plan",
            threads=ctrl.read_threads(Pattern.STRIDED),
        )
        return keys

    def _choose_splitters(self, shard_keys, n_parts: int) -> np.ndarray:
        """Deterministic stride-sampled splitters (no RNG).

        Samples ``oversample * n_parts`` keys per shard at a fixed
        stride, sorts the union, and takes the boundary quantiles.
        """
        key_size = self.fmt.key_size
        if n_parts == 1:
            return np.zeros((0, key_size), dtype=np.uint8)
        target = self.oversample * n_parts
        samples = []
        for keys in shard_keys:
            n = keys.shape[0]
            if n == 0:
                continue
            step = max(1, n // target)
            samples.append(keys[::step])
        if not samples:
            return np.zeros((0, key_size), dtype=np.uint8)
        pool = np.concatenate(samples)
        pool = pool[key_sort_indices(pool)]
        m = pool.shape[0]
        rows = [pool[min(m - 1, (j + 1) * m // n_parts)] for j in range(n_parts - 1)]
        return np.stack(rows)

    def _partition_ids(self, keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
        """Partition id per key: the count of splitters the key exceeds.

        Keys equal to a splitter stay in the lower shard, so equal keys
        always share a shard -- a precondition for stable-tie byte
        identity with the single-device sort.
        """
        pid = np.zeros(keys.shape[0], dtype=np.int64)
        if keys.shape[0] == 0:
            return pid
        for j in range(splitters.shape[0]):
            pid += ~leq_mask(keys, splitters[j])
        return pid

    def _shuffle_source(
        self,
        cluster,
        homes,
        part,
        pids,
        cursors,
        stagings,
        arbiter,
        ctrl,
        src_domain: str,
        scatter_log: Optional[CheckpointLog] = None,
        src_index: int = -1,
        skip_dests: FrozenSet[int] = frozenset(),
        redone: Optional[list] = None,
    ):
        """Stream one source shard, scattering batches to staging files.

        ``cursors`` holds this source's next reserved write offset per
        destination; content placement never depends on op timing.
        Cross-shard slices pay the interconnect (the staging write and
        the network transfer run in parallel, completing together).
        ``skip_dests`` (recovery) suppresses writes to partitions whose
        sorted output was already salvaged; ``redone`` is a one-element
        byte accumulator for recovery accounting.
        """
        fmt = self.fmt
        rec = fmt.record_size
        n_parts = len(homes)
        chunk_bytes = max(1, self.config.read_buffer // rec) * rec
        read_threads = ctrl.read_threads(Pattern.SEQ)
        row = 0
        for offset in range(0, part.size, chunk_bytes):
            nbytes = min(chunk_bytes, part.size - offset)
            data = yield part.read(
                offset, nbytes, tag="SHUFFLE read", threads=read_threads
            )
            rows = data.reshape(-1, rec)
            batch_pids = pids[row : row + rows.shape[0]]
            row += rows.shape[0]
            for d in range(n_parts):
                if d in skip_dests:
                    continue
                slice_rows = rows[batch_pids == d]
                if slice_rows.shape[0] == 0:
                    continue
                dest = homes[d].domain
                yield arbiter.acquire(dest)
                write_op = stagings[d].write(
                    int(cursors[d]),
                    slice_rows.reshape(-1),
                    tag="SHUFFLE write",
                    threads=arbiter.write_threads(dest),
                )
                if cluster.network is not None and dest != src_domain:
                    yield ParallelOps(
                        [
                            write_op,
                            cluster.net_op(
                                src_domain, dest, slice_rows.size,
                                tag="SHUFFLE net",
                            ),
                        ]
                    )
                else:
                    yield write_op
                arbiter.release(dest)
                cursors[d] += slice_rows.size
                if redone is not None:
                    redone[0] += int(slice_rows.size)
        if scatter_log is not None:
            # Commit only after every slice completed: a valid scatter
            # manifest therefore proves all of this source's staging
            # bytes are durable on their destinations.
            yield from scatter_log.save(
                {"phase": "scatter", "source": src_index}
            )

    def _make_shard_system(self, output_name: str):
        system = create_system(self.system, self.fmt, config=self.config)
        if not hasattr(system, "sort_process"):
            raise ConfigError(
                f"system {self.system!r} cannot run as a cluster shard "
                f"process (no sort_process); use a wiscsort variant"
            )
        system.output_name = output_name
        return system

    # ------------------------------------------------------------------
    # Sort attempts, speculation and loser cancellation
    # ------------------------------------------------------------------
    def _sort_attempt(self, shard, staging, part_name):
        """One raw per-shard sort (no manifest; used by speculation)."""
        system = self._make_shard_system(part_name)
        output = yield from system.sort_process(shard, staging)
        return output

    def _sort_partition(self, d, shard, staging, part_name):
        """Per-shard sort plus (when checkpointing) its sorted manifest."""
        output = yield from self._sort_attempt(shard, staging, part_name)
        if self.checkpoint:
            yield from self._save_sorted(shard, d, output)
        return output

    def _save_sorted(self, shard, d, output):
        yield from self._sorted_log(shard, d).save(
            {
                "phase": "sorted",
                "dest": d,
                "domain": shard.domain,
                "output": output.name,
                "size": int(output.size),
            }
        )

    def _sort_with_speculation(self, cluster, entries, stagings, arbiter, outputs):
        """Run the sort phase with straggler re-issue.

        Every attempt (primary or speculative) gets a watcher process;
        the first watcher to observe its partition complete claims the
        win, cancels and scrubs the rival, and releases the ``done``
        semaphore -- the drive below simply acquires one release per
        partition.  Engine completion order is deterministic, so the
        winner is identical across runs and kernels.
        """
        engine = cluster.engine
        done = Semaphore(engine, 0, name="sort-done", reason="barrier")
        state = {
            "winner": {},  # d -> "primary" | "spec"
            "durations": {},  # d -> completed-partition duration
            "attempts": {},  # d -> [(proc, shard, kind), ...]
            "start": {},  # d -> attempt start time
            "open": set(),  # partitions without a winner yet
            "busy": set(),  # domains currently executing an attempt
        }
        for d, shard in entries:
            gen = self._sort_attempt(
                shard, stagings[d], f"{self.output_name}.shard{d}"
            )
            proc = yield Spawn(gen, name=f"sort:{shard.domain}")
            state["attempts"][d] = [(proc, shard, "primary")]
            state["start"][d] = engine.now
            state["open"].add(d)
            state["busy"].add(shard.domain)
            yield Spawn(
                self._watch_attempt(
                    cluster, d, proc, shard, "primary", state, done, outputs
                ),
                name=f"watch:part{d}",
            )
        monitor = yield Spawn(
            self._spec_monitor(cluster, stagings, arbiter, state, done, outputs),
            name="spec-monitor",
        )
        for _ in range(len(entries)):
            yield done.acquire()
        if not monitor.done:
            engine.cancel_tree(monitor)

    def _watch_attempt(self, cluster, d, proc, shard, kind, state, done, outputs):
        output = yield Join(proc)
        if proc.cancelled or d in state["winner"]:
            return  # a cancelled loser, or the rival already claimed
        engine = cluster.engine
        state["winner"][d] = kind
        state["durations"][d] = engine.now - state["start"][d]
        state["open"].discard(d)
        state["busy"].discard(shard.domain)
        part_name = f"{self.output_name}.shard{d}"
        spec_stage_name = f"{self.output_name}.stage{d}.spec"
        for rproc, rshard, rkind in state["attempts"][d]:
            if rproc is proc:
                continue
            if not rproc.done:
                engine.cancel_tree(rproc)
            state["busy"].discard(rshard.domain)
            rname = part_name if rkind == "primary" else f"{part_name}.spec"
            self._scrub_partials(rshard, rname)
            self._sorted_log(rshard, d).discard()
            if rkind == "spec" and rshard.fs.exists(spec_stage_name):
                self._forget_and_delete(rshard, spec_stage_name)
        if kind == "spec":
            cluster.faults.speculative_wins += 1
            if shard.fs.exists(spec_stage_name):
                shard.fs.delete(spec_stage_name)
            shard.fs.rename(output.name, part_name)
            if cluster.tracer is not None:
                cluster.tracer.instant(
                    "speculation-win", cat="spec", track="cluster",
                    dest=d, domain=shard.domain,
                )
        if self.checkpoint:
            yield from self._save_sorted(shard, d, output)
        outputs[d] = output
        done.release()

    def _spec_monitor(self, cluster, stagings, arbiter, state, done, outputs):
        """Poll predicted finishes; re-issue stragglers on idle shards.

        Detection uses the fluid kernel's scheduled horizon for the
        straggler's resource group (bit-identical between the scalar
        and vector kernels), calibrated against the slowest *completed*
        partition -- so speculation never triggers before at least one
        partition has finished.
        """
        engine = cluster.engine
        fluid = engine.fluid
        while state["open"]:
            yield Sleep(self._monitor_step(engine, fluid, state))
            if not state["open"] or not state["durations"]:
                continue
            threshold = self.spec_factor * max(state["durations"].values())
            for d in sorted(state["open"]):
                attempts = state["attempts"][d]
                if len(attempts) > 1:
                    continue  # one speculative copy per partition
                proc, home, _kind = attempts[0]
                if proc.done:
                    continue
                horizon = fluid.predicted_horizon(home.domain)
                eta = max(engine.now, horizon if horizon is not None else 0.0)
                if eta - state["start"][d] <= threshold:
                    continue
                spare = self._idle_shard(cluster, state)
                if spare is None:
                    continue
                state["busy"].add(spare.domain)
                cluster.faults.speculative_issues += 1
                if cluster.tracer is not None:
                    cluster.tracer.instant(
                        "speculation-issue", cat="spec", track="cluster",
                        dest=d, domain=spare.domain,
                    )
                sproc = yield Spawn(
                    self._speculative_attempt(
                        cluster, d, home, spare, stagings[d], arbiter
                    ),
                    name=f"spec:part{d}@{spare.domain}",
                )
                attempts.append((sproc, spare, "spec"))
                yield Spawn(
                    self._watch_attempt(
                        cluster, d, sproc, spare, "spec", state, done, outputs
                    ),
                    name=f"watch:spec{d}",
                )

    def _monitor_step(self, engine, fluid, state) -> float:
        """The next poll delay (simulated seconds), derived when unset."""
        if self.spec_interval is not None:
            return self.spec_interval
        horizon = None
        for d in sorted(state["open"]):
            _proc, shard, _kind = state["attempts"][d][-1]
            h = fluid.predicted_horizon(shard.domain)
            if h is not None and (horizon is None or h > horizon):
                horizon = h
        if horizon is not None and horizon > engine.now:
            step = (horizon - engine.now) / 8.0
        elif state["durations"]:
            step = max(state["durations"].values()) / 8.0
        else:
            # Bootstrap: the monitor's first poll can race the attempts'
            # first op issues (no horizon yet); re-poll on the clock's
            # own scale so the adaptive step engages almost immediately.
            step = max(engine.now, 1e-9) / 64.0
        # A step below the clock's float spacing would not advance time
        # and the monitor would spin at one instant forever.
        return max(step, engine.now * 1e-9, 1e-12)

    def _idle_shard(self, cluster, state):
        """First shard with no running attempt: a spare (possibly
        admitted mid-run) or a home whose partition already finished.
        Reads the live shard list, so elastic scale-out is visible."""
        for shard in cluster.shards:
            if shard.domain not in state["busy"]:
                return shard
        return None

    def _speculative_attempt(self, cluster, d, home, spare, staging, arbiter):
        """Copy the straggler's staging to ``spare`` and sort it there."""
        arbiter.ensure(spare.domain)
        stage = yield from self._relocate_staging(
            cluster, home, spare, staging,
            f"{self.output_name}.stage{d}.spec", arbiter, tag="SPEC",
        )
        self._scrub_partials(spare, f"{self.output_name}.shard{d}.spec")
        output = yield from self._sort_attempt(
            spare, stage, f"{self.output_name}.shard{d}.spec"
        )
        return output

    def _relocate_staging(self, cluster, src, dst, staging, name, arbiter, tag):
        """Stream a staging file from ``src`` to ``dst`` over the wire.

        Deliberately slot-free (see module docstring): the destination
        is idle by construction and a cancelled copy must not die
        holding a write-pool admission slot.
        """
        if dst.fs.exists(name):
            self._forget_and_delete(dst, name)
        copy = dst.fs.create(name)
        read_threads = arbiter.controller(src.domain).read_threads(Pattern.SEQ)
        write_threads = arbiter.write_threads(dst.domain)
        rec = self.fmt.record_size
        chunk = max(1, self.config.read_buffer // rec) * rec
        for offset in range(0, staging.size, chunk):
            nbytes = min(chunk, staging.size - offset)
            data = yield staging.read(
                offset, nbytes, tag=f"{tag} read", threads=read_threads
            )
            write_op = copy.write(
                offset, data, tag=f"{tag} write", threads=write_threads
            )
            if cluster.network is not None:
                yield ParallelOps(
                    [
                        write_op,
                        cluster.net_op(
                            src.domain, dst.domain, nbytes, tag=f"{tag} net"
                        ),
                    ]
                )
            else:
                yield write_op
        return copy

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _execute_recover(self, cluster, sharded_input) -> ShardedFile:
        if not self.checkpoint:
            raise RecoveryError(
                f"{self.name} cannot recover without checkpoint=True"
            )
        homes = self._homes(cluster, sharded_input)
        n_parts = len(homes)
        rec = self.fmt.record_size
        metrics = {
            "salvaged_bytes": 0,
            "redone_bytes": 0,
            "partitions_salvaged": 0,
            "partitions_redone": 0,
        }
        payload = self._plan_log(homes[0]).load()
        if payload is None:
            # The plan never committed: nothing partition-granular is
            # durable, so scrub all run files and start over.
            self._scrub_run_files(cluster)
            self.last_recovery = metrics
            return self._execute(cluster, sharded_input)
        if (
            int(payload.get("n_parts", -1)) != n_parts
            or int(payload.get("record_size", -1)) != rec
        ):
            raise RecoveryError("plan manifest does not match this run")
        splitters = unpack_entries(payload["splitters"], self.fmt.key_size)
        counts = np.asarray(payload["counts"], dtype=np.int64).reshape(
            n_parts, n_parts
        )
        self.splitters = splitters
        self.shuffle_counts = counts

        outputs: List = [None] * n_parts
        salvaged = set()
        for d in range(n_parts):
            # The sorted manifest may live on any shard (a pre-crash
            # speculative win runs on a spare).
            for shard in cluster.shards:
                p = self._sorted_log(shard, d).load()
                if not p:
                    continue
                name = p.get("output", "")
                if (
                    shard.fs.exists(name)
                    and shard.fs.open(name).size == int(p.get("size", -1))
                ):
                    outputs[d] = shard.fs.open(name)
                    salvaged.add(d)
                    metrics["salvaged_bytes"] += int(p["size"])
                    break
        pending_sources = []
        if len(salvaged) < n_parts:
            for s, shard in enumerate(homes):
                if self._scatter_log(shard, s).load() is None:
                    pending_sources.append(s)
                else:
                    metrics["salvaged_bytes"] += int(counts[s].sum()) * rec
        stagings = []
        for d, shard in enumerate(homes):
            name = f"{self.output_name}.stage{d}"
            stagings.append(
                shard.fs.open(name) if shard.fs.exists(name)
                else shard.fs.create(name)
            )
        metrics["partitions_salvaged"] = len(salvaged)
        metrics["partitions_redone"] = n_parts - len(salvaged)
        arbiter = WritePoolArbiter(cluster)
        cluster.run(
            self._recover_drive(
                cluster, homes, sharded_input, stagings, arbiter, outputs,
                salvaged, pending_sources, splitters, counts, metrics,
            ),
            name=f"recover-{self.system}",
        )
        for d, shard in enumerate(homes):
            if shard.fs.exists(stagings[d].name):
                shard.fs.delete(stagings[d].name)
        self._discard_manifests(cluster)
        self.last_recovery = metrics
        return ShardedFile(self.output_name, outputs)

    def _recover_drive(
        self, cluster, homes, sharded_input, stagings, arbiter, outputs,
        salvaged, pending_sources, splitters, counts, metrics,
    ):
        rec = self.fmt.record_size
        n_parts = len(homes)

        # -- Re-scatter uncommitted sources (idempotent: reserved
        #    offsets overwrite any torn bytes with identical content) --
        if pending_sources and len(salvaged) < n_parts:
            procs = []
            for s in pending_sources:
                shard = homes[s]
                ctrl = arbiter.controller(shard.domain)
                proc = yield Spawn(
                    self._gather_keys(shard, sharded_input.parts[s], ctrl),
                    name=f"replan:{shard.domain}",
                )
                procs.append(proc)
            keys_list = yield Join(procs)
            bases = np.zeros((n_parts, n_parts), dtype=np.int64)
            bases[1:] = np.cumsum(counts[:-1], axis=0)
            bases *= rec
            redone = [0]
            sprocs = []
            for s, keys in zip(pending_sources, keys_list):
                pids = self._partition_ids(keys, splitters)
                fresh = (
                    np.bincount(pids, minlength=n_parts)
                    if pids.size
                    else np.zeros(n_parts, dtype=np.int64)
                )
                if not np.array_equal(fresh, counts[s]):
                    raise RecoveryError(
                        f"source {s} partition counts diverge from the "
                        f"plan manifest"
                    )
                shard = homes[s]
                ctrl = arbiter.controller(shard.domain)
                proc = yield Spawn(
                    self._shuffle_source(
                        cluster, homes, sharded_input.parts[s], pids,
                        bases[s].copy(), stagings, arbiter, ctrl,
                        shard.domain,
                        scatter_log=self._scatter_log(shard, s),
                        src_index=s,
                        skip_dests=frozenset(salvaged),
                        redone=redone,
                    ),
                    name=f"rescatter:{shard.domain}",
                )
                sprocs.append(proc)
            yield Join(sprocs)
            metrics["redone_bytes"] += redone[0]

        # -- Re-sort lost partitions, spares first ----------------------
        spares = [m for m in cluster.shards if m not in homes]
        procs = []
        for d, home in enumerate(homes):
            if d in salvaged:
                continue
            part_name = f"{self.output_name}.shard{d}"
            self._scrub_partials(home, part_name)
            expected = int(counts[:, d].sum()) * rec
            if expected == 0:
                outputs[d] = home.fs.create(part_name)
                continue
            if stagings[d].size != expected:
                raise RecoveryError(
                    f"partition {d} staging is incomplete "
                    f"({stagings[d].size} of {expected} bytes)"
                )
            metrics["redone_bytes"] += expected
            exec_shard = spares.pop(0) if spares else home
            proc = yield Spawn(
                self._recover_partition(
                    cluster, d, home, exec_shard, stagings[d], arbiter,
                    part_name,
                ),
                name=f"resort:{exec_shard.domain}",
            )
            procs.append((d, proc))
        if procs:
            results = yield Join([p for _d, p in procs])
            for (d, _p), output in zip(procs, results):
                outputs[d] = output

    def _recover_partition(
        self, cluster, d, home, exec_shard, staging, arbiter, part_name
    ):
        """Re-sort one lost partition on its home or a spare shard."""
        if exec_shard is home:
            output = yield from self._sort_attempt(home, staging, part_name)
            shard = home
        else:
            arbiter.ensure(exec_shard.domain)
            self._scrub_partials(exec_shard, part_name)
            stage = yield from self._relocate_staging(
                cluster, home, exec_shard, staging,
                f"{self.output_name}.stage{d}.recover", arbiter,
                tag="RECOVER",
            )
            output = yield from self._sort_attempt(
                exec_shard, stage, part_name
            )
            exec_shard.fs.delete(stage.name)
            shard = exec_shard
        # Commit immediately: recovery itself can crash, and the next
        # pass then salvages this partition instead of redoing it.
        yield from self._save_sorted(shard, d, output)
        return output

    # ------------------------------------------------------------------
    # Manifest and partial-file bookkeeping
    # ------------------------------------------------------------------
    def _plan_log(self, shard) -> CheckpointLog:
        return CheckpointLog(shard.fs, f"{self.output_name}.plan.manifest")

    def _scatter_log(self, shard, s: int) -> CheckpointLog:
        return CheckpointLog(shard.fs, f"{self.output_name}.scatter{s}.manifest")

    def _sorted_log(self, shard, d: int) -> CheckpointLog:
        return CheckpointLog(shard.fs, f"{self.output_name}.sorted{d}.manifest")

    def _discard_manifests(self, cluster) -> None:
        """Drop every manifest of this run (end of a successful sort)."""
        prefix = f"{self.output_name}."
        for shard in cluster.shards:
            for name in shard.fs.list():
                if name.startswith(prefix) and ".manifest" in name:
                    shard.fs.delete(name)

    def _scrub_run_files(self, cluster) -> None:
        """Delete every file this run created, on every shard."""
        prefix = f"{self.output_name}."
        for shard in cluster.shards:
            for name in shard.fs.list():
                if name.startswith(prefix):
                    self._forget_and_delete(shard, name)

    def _scrub_partials(self, shard, part_name: str) -> None:
        """Delete one attempt's output and temp files (``name`` and
        ``name.*``), e.g. after cancelling a speculative loser."""
        prefix = part_name + "."
        for name in shard.fs.list():
            if name == part_name or name.startswith(prefix):
                self._forget_and_delete(shard, name)

    def _forget_and_delete(self, shard, name: str) -> None:
        """Delete a file and drop any in-flight fault tracking on it
        (a deleted partial must not be torn by a later crash)."""
        f = shard.fs.open(name)
        if shard.faults is not None:
            shard.faults.forget_file(f)
        shard.fs.delete(name)
