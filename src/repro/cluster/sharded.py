"""Range-partitioned sorting across cluster shards.

``ShardedWiscSort`` turns N per-shard input files into N per-shard
sorted outputs whose concatenation is byte-identical to what a single
device running WiscSort over the whole dataset would produce:

1. **Plan** -- every shard gathers its key column (the strided key
   gather WiscSort itself uses) and the driver picks ``N-1`` splitters
   from deterministic stride samples of those keys (no RNG: the same
   input always yields the same splitters).
2. **Shuffle** -- each source shard streams its records sequentially,
   splits every batch by partition id, and writes each slice into the
   destination shard's staging file at a *reserved* offset.  Offsets
   are precomputed from the per-(source, dest) record counts so staging
   content lands in global input order no matter how the concurrent
   writes interleave in time -- timing and content are fully decoupled,
   which is what keeps the merged output deterministic and stable.
   Writes into each destination device are admitted one at a time by
   the :class:`~repro.core.controller.WritePoolArbiter`, each using the
   destination's calibrated write-pool thread count (the paper's write
   discipline, extended across shards).
3. **Sort** -- every shard runs an unmodified per-shard sort (WiscSort
   by default, any registered system exposing ``sort_process``) over
   its staging file; the per-shard sorts run concurrently on the shared
   engine.

Byte identity argument: partitions are key ranges in shard order (keys
equal to a splitter all land in the same shard), the reserved-offset
shuffle preserves global input order inside each partition, and the
per-shard sort is stable -- so ties keep input order exactly like the
single-device stable sort, and concatenating the shard outputs *is* the
single-device output.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import SortConfig, SortSystem
from repro.core.controller import WritePoolArbiter
from repro.device.profile import Pattern
from repro.errors import ConfigError
from repro.records.format import (
    RecordFormat,
    key_sort_indices,
    leq_mask,
)
from repro.records.validate import validate_sorted_records
from repro.registry import create_system
from repro.sim.engine import Join, ParallelOps, Spawn

from repro.cluster.cluster import Cluster, ShardedFile


class ShardedWiscSort(SortSystem):
    """Cross-shard shuffle + concurrent per-shard sorts on a Cluster."""

    def __init__(
        self,
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
        system: str = "wiscsort",
        output_name: str = "sharded-wiscsort.out",
        oversample: int = 32,
    ):
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else SortConfig()
        #: Registered name of the per-shard sorting system.
        self.system = system
        self.output_name = output_name
        #: Splitter samples per shard boundary (balance knob only --
        #: correctness never depends on where the splitters land).
        if oversample < 1:
            raise ConfigError("oversample must be >= 1")
        self.oversample = oversample
        self.name = f"sharded-{system}[{self.config.concurrency}]"
        #: Chosen splitter keys of the last run ((n_shards-1, key_size)).
        self.splitters: Optional[np.ndarray] = None
        #: Per-(source, dest) record counts of the last shuffle.
        self.shuffle_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _validate(self, cluster, sharded_input, sharded_output) -> int:
        rec = self.fmt.record_size
        inp = sharded_input.merged().reshape(-1, rec)
        out = sharded_output.merged().reshape(-1, rec)
        validate_sorted_records(inp, out, self.fmt.key_size)
        return inp.shape[0]

    def _execute(self, cluster: Cluster, sharded_input: ShardedFile) -> ShardedFile:
        n_shards = len(cluster.shards)
        if len(sharded_input.parts) != n_shards:
            raise ConfigError(
                f"input has {len(sharded_input.parts)} parts for a "
                f"{n_shards}-shard cluster"
            )
        for part in sharded_input.parts:
            if part.size % self.fmt.record_size:
                raise ConfigError(
                    f"part {part.name!r} size is not a multiple of record size"
                )
        arbiter = WritePoolArbiter(cluster)
        stagings = [
            shard.fs.create(f"{self.output_name}.stage{d}")
            for d, shard in enumerate(cluster.shards)
        ]
        outputs: List = [None] * n_shards
        cluster.run(
            self._drive(cluster, sharded_input, stagings, arbiter, outputs),
            name=f"sharded-{self.system}",
        )
        for d, shard in enumerate(cluster.shards):
            shard.fs.delete(stagings[d].name)
        return ShardedFile(self.output_name, outputs)

    # ------------------------------------------------------------------
    def _drive(self, cluster, sharded_input, stagings, arbiter, outputs):
        fmt = self.fmt
        rec = fmt.record_size
        n_shards = len(cluster.shards)

        # -- Plan: concurrent per-shard key gathers ---------------------
        plan_procs = []
        for shard, part in zip(cluster.shards, sharded_input.parts):
            ctrl = arbiter.controller(shard.domain)
            proc = yield Spawn(
                self._gather_keys(shard, part, ctrl), name=f"plan:{shard.domain}"
            )
            plan_procs.append(proc)
        shard_keys = yield Join(plan_procs)

        splitters = self._choose_splitters(shard_keys, n_shards)
        self.splitters = splitters
        pids = [self._partition_ids(keys, splitters) for keys in shard_keys]
        counts = np.zeros((n_shards, n_shards), dtype=np.int64)
        for s in range(n_shards):
            if pids[s].size:
                counts[s] = np.bincount(pids[s], minlength=n_shards)
        self.shuffle_counts = counts

        # Charge the partition scan (classifying every key against the
        # splitters is a DRAM-bandwidth-bound sweep of the key arrays).
        scan_ops = []
        for shard, keys in zip(cluster.shards, shard_keys):
            ctrl = arbiter.controller(shard.domain)
            scan_ops.append(
                shard.copy(
                    keys.shape[0] * fmt.key_size,
                    tag="SHUFFLE partition",
                    cores=ctrl.sort_cores(),
                )
            )
        yield ParallelOps(scan_ops)

        # Reserved staging offsets: source s writes its dest-d records at
        # [base, base + counts[s][d]*rec) where base skips all earlier
        # sources' records -- staging content order == global input order.
        bases = np.zeros((n_shards, n_shards), dtype=np.int64)
        bases[1:] = np.cumsum(counts[:-1], axis=0)
        bases *= rec

        # -- Shuffle: concurrent per-source streaming scatter -----------
        shuffle_procs = []
        for s, (shard, part) in enumerate(zip(cluster.shards, sharded_input.parts)):
            ctrl = arbiter.controller(shard.domain)
            proc = yield Spawn(
                self._shuffle_source(
                    cluster, part, pids[s], bases[s].copy(), stagings, arbiter, ctrl
                ),
                name=f"shuffle:{shard.domain}",
            )
            shuffle_procs.append(proc)
        yield Join(shuffle_procs)

        # -- Sort: unmodified per-shard sorts, concurrently -------------
        sort_procs = []
        for d, shard in enumerate(cluster.shards):
            part_name = f"{self.output_name}.shard{d}"
            if stagings[d].size == 0:
                outputs[d] = shard.fs.create(part_name)
                continue
            system = self._make_shard_system(part_name)
            proc = yield Spawn(
                system.sort_process(shard, stagings[d]), name=f"sort:{shard.domain}"
            )
            sort_procs.append((d, proc))
        if sort_procs:
            results = yield Join([proc for _d, proc in sort_procs])
            for (d, _proc), output in zip(sort_procs, results):
                outputs[d] = output

    # ------------------------------------------------------------------
    def _gather_keys(self, shard, part, ctrl):
        """Per-shard plan step: strided gather of the full key column."""
        fmt = self.fmt
        n = part.size // fmt.record_size
        keys = yield part.read_strided(
            0,
            n,
            fmt.record_size,
            fmt.key_size,
            tag="SHUFFLE plan",
            threads=ctrl.read_threads(Pattern.STRIDED),
        )
        return keys

    def _choose_splitters(self, shard_keys, n_shards: int) -> np.ndarray:
        """Deterministic stride-sampled splitters (no RNG).

        Samples ``oversample * n_shards`` keys per shard at a fixed
        stride, sorts the union, and takes the boundary quantiles.
        """
        key_size = self.fmt.key_size
        if n_shards == 1:
            return np.zeros((0, key_size), dtype=np.uint8)
        target = self.oversample * n_shards
        samples = []
        for keys in shard_keys:
            n = keys.shape[0]
            if n == 0:
                continue
            step = max(1, n // target)
            samples.append(keys[::step])
        if not samples:
            return np.zeros((0, key_size), dtype=np.uint8)
        pool = np.concatenate(samples)
        pool = pool[key_sort_indices(pool)]
        m = pool.shape[0]
        rows = [pool[min(m - 1, (j + 1) * m // n_shards)] for j in range(n_shards - 1)]
        return np.stack(rows)

    def _partition_ids(self, keys: np.ndarray, splitters: np.ndarray) -> np.ndarray:
        """Partition id per key: the count of splitters the key exceeds.

        Keys equal to a splitter stay in the lower shard, so equal keys
        always share a shard -- a precondition for stable-tie byte
        identity with the single-device sort.
        """
        pid = np.zeros(keys.shape[0], dtype=np.int64)
        if keys.shape[0] == 0:
            return pid
        for j in range(splitters.shape[0]):
            pid += ~leq_mask(keys, splitters[j])
        return pid

    def _shuffle_source(self, cluster, part, pids, cursors, stagings, arbiter, ctrl):
        """Stream one source shard, scattering batches to staging files.

        ``cursors`` holds this source's next reserved write offset per
        destination; content placement never depends on op timing.
        """
        fmt = self.fmt
        rec = fmt.record_size
        n_shards = len(cluster.shards)
        chunk_bytes = max(1, self.config.read_buffer // rec) * rec
        read_threads = ctrl.read_threads(Pattern.SEQ)
        row = 0
        for offset in range(0, part.size, chunk_bytes):
            nbytes = min(chunk_bytes, part.size - offset)
            data = yield part.read(
                offset, nbytes, tag="SHUFFLE read", threads=read_threads
            )
            rows = data.reshape(-1, rec)
            batch_pids = pids[row : row + rows.shape[0]]
            row += rows.shape[0]
            for d in range(n_shards):
                slice_rows = rows[batch_pids == d]
                if slice_rows.shape[0] == 0:
                    continue
                dest = cluster.shards[d].domain
                yield arbiter.acquire(dest)
                yield stagings[d].write(
                    int(cursors[d]),
                    slice_rows.reshape(-1),
                    tag="SHUFFLE write",
                    threads=arbiter.write_threads(dest),
                )
                arbiter.release(dest)
                cursors[d] += slice_rows.size

    def _make_shard_system(self, output_name: str):
        system = create_system(self.system, self.fmt, config=self.config)
        if not hasattr(system, "sort_process"):
            raise ConfigError(
                f"system {self.system!r} cannot run as a cluster shard "
                f"process (no sort_process); use a wiscsort variant"
            )
        system.output_name = output_name
        return system
