"""Cluster job scheduler: admission control for concurrent sort jobs.

K independent sort jobs are placed round-robin across shards and run as
concurrent simulated processes on the cluster's shared engine, so jobs
on the same shard contend for its device and every admitted job holds a
DRAM reservation against the one cluster-wide
:class:`~repro.storage.dram.DramTracker` (a tight cluster budget can
push a concurrent WiscSort into MergePass -- exactly the contention the
scheduler exists to arbitrate).

Admission policies are pluggable objects resolved by name through
:func:`repro.registry.get_policy` (see
:mod:`repro.cluster.policies`): ``fifo``, ``fair``, ``edf``,
``backpressure`` and ``shed``.  The batch scheduler never sheds
pre-submitted work -- ``on_arrival`` only applies to the open-loop
:class:`~repro.cluster.service.SortService` -- but the *pick* side of
every policy works here identically.

Each job carries a :class:`~repro.api.RunOptions` describing its run
(system, record count, seed, format/config), the same typed options
object ``api.sort`` and the CLI use, so a job submitted here is
specified exactly like a standalone run.

Per-job metrics follow the queueing literature: ``queue_time`` from
submission to admission, ``service_time`` from admission to completion,
and ``slowdown`` = (queue + service) / service.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import RunOptions
from repro.core.base import SortConfig
from repro.errors import ConfigError, DramBudgetError
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.records.validate import validate_sorted_file
from repro.registry import create_system, get_policy
from repro.sim.engine import Now, Spawn
from repro.sim.primitives import Semaphore

from repro.cluster.cluster import Cluster
from repro.cluster.policies import SchedulingContext


class Job:
    """One sort job: a dataset on one shard plus its lifecycle metrics."""

    def __init__(
        self,
        name: str,
        tenant: str,
        system: str,
        n_records: int,
        seed: int,
        dram_bytes: int,
        seq: int = 0,
        deadline: Optional[float] = None,
        options: Optional[RunOptions] = None,
    ):
        self.name = name
        self.tenant = tenant
        self.system = system
        self.n_records = n_records
        self.seed = seed
        #: DRAM reserved for the job's whole residency (IndexMap + buffers).
        self.dram_bytes = dram_bytes
        #: Submission sequence number: the total tie-break for policies.
        self.seq = seq
        #: Absolute deadline in simulated seconds (None = best effort).
        self.deadline = deadline
        #: The typed per-run options this job was specified with.
        self.options = options
        self.shard = None
        self.input_file = None
        self.output_file = None
        self.submit_time: float = 0.0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Set by the service when the job was dropped at arrival.
        self.shed = False

    @property
    def queue_time(self) -> float:
        if self.start_time is None:
            return 0.0
        return self.start_time - self.submit_time

    @property
    def service_time(self) -> float:
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def latency(self) -> float:
        """Submission-to-completion time (the service SLO metric)."""
        if self.finish_time is None:
            return 0.0
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        service = self.service_time
        if service <= 0.0:
            return 1.0
        return (self.finish_time - self.submit_time) / service

    @property
    def missed_deadline(self) -> bool:
        if self.deadline is None or self.finish_time is None:
            return False
        return self.finish_time > self.deadline

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.name!r}, tenant={self.tenant!r}, system={self.system!r})"


class JobScheduler:
    """Admits submitted jobs onto cluster shards under one DRAM pool."""

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "fifo",
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
    ):
        #: Policy *name* (kept for display); the object drives decisions.
        self.policy = policy
        self._policy = get_policy(policy)()
        self.cluster = cluster
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else cluster.config
        self.jobs: List[Job] = []
        self._rr = 0
        self._seq = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        system: Optional[str] = None,
        n_records: Optional[int] = None,
        seed: Optional[int] = None,
        tenant: str = "default",
        dram_bytes: Optional[int] = None,
        deadline: Optional[float] = None,
        options: Optional[RunOptions] = None,
    ) -> Job:
        """Queue one job; its dataset is generated on its shard now.

        ``options`` supplies the run's system/records/seed defaults as a
        typed :class:`~repro.api.RunOptions`; the loose keywords
        override individual fields (and keep the historical defaults --
        ``wiscsort``, 100k records, seed 0 -- when neither is given).
        ``dram_bytes`` defaults to the job's IndexMap footprint plus its
        I/O buffers -- the reservation WiscSort needs resident for an
        OnePass sort.  ``deadline`` is an *absolute* simulated time.
        """
        if system is None:
            system = options.system if options is not None else "wiscsort"
        if n_records is None:
            n_records = options.records if options is not None else 100_000
        if seed is None:
            seed = options.seed if options is not None else 0
        if n_records < 1:
            raise ConfigError("a job needs at least one record")
        if dram_bytes is None:
            dram_bytes = (
                n_records * self.fmt.index_entry_size
                + self.config.read_buffer
                + self.config.write_buffer
            )
        budget = self.cluster.dram.budget
        if budget is not None and dram_bytes > budget:
            raise DramBudgetError(
                f"job {name!r} reserves {dram_bytes} B but the cluster "
                f"DRAM budget is {budget} B; it can never be admitted"
            )
        run_options = (options if options is not None else RunOptions()).replace(
            system=system,
            records=n_records,
            seed=seed,
            fmt=self.fmt,
            config=self.config,
        )
        shard = self.cluster.shards[self._rr % len(self.cluster.shards)]
        self._rr += 1
        job = Job(
            name, tenant, system, n_records, seed, dram_bytes,
            seq=self._seq, deadline=deadline, options=run_options,
        )
        self._seq += 1
        job.shard = shard
        job.input_file = generate_dataset(
            shard, f"{name}.in", n_records, self.fmt, seed=seed
        )
        job.submit_time = self.cluster.now
        self.jobs.append(job)
        return job

    def run(self, validate: bool = True) -> List[Job]:
        """Drive every submitted job to completion; returns the jobs.

        ``validate`` checks each job's output post-run (untimed).
        """
        if not self.jobs:
            return []
        self.cluster.run(self._admission(), name=f"scheduler[{self.policy}]")
        tracer = self.cluster.engine.tracer
        if tracer is not None:
            # Retrospective queue/service spans: endpoints are only all
            # known once every job has finished.
            for job in self.jobs:
                if job.start_time is None or job.finish_time is None:
                    continue
                if job.start_time > job.submit_time:
                    tracer.add_complete_span(
                        f"queued:{job.name}", job.submit_time, job.start_time,
                        cat="queue", track="scheduler", proc=job.name,
                        tenant=job.tenant,
                    )
                tracer.add_complete_span(
                    f"service:{job.name}", job.start_time, job.finish_time,
                    cat="service", track="scheduler", proc=job.name,
                    tenant=job.tenant, shard=job.shard.domain,
                )
        if validate:
            for job in self.jobs:
                validate_sorted_file(job.input_file, job.output_file, self.fmt)
        return self.jobs

    # ------------------------------------------------------------------
    def _context(
        self,
        service: Dict[str, float],
        in_service: Dict[str, int],
        running: int,
    ) -> SchedulingContext:
        dram = self.cluster.dram
        return SchedulingContext(
            now=self.cluster.now,
            fits=lambda job: dram.would_fit(job.dram_bytes),
            service=service,
            in_service=in_service,
            running=running,
            dram_budget=dram.budget,
            dram_available=dram.available,
        )

    def _admission(self):
        """The admission loop as one simulated process."""
        pending = list(self.jobs)
        done = Semaphore(self.cluster.engine, 0, name="scheduler-done")
        service: Dict[str, float] = {}
        in_service: Dict[str, int] = {}
        for job in pending:
            service.setdefault(job.tenant, 0.0)
            in_service.setdefault(job.tenant, 0)
        running = 0
        tracer = self.cluster.engine.tracer
        if tracer is not None:
            tracer.counter_sample("scheduler", "queue_depth", float(len(pending)))
        while pending or running:
            while pending:
                ctx = self._context(service, in_service, running)
                job = self._policy.pick(pending, ctx)
                if job is None or not ctx.fits(job):
                    if running == 0:
                        stuck = job if job is not None else pending[0]
                        raise DramBudgetError(
                            f"job {stuck.name!r} needs {stuck.dram_bytes} B "
                            f"but only {self.cluster.dram.available} B remain "
                            f"with no job left to finish"
                        )
                    break
                pending.remove(job)
                self.cluster.dram.allocate(job.dram_bytes)
                in_service[job.tenant] += 1
                job.start_time = yield Now()
                if tracer is not None:
                    tracer.counter_sample(
                        "scheduler", "queue_depth", float(len(pending))
                    )
                    tracer.instant(
                        "admit", cat="scheduler", track="scheduler",
                        job=job.name, tenant=job.tenant, shard=job.shard.domain,
                    )
                yield Spawn(
                    self._job_body(job, done, service, in_service),
                    name=f"job:{job.name}",
                )
                running += 1
            yield done.acquire()
            running -= 1

    def _job_body(
        self,
        job: Job,
        done: Semaphore,
        service: Dict[str, float],
        in_service: Dict[str, int],
    ):
        options = job.options if job.options is not None else RunOptions(
            system=job.system, records=job.n_records, seed=job.seed,
            fmt=self.fmt, config=self.config,
        )
        system = create_system(
            options.system, options.record_format, config=options.sort_config
        )
        if not hasattr(system, "sort_process"):
            raise ConfigError(
                f"system {job.system!r} cannot run as a scheduled job "
                f"(no sort_process); use a wiscsort variant"
            )
        system.output_name = f"{job.name}.out"
        output = yield from system.sort_process(job.shard, job.input_file)
        job.output_file = output
        job.finish_time = yield Now()
        self.cluster.dram.free(job.dram_bytes)
        service[job.tenant] += job.service_time
        in_service[job.tenant] -= 1
        done.release()
