"""Cluster job scheduler: admission control for concurrent sort jobs.

K independent sort jobs are placed round-robin across shards and run as
concurrent simulated processes on the cluster's shared engine, so jobs
on the same shard contend for its device and every admitted job holds a
DRAM reservation against the one cluster-wide
:class:`~repro.storage.dram.DramTracker` (a tight cluster budget can
push a concurrent WiscSort into MergePass -- exactly the contention the
scheduler exists to arbitrate).

Admission policies:

* ``fifo`` -- strict submission order with head-of-line blocking: if the
  oldest pending job's reservation does not fit, nothing younger may
  jump the queue.
* ``fair`` -- least-attained-service fair share: among tenants with
  pending work, admit the next job of the tenant that has accumulated
  the least service time (ties break by tenant name), stalling when the
  chosen job does not fit.

Per-job metrics follow the queueing literature: ``queue_time`` from
submission to admission, ``service_time`` from admission to completion,
and ``slowdown`` = (queue + service) / service.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base import SortConfig
from repro.errors import ConfigError, DramBudgetError
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.records.validate import validate_sorted_file
from repro.registry import create_system
from repro.sim.engine import Now, Spawn
from repro.sim.primitives import Semaphore

from repro.cluster.cluster import Cluster

POLICIES = ("fifo", "fair")


class Job:
    """One sort job: a dataset on one shard plus its lifecycle metrics."""

    def __init__(
        self,
        name: str,
        tenant: str,
        system: str,
        n_records: int,
        seed: int,
        dram_bytes: int,
    ):
        self.name = name
        self.tenant = tenant
        self.system = system
        self.n_records = n_records
        self.seed = seed
        #: DRAM reserved for the job's whole residency (IndexMap + buffers).
        self.dram_bytes = dram_bytes
        self.shard = None
        self.input_file = None
        self.output_file = None
        self.submit_time: float = 0.0
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

    @property
    def queue_time(self) -> float:
        if self.start_time is None:
            return 0.0
        return self.start_time - self.submit_time

    @property
    def service_time(self) -> float:
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> float:
        service = self.service_time
        if service <= 0.0:
            return 1.0
        return (self.finish_time - self.submit_time) / service

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.name!r}, tenant={self.tenant!r}, system={self.system!r})"


class JobScheduler:
    """Admits submitted jobs onto cluster shards under one DRAM pool."""

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "fifo",
        fmt: Optional[RecordFormat] = None,
        config: Optional[SortConfig] = None,
    ):
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown scheduling policy {policy!r}; choices: "
                + ", ".join(POLICIES)
            )
        self.cluster = cluster
        self.policy = policy
        self.fmt = fmt if fmt is not None else RecordFormat()
        self.config = config if config is not None else cluster.config
        self.jobs: List[Job] = []
        self._rr = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        system: str = "wiscsort",
        n_records: int = 100_000,
        seed: int = 0,
        tenant: str = "default",
        dram_bytes: Optional[int] = None,
    ) -> Job:
        """Queue one job; its dataset is generated on its shard now.

        ``dram_bytes`` defaults to the job's IndexMap footprint plus its
        I/O buffers -- the reservation WiscSort needs resident for an
        OnePass sort.
        """
        if n_records < 1:
            raise ConfigError("a job needs at least one record")
        if dram_bytes is None:
            dram_bytes = (
                n_records * self.fmt.index_entry_size
                + self.config.read_buffer
                + self.config.write_buffer
            )
        budget = self.cluster.dram.budget
        if budget is not None and dram_bytes > budget:
            raise DramBudgetError(
                f"job {name!r} reserves {dram_bytes} B but the cluster "
                f"DRAM budget is {budget} B; it can never be admitted"
            )
        shard = self.cluster.shards[self._rr % len(self.cluster.shards)]
        self._rr += 1
        job = Job(name, tenant, system, n_records, seed, dram_bytes)
        job.shard = shard
        job.input_file = generate_dataset(
            shard, f"{name}.in", n_records, self.fmt, seed=seed
        )
        job.submit_time = self.cluster.now
        self.jobs.append(job)
        return job

    def run(self, validate: bool = True) -> List[Job]:
        """Drive every submitted job to completion; returns the jobs.

        ``validate`` checks each job's output post-run (untimed).
        """
        if not self.jobs:
            return []
        self.cluster.run(self._admission(), name=f"scheduler[{self.policy}]")
        tracer = self.cluster.engine.tracer
        if tracer is not None:
            # Retrospective queue/service spans: endpoints are only all
            # known once every job has finished.
            for job in self.jobs:
                if job.start_time is None or job.finish_time is None:
                    continue
                if job.start_time > job.submit_time:
                    tracer.add_complete_span(
                        f"queued:{job.name}", job.submit_time, job.start_time,
                        cat="queue", track="scheduler", proc=job.name,
                        tenant=job.tenant,
                    )
                tracer.add_complete_span(
                    f"service:{job.name}", job.start_time, job.finish_time,
                    cat="service", track="scheduler", proc=job.name,
                    tenant=job.tenant, shard=job.shard.domain,
                )
        if validate:
            for job in self.jobs:
                validate_sorted_file(job.input_file, job.output_file, self.fmt)
        return self.jobs

    # ------------------------------------------------------------------
    def _admission(self):
        """The admission loop as one simulated process."""
        pending = list(self.jobs)
        done = Semaphore(self.cluster.engine, 0, name="scheduler-done")
        service: Dict[str, float] = {}
        in_service: Dict[str, int] = {}
        for job in pending:
            service.setdefault(job.tenant, 0.0)
            in_service.setdefault(job.tenant, 0)
        running = 0
        tracer = self.cluster.engine.tracer
        if tracer is not None:
            tracer.counter_sample("scheduler", "queue_depth", float(len(pending)))
        while pending or running:
            while pending:
                job = self._pick(pending, service, in_service)
                if not self.cluster.dram.would_fit(job.dram_bytes):
                    if running == 0:
                        raise DramBudgetError(
                            f"job {job.name!r} needs {job.dram_bytes} B but "
                            f"only {self.cluster.dram.available} B remain "
                            f"with no job left to finish"
                        )
                    break
                pending.remove(job)
                self.cluster.dram.allocate(job.dram_bytes)
                in_service[job.tenant] += 1
                job.start_time = yield Now()
                if tracer is not None:
                    tracer.counter_sample(
                        "scheduler", "queue_depth", float(len(pending))
                    )
                    tracer.instant(
                        "admit", cat="scheduler", track="scheduler",
                        job=job.name, tenant=job.tenant, shard=job.shard.domain,
                    )
                yield Spawn(
                    self._job_body(job, done, service, in_service),
                    name=f"job:{job.name}",
                )
                running += 1
            yield done.acquire()
            running -= 1

    def _pick(
        self,
        pending: List[Job],
        service: Dict[str, float],
        in_service: Dict[str, int],
    ) -> Job:
        if self.policy == "fifo":
            return pending[0]
        # fair: least attained service among tenants with pending work;
        # ties break toward the tenant with fewer jobs currently being
        # served (so a burst from one tenant cannot grab every slot
        # before anyone finishes), then by tenant name.
        tenants = []
        for job in pending:
            if job.tenant not in tenants:
                tenants.append(job.tenant)
        chosen = min(tenants, key=lambda t: (service[t], in_service[t], t))
        for job in pending:
            if job.tenant == chosen:
                return job
        raise AssertionError("unreachable: chosen tenant has pending work")

    def _job_body(
        self,
        job: Job,
        done: Semaphore,
        service: Dict[str, float],
        in_service: Dict[str, int],
    ):
        system = create_system(job.system, self.fmt, config=self.config)
        if not hasattr(system, "sort_process"):
            raise ConfigError(
                f"system {job.system!r} cannot run as a scheduled job "
                f"(no sort_process); use a wiscsort variant"
            )
        system.output_name = f"{job.name}.out"
        output = yield from system.sort_process(job.shard, job.input_file)
        job.output_file = output
        job.finish_time = yield Now()
        self.cluster.dram.free(job.dram_bytes)
        service[job.tenant] += job.service_time
        in_service[job.tenant] -= 1
        done.release()
