"""Scale-out: multi-device sharded sorting and a cluster job scheduler.

One shared :class:`~repro.sim.engine.Engine` hosts N device shards (each
a full :class:`~repro.machine.Machine` routed through a
:class:`~repro.sim.domains.DomainRouter`), so concurrent per-shard sorts
contend realistically on their own devices while sharing one simulated
clock and one DRAM pool.

* :class:`Cluster` -- owns the engine, the shards and the shared DRAM.
* :class:`ShardedWiscSort` -- range-partitioning shuffle + per-shard
  WiscSort; merged output is byte-identical to a single-device run.
* :class:`JobScheduler` -- FIFO / fair-share admission of K concurrent
  sort jobs with per-job DRAM reservations and queueing metrics.
"""

from repro.cluster.cluster import Cluster, ClusterStats, ShardedFile, generate_cluster_dataset
from repro.cluster.scheduler import Job, JobScheduler
from repro.cluster.sharded import ShardedWiscSort

__all__ = [
    "Cluster",
    "ClusterStats",
    "ShardedFile",
    "generate_cluster_dataset",
    "Job",
    "JobScheduler",
    "ShardedWiscSort",
]
