"""Scale-out: multi-device sharded sorting and a cluster job scheduler.

One shared :class:`~repro.sim.engine.Engine` hosts N device shards (each
a full :class:`~repro.machine.Machine` routed through a
:class:`~repro.sim.domains.DomainRouter`), so concurrent per-shard sorts
contend realistically on their own devices while sharing one simulated
clock and one DRAM pool.

* :class:`Cluster` -- owns the engine, the shards and the shared DRAM.
* :class:`ShardedWiscSort` -- range-partitioning shuffle + per-shard
  WiscSort; merged output is byte-identical to a single-device run.
* :class:`JobScheduler` -- batch admission of K concurrent sort jobs
  under a registry-resolved policy, with per-job DRAM reservations and
  queueing metrics.
* :class:`SortService` -- the open-loop sort *service*: seeded arrival
  processes, load shedding, deadline accounting and SLO reports (see
  :mod:`repro.cluster.service`).
"""

from repro.cluster.cluster import Cluster, ClusterStats, ShardedFile, generate_cluster_dataset
from repro.cluster.policies import AdmissionPolicy, SchedulingContext
from repro.cluster.scheduler import Job, JobScheduler
from repro.cluster.service import SLO, ServiceReport, SortService, parse_slo
from repro.cluster.sharded import ShardedWiscSort

__all__ = [
    "AdmissionPolicy",
    "Cluster",
    "ClusterStats",
    "SLO",
    "SchedulingContext",
    "ServiceReport",
    "ShardedFile",
    "SortService",
    "generate_cluster_dataset",
    "Job",
    "JobScheduler",
    "ShardedWiscSort",
    "parse_slo",
]
