"""A multi-device cluster: N shards on one shared simulation engine.

Each shard is an ordinary :class:`~repro.machine.Machine` joined to the
cluster's engine through a :class:`~repro.sim.domains.DomainRouter`: the
shard's ops are stamped with its domain key and rated against its own
:class:`~repro.device.device.BraidRateModel`, so devices never interfere
with each other (one NUMA socket per device, as on the paper's testbed)
while everything shares one simulated clock.

Homogeneous clusters share a single profile object and host model across
shards, so the thread-pool controller's calibration cache is hit once
per cluster rather than once per shard.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import SortConfig
from repro.device.host import HostModel
from repro.device.profile import DeviceProfile
from repro.device.stats import TagStats
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import make_records
from repro.registry import get_profile
from repro.sim.domains import DomainRouter
from repro.sim.engine import Engine, SimGenerator
from repro.sim.primitives import Semaphore
from repro.storage.dram import DramTracker
from repro.storage.file import SimFile


class ClusterStats:
    """Aggregate read-only statistics view over all shard devices.

    Duck-types the slice of :class:`~repro.device.stats.DeviceStats`
    that :meth:`repro.core.base.SortSystem._drive_and_harvest` consumes.
    Per-tag aggregates merge shard tables in shard order (deterministic
    float summation); ``busy_time`` sums *device*-busy seconds across
    shards, so overlapping shards legitimately report more busy time
    than wall clock.
    """

    def __init__(self, shards: Sequence[Machine]):
        self._shards = shards

    @property
    def bytes_read_internal(self) -> float:
        return sum(m.stats.bytes_read_internal for m in self._shards)

    @property
    def bytes_written_internal(self) -> float:
        return sum(m.stats.bytes_written_internal for m in self._shards)

    @property
    def tags(self) -> dict:
        merged: dict = {}
        for shard in self._shards:
            for tag, s in shard.stats.tags.items():
                agg = merged.get(tag)
                if agg is None:
                    agg = TagStats()
                    merged[tag] = agg
                agg.busy_time += s.busy_time
                agg.internal_bytes += s.internal_bytes
                agg.user_bytes += s.user_bytes
                agg.op_count += s.op_count
                if s.first_active < agg.first_active:
                    agg.first_active = s.first_active
                if s.last_active > agg.last_active:
                    agg.last_active = s.last_active
                if s.direction:
                    agg.direction = s.direction
                if s.pattern:
                    agg.pattern = s.pattern
        return merged

    def tag_table(self) -> List[Tuple[str, TagStats]]:
        return sorted(self.tags.items(), key=lambda kv: kv[1].first_active)


class Cluster:
    """N device shards behind one engine, one clock and one DRAM pool.

    ``profiles`` takes one entry per shard -- a profile name from the
    registry or a :class:`~repro.device.profile.DeviceProfile` -- for
    heterogeneous clusters (e.g. 2x pmem + 2x bd-device).  Without it,
    ``shards`` homogeneous shards share a single default-pmem profile.
    The cluster duck-types the machine surface sort systems harvest
    (``now`` / ``stats`` / ``faults`` / ``run``), so a
    :class:`~repro.cluster.sharded.ShardedWiscSort` runs on it through
    the ordinary :meth:`~repro.core.base.SortSystem.run` entry point.
    """

    def __init__(
        self,
        shards: int = 2,
        profiles: Optional[Sequence[Union[str, DeviceProfile]]] = None,
        profile: Optional[DeviceProfile] = None,
        host: Optional[HostModel] = None,
        dram_budget: Optional[int] = None,
        config: Optional[SortConfig] = None,
        memoize_rates: bool = True,
    ):
        if profiles is not None:
            resolved = [
                get_profile(p)() if isinstance(p, str) else p for p in profiles
            ]
        else:
            if shards < 1:
                raise ConfigError("a cluster needs at least one shard")
            shared = profile if profile is not None else get_profile("pmem")()
            resolved = [shared] * shards
        if not resolved:
            raise ConfigError("a cluster needs at least one shard")
        self.router = DomainRouter()
        self.engine = Engine(self.router)
        self.host = host if host is not None else HostModel()
        self.dram = DramTracker(dram_budget)
        self.config = config if config is not None else SortConfig()
        self.shards: List[Machine] = [
            Machine(
                profile=prof,
                host=self.host,
                memoize_rates=memoize_rates,
                engine=self.engine,
                domain=f"shard{i}",
                dram=self.dram,
            )
            for i, prof in enumerate(resolved)
        ]
        self.stats = ClusterStats(self.shards)
        #: Cluster-level fault injection is not modelled yet; the None
        #: matches the machine surface result harvesting expects.
        self.faults = None
        #: Installed :class:`repro.analysis.sanitizer.SimSanitizer`, if any.
        self.sanitizer = None
        #: Installed :class:`repro.trace.Tracer`, if any.
        self.tracer = None

    # ------------------------------------------------------------------
    def run(self, gen: SimGenerator, name: str = "cluster-main"):
        """Run a root process on the shared engine; returns its result."""
        proc = self.engine.spawn(gen, name)
        return self.engine.run_until(proc)

    @property
    def now(self) -> float:
        return self.engine.now

    def semaphore(self, count: int = 1, name: str = "") -> Semaphore:
        return Semaphore(self.engine, count, name=name)

    def install_sanitizer(self, trace: bool = False):
        """Install one :class:`~repro.analysis.sanitizer.SimSanitizer`
        across the shared engine and every shard's storage layer."""
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer(trace=trace)
        sanitizer.install_cluster(self)
        return sanitizer

    def install_tracer(self, detail: bool = False):
        """Install one :class:`repro.trace.Tracer` across the shared
        engine: per-shard counter tracks and op attribution, plus a
        cluster-level DRAM-pool track.  Observe-only."""
        from repro.trace import Tracer

        tracer = Tracer(detail=detail)
        tracer.install_cluster(self)
        return tracer

    def trace_span(self, name: str, cat: str = "phase", **args):
        """Cluster-level sim-time span, or a no-op when untraced."""
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.tracer.span(name, cat=cat, track="cluster", **args)

    def describe(self) -> str:
        kinds = ", ".join(m.profile.describe() for m in self.shards)
        return f"cluster[{len(self.shards)} shards]: {kinds}"


class ShardedFile:
    """An ordered set of per-shard :class:`SimFile` parts.

    Shard order *is* global record order: part ``i`` holds the records
    that come before part ``i+1``'s in the logical whole.  ``merged()``
    materialises that whole (untimed -- validation/reporting only).
    """

    def __init__(self, name: str, parts: Sequence[SimFile]):
        self.name = name
        self.parts = list(parts)

    @property
    def size(self) -> int:
        return sum(p.size for p in self.parts)

    def merged(self) -> np.ndarray:
        chunks = [p.peek() for p in self.parts if p.size]
        if not chunks:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedFile({self.name!r}, parts={len(self.parts)}, size={self.size})"


def generate_cluster_dataset(
    cluster: Cluster,
    name: str,
    n_records: int,
    fmt: Optional[RecordFormat] = None,
    seed: int = 0,
) -> ShardedFile:
    """Generate one gensort dataset split contiguously across shards.

    The concatenation of the shard parts in shard order is byte-for-byte
    the dataset a single machine would generate with the same seed, so a
    sharded sort can be checked for byte identity against a single-device
    run of the same ``(n_records, fmt, seed)``.
    """
    fmt = fmt if fmt is not None else RecordFormat()
    records = make_records(n_records, fmt, seed=seed)
    n_shards = len(cluster.shards)
    bounds = [n_records * i // n_shards for i in range(n_shards + 1)]
    parts = []
    for i, shard in enumerate(cluster.shards):
        part = shard.fs.create(f"{name}.shard{i}")
        block = records[bounds[i] : bounds[i + 1]]
        if block.size:
            part.poke(0, block.reshape(-1))
        parts.append(part)
    return ShardedFile(name, parts)
