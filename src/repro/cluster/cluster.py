"""A multi-device cluster: N shards on one shared simulation engine.

Each shard is an ordinary :class:`~repro.machine.Machine` joined to the
cluster's engine through a :class:`~repro.sim.domains.DomainRouter`: the
shard's ops are stamped with its domain key and rated against its own
:class:`~repro.device.device.BraidRateModel`, so devices never interfere
with each other (one NUMA socket per device, as on the paper's testbed)
while everything shares one simulated clock.

Homogeneous clusters share a single profile object and host model across
shards, so the thread-pool controller's calibration cache is hit once
per cluster rather than once per shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import SortConfig
from repro.device.host import HostModel
from repro.device.profile import DeviceProfile
from repro.device.stats import InterconnectStats, TagStats
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import make_records
from repro.registry import get_profile
from repro.sim.domains import DomainRouter
from repro.sim.engine import Engine, SimGenerator
from repro.sim.fluid import FluidOp, NetLinkRateModel
from repro.sim.primitives import Semaphore
from repro.storage.dram import DramTracker
from repro.storage.file import SimFile

#: Reserved DomainRouter key for the interconnect resource; shard
#: domains are ``"shard{i}"`` so the name can never collide.
NET_DOMAIN = "net"

#: Default per-endpoint link bandwidth: one 100 GbE port per shard.
DEFAULT_LINK_BW = 12.5e9


class ClusterStats:
    """Aggregate read-only statistics view over all shard devices.

    Duck-types the slice of :class:`~repro.device.stats.DeviceStats`
    that :meth:`repro.core.base.SortSystem._drive_and_harvest` consumes.
    Per-tag aggregates merge shard tables in shard order (deterministic
    float summation); ``busy_time`` sums *device*-busy seconds across
    shards, so overlapping shards legitimately report more busy time
    than wall clock.
    """

    def __init__(self, shards: Sequence[Machine]):
        self._shards = shards

    @property
    def bytes_read_internal(self) -> float:
        return sum(m.stats.bytes_read_internal for m in self._shards)

    @property
    def bytes_written_internal(self) -> float:
        return sum(m.stats.bytes_written_internal for m in self._shards)

    @property
    def tags(self) -> dict:
        merged: dict = {}
        for shard in self._shards:
            for tag, s in shard.stats.tags.items():
                agg = merged.get(tag)
                if agg is None:
                    agg = TagStats()
                    merged[tag] = agg
                agg.busy_time += s.busy_time
                agg.internal_bytes += s.internal_bytes
                agg.user_bytes += s.user_bytes
                agg.op_count += s.op_count
                if s.first_active < agg.first_active:
                    agg.first_active = s.first_active
                if s.last_active > agg.last_active:
                    agg.last_active = s.last_active
                if s.direction:
                    agg.direction = s.direction
                if s.pattern:
                    agg.pattern = s.pattern
        return merged

    def tag_table(self) -> List[Tuple[str, TagStats]]:
        # Tag name breaks first_active ties, keeping the order total
        # when several tags start at the same instant.
        return sorted(self.tags.items(), key=lambda kv: (kv[1].first_active, kv[0]))


class ClusterFaultState:
    """Cluster-wide fault-injection state: one injector per shard.

    Duck-types the slice of :class:`~repro.faults.injector.FaultInjector`
    that result harvesting consumes (``.stats``), aggregates the
    per-shard injectors behind one facade, and carries the cluster-level
    robustness counters (`shards_recovered`, speculation outcomes)
    surfaced by ``--selfperf``.
    """

    def __init__(self, plan):
        from repro.faults.injector import FaultStats

        self.plan = plan
        #: domain -> FaultInjector (installed via Machine.install_faults).
        self.injectors: Dict[str, object] = {}
        #: Cluster-level ledger: recovery counts and salvage accounting
        #: credited by the harness / result harvesting.
        self.stats = FaultStats()
        self.count_only = False
        self.shards_recovered = 0
        self.speculative_issues = 0
        self.speculative_wins = 0

    @property
    def armed(self) -> bool:
        return any(inj.armed for inj in self.injectors.values())  # reprolint: disable=SIM003 -- any() is order-independent

    def ops_seen(self) -> Dict[str, int]:
        """Per-shard op counts (count-only probe results)."""
        return {dom: inj.stats.ops_seen for dom, inj in self.injectors.items()}

    def as_dict(self) -> Dict[str, float]:
        """Flat counter snapshot: cluster ledger + per-shard injectors."""
        out: Dict[str, float] = {}
        self._flatten("cluster.fault_", self.stats.as_dict(), out)
        out["shards_recovered"] = self.shards_recovered
        out["speculative_issues"] = self.speculative_issues
        out["speculative_wins"] = self.speculative_wins
        for dom in sorted(self.injectors):
            stats = self.injectors[dom].stats
            self._flatten(f"{dom}.fault_", stats.as_dict(), out)
        return out

    @staticmethod
    def _flatten(prefix: str, stats: dict, out: Dict[str, float]) -> None:
        for k, v in stats.items():
            if isinstance(v, dict):
                for k2 in sorted(v):
                    out[f"{prefix}{k}.{k2}"] = v[k2]
            else:
                out[f"{prefix}{k}"] = v


class Cluster:
    """N device shards behind one engine, one clock and one DRAM pool.

    ``profiles`` takes one entry per shard -- a profile name from the
    registry or a :class:`~repro.device.profile.DeviceProfile` -- for
    heterogeneous clusters (e.g. 2x pmem + 2x bd-device).  Without it,
    ``shards`` homogeneous shards share a single default-pmem profile.
    The cluster duck-types the machine surface sort systems harvest
    (``now`` / ``stats`` / ``faults`` / ``run``), so a
    :class:`~repro.cluster.sharded.ShardedWiscSort` runs on it through
    the ordinary :meth:`~repro.core.base.SortSystem.run` entry point.
    """

    def __init__(
        self,
        shards: int = 2,
        profiles: Optional[Sequence[Union[str, DeviceProfile]]] = None,
        profile: Optional[DeviceProfile] = None,
        host: Optional[HostModel] = None,
        dram_budget: Optional[int] = None,
        config: Optional[SortConfig] = None,
        memoize_rates: bool = True,
        link_bw: Optional[float] = DEFAULT_LINK_BW,
    ):
        if profiles is not None:
            resolved = [
                get_profile(p)() if isinstance(p, str) else p for p in profiles
            ]
        else:
            if shards < 1:
                raise ConfigError("a cluster needs at least one shard")
            shared = profile if profile is not None else get_profile("pmem")()
            resolved = [shared] * shards
        if not resolved:
            raise ConfigError("a cluster needs at least one shard")
        self.router = DomainRouter()
        self.engine = Engine(self.router)
        self.host = host if host is not None else HostModel()
        self.dram = DramTracker(dram_budget)
        self.config = config if config is not None else SortConfig()
        self._memoize_rates = memoize_rates
        self.shards: List[Machine] = [
            Machine(
                profile=prof,
                host=self.host,
                memoize_rates=memoize_rates,
                engine=self.engine,
                domain=f"shard{i}",
                dram=self.dram,
            )
            for i, prof in enumerate(resolved)
        ]
        #: Interconnect rate model (max-min fair full-duplex links) and
        #: its byte/timeline recorder.  ``link_bw=None`` disables the
        #: network entirely: cross-shard transfers then cost nothing,
        #: matching pre-interconnect builds.
        if link_bw is not None:
            self.network: Optional[NetLinkRateModel] = NetLinkRateModel(link_bw)
            self.router.add_domain(NET_DOMAIN, self.network)
            self.net_stats: Optional[InterconnectStats] = InterconnectStats()
            self.engine.fluid.interval_observers.append(self.net_stats.observe)
        else:
            self.network = None
            self.net_stats = None
        self.stats = ClusterStats(self.shards)
        #: Installed :class:`ClusterFaultState` (see
        #: :meth:`install_faults`); None matches the machine surface
        #: result harvesting expects.
        self.faults: Optional[ClusterFaultState] = None
        #: Installed :class:`repro.analysis.sanitizer.SimSanitizer`, if any.
        self.sanitizer = None
        #: Installed :class:`repro.trace.Tracer`, if any.
        self.tracer = None
        #: Installed :class:`repro.analysis.race.RaceDetector`, if any.
        self.race = None
        #: Installed :class:`repro.analysis.race.SchedulePermuter`, if any.
        self.schedule_fuzz = None

    # ------------------------------------------------------------------
    def run(self, gen: SimGenerator, name: str = "cluster-main"):
        """Run a root process on the shared engine; returns its result."""
        proc = self.engine.spawn(gen, name)
        return self.engine.run_until(proc)

    @property
    def now(self) -> float:
        return self.engine.now

    def semaphore(
        self, count: int = 1, name: str = "", reason: Optional[str] = None
    ) -> Semaphore:
        return Semaphore(self.engine, count, name=name, reason=reason)

    # ------------------------------------------------------------------
    # Interconnect
    # ------------------------------------------------------------------
    def net_op(
        self, src: str, dst: str, nbytes: float, tag: str = "NET xfer"
    ) -> FluidOp:
        """A timed transfer of ``nbytes`` from shard ``src`` to ``dst``.

        Charged against both endpoints' links by the max-min fair
        :class:`~repro.sim.fluid.NetLinkRateModel`; yield it (typically
        inside a :class:`~repro.sim.engine.ParallelOps` next to the
        destination's device write) to make the shuffle pay for the
        wire.  Raises when the cluster was built with ``link_bw=None``.
        """
        if self.network is None:
            raise ConfigError(
                "cluster has no interconnect (built with link_bw=None)"
            )
        self.net_stats.credit_submission(tag, float(nbytes))
        return FluidOp(
            float(nbytes),
            kind="net",
            tag=tag,
            attrs={"domain": NET_DOMAIN, "src": src, "dst": dst},
        )

    # ------------------------------------------------------------------
    # Fault injection, crash recovery and elasticity
    # ------------------------------------------------------------------
    def install_faults(
        self,
        plan,
        count_only: bool = False,
        counts: Optional[Dict[str, int]] = None,
    ) -> ClusterFaultState:
        """Install a :class:`~repro.faults.plan.FaultPlan` cluster-wide.

        Each shard gets its own injector over the plan's
        :meth:`~repro.faults.plan.FaultPlan.for_shard` slice, so
        ``shardN:``-targeted events hit only their shard while
        untargeted events arm everywhere.  ``counts`` (per-domain op
        totals from a ``count_only`` probe run, see
        :meth:`ClusterFaultState.ops_seen`) resolves fractional
        triggers per shard.
        """
        state = ClusterFaultState(plan)
        state.count_only = count_only
        for shard in self.shards:
            sub = plan.for_shard(shard.domain)
            if counts is not None and sub.needs_probe:
                sub = sub.resolve_fractions(max(1, int(counts.get(shard.domain, 0))))
            state.injectors[shard.domain] = shard.install_faults(
                sub, count_only=count_only
            )
        self.faults = state
        return state

    def shard_by_domain(self, domain: str) -> Machine:
        for shard in self.shards:
            if shard.domain == domain:
                return shard
        raise ConfigError(f"no shard with domain {domain!r}")

    def reboot(self, victim: Union[str, Machine, None] = None) -> Optional[Machine]:
        """Whole-cluster recovery point after a shard crash.

        A :class:`~repro.errors.SimulatedCrash` unwinds the shared event
        loop, so *every* shard's volatile state (in-flight processes,
        DRAM contents, transient degradation) is gone -- only the
        crashed shard additionally lost its in-flight writes (torn by
        the injector).  Mirroring :meth:`repro.machine.Machine.reboot`,
        this replaces the engine (clock carried forward), rebuilds the
        shared DRAM pool, clears degradation, re-registers every
        shard's rate model and observers (plus the interconnect), and
        re-attaches injectors (re-arming unfired timed events), the
        sanitizer and the tracer.  Durable storage -- every shard's
        filesystem -- survives untouched.  Returns the victim shard
        (rebooted in place, ready for re-execution), or None when the
        crash carried no domain.
        """
        shard = None
        if victim is not None:
            shard = (
                victim if isinstance(victim, Machine)
                else self.shard_by_domain(victim)
            )
        now = self.engine.now
        self.router = DomainRouter()
        engine = Engine(self.router, start_time=now)
        for m in self.shards:
            m.rate_model.degrade = 1.0
            self.router.add_domain(m.domain, m.rate_model)
            m.engine = engine
        if self.network is not None:
            self.router.add_domain(NET_DOMAIN, self.network)
            engine.fluid.interval_observers.append(self.net_stats.observe)
        self.engine = engine
        for m in self.shards:
            engine.fluid.interval_observers.append(m._domain_observe)
        self.dram = DramTracker(self.dram.budget)
        for m in self.shards:
            m.dram = self.dram
        for m in self.shards:
            if m.faults is not None:
                # In-flight tracking is volatile: the victim's entries
                # were already torn by the crash, the survivors' eager
                # data is treated as durable (their writes completed
                # from the device's point of view before the cluster
                # lost the engine).
                m.faults.clear_inflight()
                m.faults.attach(m)
        if self.sanitizer is not None:
            self.sanitizer.attach_engine(engine)
        if self.race is not None:
            # Pre-crash coroutines are gone with the old engine: their
            # live clocks are dropped, recorded races survive.
            self.race.attach_engine(engine)
        if self.schedule_fuzz is not None:
            # Same permuter, continuing RNG stream: one seed covers the
            # whole crash-recovery schedule deterministically.
            engine.schedule_fuzz = self.schedule_fuzz
        if self.tracer is not None:
            self.tracer.reattach_cluster(self)
            self.tracer.instant(
                "cluster-reboot",
                cat="fault",
                track="cluster",
                victim=shard.domain if shard is not None else "?",
            )
        return shard

    def add_shard(self, profile: Union[str, DeviceProfile, None] = None) -> Machine:
        """Admit a new shard mid-run (elastic scale-out).

        The shard joins the shared engine, clock, DRAM pool and
        interconnect immediately and is visible to
        :class:`ClusterStats` (which reads the live shard list).  An
        in-progress sharded sort keeps its planned partition count --
        splitters were already chosen -- but can use the newcomer as a
        spare for speculative re-issue and crash re-execution; the
        *next* ``run`` re-plans with the grown shard count.  With a
        fault plan installed the newcomer gets its own injector slice.
        """
        if profile is None:
            prof = self.shards[0].profile
        elif isinstance(profile, str):
            prof = get_profile(profile)()
        else:
            prof = profile
        index = len(self.shards)
        shard = Machine(
            profile=prof,
            host=self.host,
            memoize_rates=self._memoize_rates,
            engine=self.engine,
            domain=f"shard{index}",
            dram=self.dram,
        )
        self.shards.append(shard)
        if self.faults is not None:
            sub = self.faults.plan.for_shard(shard.domain)
            self.faults.injectors[shard.domain] = shard.install_faults(
                sub, count_only=self.faults.count_only
            )
        if self.tracer is not None:
            self.tracer.watch_shard(shard)
            self.tracer.instant(
                "shard-admitted", cat="elastic", track="cluster",
                domain=shard.domain,
            )
        if self.race is not None:
            shard.fs.race = self.race
            shard.race = self.race
        return shard

    def install_sanitizer(self, trace: bool = False):
        """Install one :class:`~repro.analysis.sanitizer.SimSanitizer`
        across the shared engine and every shard's storage layer."""
        from repro.analysis.sanitizer import SimSanitizer

        sanitizer = SimSanitizer(trace=trace)
        sanitizer.install_cluster(self)
        return sanitizer

    def install_race_detector(self):
        """Install one :class:`~repro.analysis.race.RaceDetector` across
        the shared engine and every shard's filesystem.  Observe-only;
        cross-shard conflicts are visible because all shards share one
        engine (and thus one set of vector clocks)."""
        from repro.analysis.race import RaceDetector

        detector = RaceDetector()
        detector.install_cluster(self)
        return detector

    def install_schedule_fuzz(self, seed: int):
        """Permute same-instant scheduling ties on the shared engine
        from ``seed``; survives :meth:`reboot`.  Returns the
        :class:`~repro.analysis.race.SchedulePermuter`."""
        from repro.analysis.race import SchedulePermuter

        permuter = SchedulePermuter(seed)
        self.schedule_fuzz = permuter
        self.engine.schedule_fuzz = permuter
        return permuter

    def install_tracer(self, detail: bool = False):
        """Install one :class:`repro.trace.Tracer` across the shared
        engine: per-shard counter tracks and op attribution, plus a
        cluster-level DRAM-pool track.  Observe-only."""
        from repro.trace import Tracer

        tracer = Tracer(detail=detail)
        tracer.install_cluster(self)
        return tracer

    def trace_span(self, name: str, cat: str = "phase", **args):
        """Cluster-level sim-time span, or a no-op when untraced."""
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.tracer.span(name, cat=cat, track="cluster", **args)

    def describe(self) -> str:
        kinds = ", ".join(m.profile.describe() for m in self.shards)
        return f"cluster[{len(self.shards)} shards]: {kinds}"


class ShardedFile:
    """An ordered set of per-shard :class:`SimFile` parts.

    Shard order *is* global record order: part ``i`` holds the records
    that come before part ``i+1``'s in the logical whole.  ``merged()``
    materialises that whole (untimed -- validation/reporting only).
    """

    def __init__(self, name: str, parts: Sequence[SimFile]):
        self.name = name
        self.parts = list(parts)

    @property
    def size(self) -> int:
        return sum(p.size for p in self.parts)

    def merged(self) -> np.ndarray:
        chunks = [p.peek() for p in self.parts if p.size]
        if not chunks:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(chunks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardedFile({self.name!r}, parts={len(self.parts)}, size={self.size})"


def generate_cluster_dataset(
    cluster: Cluster,
    name: str,
    n_records: int,
    fmt: Optional[RecordFormat] = None,
    seed: int = 0,
) -> ShardedFile:
    """Generate one gensort dataset split contiguously across shards.

    The concatenation of the shard parts in shard order is byte-for-byte
    the dataset a single machine would generate with the same seed, so a
    sharded sort can be checked for byte identity against a single-device
    run of the same ``(n_records, fmt, seed)``.
    """
    fmt = fmt if fmt is not None else RecordFormat()
    records = make_records(n_records, fmt, seed=seed)
    n_shards = len(cluster.shards)
    bounds = [n_records * i // n_shards for i in range(n_shards + 1)]
    parts = []
    for i, shard in enumerate(cluster.shards):
        part = shard.fs.create(f"{name}.shard{i}")
        block = records[bounds[i] : bounds[i + 1]]
        if block.size:
            part.poke(0, block.reshape(-1))
        parts.append(part)
    return ShardedFile(name, parts)
