"""Tests for the textual resource-usage timeline."""

from __future__ import annotations


from repro.device.profile import Pattern
from repro.machine import Machine
from repro.metrics.timeline import render_timeline, sparkline


class TestSparkline:
    def test_levels_map_to_glyph_heights(self):
        line = sparkline([0.0, 0.5, 1.0], peak=1.0)
        assert len(line) == 3
        assert line[0] == " "
        assert line[2] == "█"
        assert line[0] < line[1] < line[2]

    def test_values_above_peak_clamp(self):
        assert sparkline([5.0], peak=1.0) == "█"

    def test_zero_peak_renders_blank(self):
        assert sparkline([1.0, 2.0], peak=0.0) == "  "


class TestRenderTimeline:
    def test_empty_machine(self, pmem):
        machine = Machine(profile=pmem)
        assert "no activity" in render_timeline(machine)

    def test_zero_duration_run_reports_no_activity(self, pmem):
        # A run that never issues a timed op records no intervals, so
        # the timeline has nothing to bucket.
        machine = Machine(profile=pmem)

        def job():
            return
            yield  # pragma: no cover - makes this a generator

        machine.run(job())
        assert "(no activity recorded)" in render_timeline(machine)

    def test_read_then_write_shapes(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=16)
            yield machine.io("write", Pattern.SEQ, 1 << 24, tag="w", threads=5)

        machine.run(job())
        text = render_timeline(machine, width=20)
        lines = text.splitlines()
        assert len(lines) == 4
        read_row = lines[1].split("|")[1]
        write_row = lines[2].split("|")[1]
        # Reads happen first, writes after: the full blocks do not overlap.
        assert read_row.strip()
        assert write_row.strip()
        first_write = len(write_row) - len(write_row.lstrip())
        last_read = len(read_row.rstrip())
        assert first_write >= last_read - 1

    def test_reports_when_max_seen_exceeds_profile_peak(self, pmem):
        # Interference multipliers / degraded windows can legitimately
        # push observed bandwidth past the nominal class peak; the bar
        # clamps, but the legend must say so instead of hiding it.
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=16)

        machine.run(job())
        read_peak = max(pmem.seq_read.peak, pmem.rand_read.peak)
        machine.stats.timeline.append(
            (machine.now, machine.now * 2.0, read_peak * 2.0, 0.0, 1.0)
        )
        text = render_timeline(machine)
        assert "exceeds profile peak" in text
        assert len(text.splitlines()) == 4

    def test_within_peak_has_no_exceed_marker(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=16)

        machine.run(job())
        assert "exceeds profile peak" not in render_timeline(machine)

    def test_mentions_peaks(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=16)

        machine.run(job())
        text = render_timeline(machine)
        assert "22.2 GB/s" in text
        assert "cpu cores" in text
