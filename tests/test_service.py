"""Tests for the open-loop sort service: determinism, shedding, SLOs.

The small workloads here are sized to finish in seconds of wall clock:
2k-record jobs sort in ~50 simulated microseconds, so a few hundred
arrivals exercise real queueing without real waiting.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.api import RunOptions
from repro.cluster import Cluster, SLO, SortService, parse_slo
from repro.cluster.policies import (
    BackpressurePolicy,
    EdfPolicy,
    SchedulingContext,
    ShedPolicy,
)
from repro.cluster.scheduler import Job, JobScheduler
from repro.errors import ConfigError
from repro.workloads.arrivals import PoissonArrivals, TraceArrivals

#: Admits ~3 concurrent 2k-record jobs (each reserves ~15.8 MB).
BUDGET = 48_000_000


def overload_options(seed=3):
    return RunOptions(records=2_000, seed=seed, dram_budget=BUDGET)


def serve_overloaded(policy, seed=3, **kw):
    """~300 arrivals into a service that drains ~40k jobs/s."""
    return api.serve(
        overload_options(seed), rate=80_000.0, horizon=0.004,
        policy=policy, **kw,
    )


class TestDeterminism:
    def test_two_runs_render_byte_identical(self):
        a = serve_overloaded("fifo").render()
        b = serve_overloaded("fifo").render()
        assert a == b

    def test_json_report_byte_identical(self):
        a = serve_overloaded("shed", queue_cap=8).to_json()
        b = serve_overloaded("shed", queue_cap=8).to_json()
        assert a == b

    @pytest.mark.parametrize("policy", ["fifo", "backpressure"])
    def test_scalar_and_vector_kernels_agree(self, monkeypatch, policy):
        # The vector fluid kernel is pure perf work: the service report
        # (percentiles included) must match float-for-float.
        def run(vector):
            monkeypatch.setenv("REPRO_SIM_VECTOR", "1" if vector else "0")
            rep = api.serve(
                overload_options(), rate=40_000.0, horizon=0.002,
                policy=policy,
            )
            return rep.render(), rep.percentiles
        scalar_render, scalar_pct = run(False)
        vector_render, vector_pct = run(True)
        assert scalar_render == vector_render
        assert scalar_pct == vector_pct

    def test_same_seed_same_job_stream(self):
        jobs_a = serve_overloaded("fifo").jobs
        jobs_b = serve_overloaded("fifo").jobs
        assert [(j.name, j.seed, j.n_records) for j in jobs_a] == \
            [(j.name, j.seed, j.n_records) for j in jobs_b]


class TestAccounting:
    def test_counts_balance(self):
        rep = serve_overloaded("shed", queue_cap=8)
        assert rep.jobs_arrived == rep.jobs_admitted + rep.jobs_shed
        assert rep.jobs_completed == rep.jobs_admitted  # admitted all finish
        assert len(rep.jobs) == rep.jobs_arrived

    def test_shed_policy_sheds_under_overload(self):
        rep = serve_overloaded("shed", queue_cap=8)
        assert rep.jobs_shed > 0
        shed_jobs = [j for j in rep.jobs if j.shed]
        assert len(shed_jobs) == rep.jobs_shed
        assert all(j.finish_time is None for j in shed_jobs)

    def test_shedding_keeps_p99_flat(self):
        queueing = serve_overloaded("fifo")
        shedding = serve_overloaded("shed", queue_cap=8)
        assert shedding.percentiles["latency"]["p99"] < \
            queueing.percentiles["latency"]["p99"] / 2

    def test_backpressure_bounds_dram_backlog(self):
        rep = serve_overloaded("backpressure")
        assert rep.jobs_shed > 0
        assert rep.percentiles["latency"]["p99"] < 0.001

    def test_deadline_misses_counted(self):
        rep = serve_overloaded("fifo", deadline=0.0002)
        missed = [j for j in rep.jobs if j.missed_deadline]
        assert rep.deadline_misses == len(missed)
        assert rep.deadline_misses > 0  # overload makes the tail miss

    def test_no_deadline_no_misses(self):
        rep = serve_overloaded("fifo")
        assert rep.deadline_misses == 0

    def test_underload_has_no_queueing(self):
        rep = api.serve(
            overload_options(), rate=500.0, horizon=0.02, policy="fifo"
        )
        assert rep.jobs_shed == 0
        assert rep.percentiles["queue"]["p99"] == 0.0
        assert rep.ok


class TestSLO:
    def test_parse_grammar(self):
        slo = parse_slo("latency:p99<0.05")
        assert slo.metric == "latency"
        assert slo.percentile == 99.0
        assert slo.threshold == 0.05
        assert parse_slo("slowdown:p999<=10").percentile == 99.9
        assert parse_slo("queue:p50<1e-3").threshold == 1e-3

    def test_parse_rejects_garbage(self):
        for bad in ("latency:p99", "p99<0.5", "latency:q99<0.5",
                    "throughput:p99<5"):
            with pytest.raises(ConfigError):
                parse_slo(bad)

    def test_slo_object_validation(self):
        with pytest.raises(ConfigError):
            SLO(metric="latency", percentile=101.0, threshold=1.0)
        with pytest.raises(ConfigError):
            SLO(metric="latency", percentile=99.0, threshold=1.0, op=">")

    def test_verdicts_in_report(self):
        rep = api.serve(
            overload_options(), rate=500.0, horizon=0.01, policy="fifo",
            slos=("latency:p99<1.0", "latency:p99<1e-9"),
        )
        verdicts = {r["slo"]: r["ok"] for r in rep.slo_results}
        assert verdicts["latency:p99<1"] is True
        assert verdicts["latency:p99<1e-09"] is False
        assert rep.ok is False
        assert "FAIL" in rep.render()


class TestPolicyUnits:
    def _ctx(self, **kw):
        defaults = dict(
            now=0.0, fits=lambda j: True, service={}, in_service={},
            running=0, dram_budget=None, dram_available=None, queue_cap=None,
        )
        defaults.update(kw)
        return SchedulingContext(**defaults)

    def _job(self, name, seq, deadline=None, dram=1):
        return Job(name, "t0", "wiscsort", 10, 0, dram, seq=seq,
                   deadline=deadline)

    def test_edf_picks_earliest_deadline_then_seq(self):
        jobs = [
            self._job("late", 0, deadline=2.0),
            self._job("early", 1, deadline=1.0),
            self._job("none", 2),
            self._job("early-tie", 3, deadline=1.0),
        ]
        policy = EdfPolicy()
        assert policy.pick(jobs, self._ctx()).name == "early"
        jobs.remove(jobs[1])
        assert policy.pick(jobs, self._ctx()).name == "early-tie"
        assert policy.pick([self._job("only", 9)], self._ctx()).name == "only"

    def test_shed_policy_respects_service_queue_cap(self):
        policy = ShedPolicy(queue_cap=64)
        pending = [self._job(f"j{i}", i) for i in range(3)]
        assert policy.on_arrival(self._job("x", 9), pending,
                                 self._ctx(queue_cap=3)) is False
        assert policy.on_arrival(self._job("x", 9), pending,
                                 self._ctx(queue_cap=4)) is True

    def test_backpressure_sheds_on_dram_backlog(self):
        policy = BackpressurePolicy(backlog_factor=2.0)
        pending = [self._job("a", 0, dram=60), self._job("b", 1, dram=60)]
        newcomer = self._job("c", 2, dram=60)
        # backlog = 60 + 60 + 60 = 180 vs 2.0 x budget
        assert policy.on_arrival(
            newcomer, pending, self._ctx(dram_budget=80)) is False
        assert policy.on_arrival(
            newcomer, pending, self._ctx(dram_budget=1000)) is True
        assert policy.on_arrival(
            newcomer, pending, self._ctx(dram_budget=None)) is True

    def test_backpressure_pick_skips_head_of_line(self):
        whale = self._job("whale", 0, dram=100)
        minnow = self._job("minnow", 1, dram=1)
        ctx = self._ctx(fits=lambda j: j.dram_bytes <= 10)
        assert BackpressurePolicy().pick([whale, minnow], ctx).name == "minnow"
        assert BackpressurePolicy().pick([whale], ctx) is None


class TestServiceSurface:
    def test_infinite_process_needs_a_bound(self):
        cluster = Cluster(shards=2)
        service = SortService(cluster)
        with pytest.raises(ConfigError, match="horizon"):
            service.serve(PoissonArrivals(100.0))

    def test_trace_arrivals_run_whole_without_bounds(self):
        rep = api.serve(
            RunOptions(records=1_000, seed=5),
            arrivals=TraceArrivals(
                [{"t": 0.0}, {"t": 1e-5}, {"t": 2e-5}], records=1_000
            ),
        )
        assert rep.jobs_completed == 3

    def test_unknown_arrivals_name_rejected(self):
        with pytest.raises(ConfigError, match="poisson"):
            api.serve(RunOptions(records=100), arrivals="zipf", horizon=0.1)

    def test_faults_and_schedule_fuzz_rejected(self):
        with pytest.raises(ConfigError):
            api.serve(RunOptions(records=100, faults="crash@50%"),
                      horizon=0.01)
        with pytest.raises(ConfigError):
            api.serve(RunOptions(records=100, schedule_seed=1), horizon=0.01)

    def test_unknown_policy_lists_choices(self):
        from repro.errors import UnknownSystemError

        with pytest.raises(UnknownSystemError):
            api.serve(overload_options(), rate=100.0, horizon=0.01,
                      policy="lifo")

    def test_oversized_jobs_are_shed_not_fatal(self):
        # Jobs whose reservation exceeds the whole budget can never be
        # admitted; the service sheds them instead of deadlocking.
        rep = api.serve(
            RunOptions(records=2_000, seed=3, dram_budget=1_000_000),
            rate=1_000.0, horizon=0.01, policy="fifo",
        )
        assert rep.jobs_arrived > 0
        assert rep.jobs_shed == rep.jobs_arrived
        assert rep.jobs_completed == 0


class TestSchedulerIntegration:
    """The batch scheduler shares policies and RunOptions with the service."""

    def test_submit_with_run_options(self):
        cluster = Cluster(shards=2)
        scheduler = JobScheduler(cluster, policy="fifo")
        job = scheduler.submit(
            "j0", options=RunOptions(records=1_000, system="wiscsort", seed=9)
        )
        assert job.n_records == 1_000
        assert job.seed == 9
        assert job.options.system == "wiscsort"
        jobs = scheduler.run()
        assert jobs[0].finish_time is not None

    def test_edf_policy_in_batch_scheduler(self):
        # Budget fits exactly one job's ~15.7 MB reservation, so
        # admissions serialize and the EDF order is observable.
        cluster = Cluster(shards=1, dram_budget=16_000_000)
        scheduler = JobScheduler(cluster, policy="edf")
        # Submitted in anti-deadline order: EDF must admit c, b, a.
        scheduler.submit("a", n_records=1_000, deadline=3.0)
        scheduler.submit("b", n_records=1_000, deadline=2.0)
        scheduler.submit("c", n_records=1_000, deadline=1.0)
        jobs = {j.name: j for j in scheduler.run()}
        assert jobs["c"].start_time < jobs["b"].start_time
        assert jobs["b"].start_time < jobs["a"].start_time

    def test_legacy_submit_surface_unchanged(self):
        cluster = Cluster(shards=2)
        scheduler = JobScheduler(cluster)
        job = scheduler.submit("j0", system="wiscsort", n_records=500,
                               seed=0, tenant="default")
        assert job.n_records == 500
        assert job.options.records == 500
        scheduler.run()
        assert job.slowdown >= 1.0


class TestSLOMonitor:
    """Windowed error-budget burn-rate monitoring."""

    def _monitor(self, **kw):
        from repro.cluster.service import SLOMonitor

        kw.setdefault("window", 1.0)
        kw.setdefault("burn_threshold", 1.0)
        return SLOMonitor(["latency:p50<1.0"], **kw)

    def test_constructor_validation(self):
        from repro.cluster.service import SLOMonitor

        with pytest.raises(ConfigError):
            SLOMonitor(["latency:p99<0.05"], window=0.0)
        with pytest.raises(ConfigError):
            SLOMonitor(["latency:p99<0.05"], burn_threshold=0.0)
        with pytest.raises(ConfigError):
            SLOMonitor(["latency:q99<0.05"])  # bad SLO grammar

    def test_burn_rate_accounting(self):
        mon = self._monitor()
        # Window 0: 4 jobs, 2 violations.  p50 budget is 0.5, so the
        # burn rate is (2/4) / 0.5 = 1.0 -- exactly at the threshold.
        for t, latency in ((0.1, 0.5), (0.2, 2.0), (0.3, 0.5), (0.4, 2.0)):
            mon.observe(t, {"latency": latency})
        mon.finalize()
        assert len(mon.windows) == 1
        row = mon.windows[0]["slos"]["latency:p50<1"]
        assert row == {"total": 4, "violations": 2, "burn": 1.0}
        assert len(mon.alerts) == 1
        alert = mon.alerts[0]
        assert alert["window"] == 0 and alert["t"] == 1.0
        assert alert["burn"] == 1.0

    def test_no_alert_below_threshold(self):
        mon = self._monitor(burn_threshold=2.0)
        for t, latency in ((0.1, 0.5), (0.2, 2.0), (0.3, 0.5), (0.4, 0.5)):
            mon.observe(t, {"latency": latency})
        mon.finalize()
        assert mon.windows[0]["slos"]["latency:p50<1"]["burn"] == 0.5
        assert mon.alerts == []

    def test_observation_in_later_window_closes_earlier(self):
        mon = self._monitor()
        mon.observe(0.5, {"latency": 2.0})
        assert mon.windows == []  # still open
        mon.observe(1.5, {"latency": 0.5})
        assert len(mon.windows) == 1
        mon.finalize()
        assert [w["window"] for w in mon.windows] == [0, 1]

    def test_unknown_metrics_are_ignored(self):
        mon = self._monitor()
        mon.observe(0.1, {"slowdown": 99.0})
        mon.finalize()
        assert mon.windows == []  # nothing counted, window not emitted

    def test_tracer_gets_alert_instants(self):
        from repro.trace import Tracer

        mon = self._monitor()
        mon.tracer = Tracer()
        mon.observe(0.1, {"latency": 5.0})
        mon.finalize()
        events = [ev for ev in mon.tracer.instants if ev["name"] == "slo_alert"]
        assert len(events) == 1
        assert events[0]["args"]["slo"] == "latency:p50<1"

    def test_served_report_carries_burn_and_schema(self):
        from repro.cluster.service import SLOMonitor

        mon = SLOMonitor(["latency:p99<1e-9"], window=0.01,
                         burn_threshold=1.0)
        rep = api.serve(
            overload_options(), rate=500.0, horizon=0.01, policy="fifo",
            monitor=mon,
        )
        doc = rep.as_dict()
        assert doc["schema"] == 1
        assert doc["burn"]["window"] == 0.01
        assert doc["burn"]["alerts"]  # impossible SLO: every job violates
        assert "ALERT" in rep.render()
        assert "burn monitor" in rep.render()

    def test_monitor_is_observe_only(self):
        from repro.cluster.service import SLOMonitor

        base = api.serve(overload_options(), rate=500.0, horizon=0.01,
                         policy="fifo")
        mon = SLOMonitor(["latency:p99<0.05"], window=0.01)
        watched = api.serve(overload_options(), rate=500.0, horizon=0.01,
                            policy="fifo", monitor=mon)
        assert watched.makespan == base.makespan
        assert watched.jobs_completed == base.jobs_completed

    def test_windows_and_alerts_are_deterministic(self):
        from repro.cluster.service import SLOMonitor

        def run():
            mon = SLOMonitor(["latency:p99<1e-9"], window=0.01,
                             burn_threshold=1.0)
            api.serve(overload_options(), rate=500.0, horizon=0.01,
                      policy="fifo", monitor=mon)
            return mon.windows, mon.alerts

        assert run() == run()
