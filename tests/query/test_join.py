"""Tests for the IndexMap-based sort-merge join."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine import Machine
from repro.query.join import indexmap_join
from repro.query.sorted_index import SortedIndex
from repro.records.format import RecordFormat


def build_relation(machine, name, keys, fmt, seed=0):
    """A relation whose i-th row has the given key and a tagged value."""
    rng = np.random.default_rng(seed)
    n = len(keys)
    rows = np.zeros((n, fmt.record_size), dtype=np.uint8)
    for i, key in enumerate(keys):
        rows[i, : fmt.key_size] = np.frombuffer(key, dtype=np.uint8)
    rows[:, fmt.key_size :] = rng.integers(
        0, 256, size=(n, fmt.value_size), dtype=np.uint8
    )
    f = machine.fs.create(name)
    f.poke(0, rows.reshape(-1))
    return f, rows


@pytest.fixture
def fmt4():
    return RecordFormat(key_size=4, value_size=12, pointer_size=4)


def make_key(i: int) -> bytes:
    return int(i).to_bytes(4, "big")


class TestInnerJoin:
    def test_matches_python_join(self, pmem, fmt4):
        machine = Machine(profile=pmem)
        left_keys = [make_key(i) for i in (5, 1, 9, 3, 7)]
        right_keys = [make_key(i) for i in (3, 9, 2, 5, 11)]
        lf, lrows = build_relation(machine, "L", left_keys, fmt4, seed=1)
        rf, rrows = build_relation(machine, "R", right_keys, fmt4, seed=2)
        left = SortedIndex(machine, lf, fmt4).build()
        right = SortedIndex(machine, rf, fmt4).build()
        result = indexmap_join(left, right)

        expected = sorted(set(left_keys) & set(right_keys))
        assert result.matches == len(expected)
        got_keys = [bytes(r[: fmt4.key_size]) for r in result.left_records]
        assert got_keys == expected
        # Joined rows carry the correct full records from both sides.
        for lrec, rrec in zip(result.left_records, result.right_records):
            assert bytes(lrec[: fmt4.key_size]) == bytes(rrec[: fmt4.key_size])
            assert any(np.array_equal(lrec, row) for row in lrows)
            assert any(np.array_equal(rrec, row) for row in rrows)

    def test_duplicate_keys_produce_cross_product(self, pmem, fmt4):
        machine = Machine(profile=pmem)
        lf, _ = build_relation(
            machine, "L", [make_key(1), make_key(1), make_key(2)], fmt4, seed=3
        )
        rf, _ = build_relation(
            machine, "R", [make_key(1), make_key(1), make_key(1)], fmt4, seed=4
        )
        left = SortedIndex(machine, lf, fmt4).build()
        right = SortedIndex(machine, rf, fmt4).build()
        result = indexmap_join(left, right)
        assert result.matches == 2 * 3  # key 1: 2x3 pairs; key 2: none

    def test_disjoint_relations(self, pmem, fmt4):
        machine = Machine(profile=pmem)
        lf, _ = build_relation(machine, "L", [make_key(1)], fmt4)
        rf, _ = build_relation(machine, "R", [make_key(2)], fmt4)
        left = SortedIndex(machine, lf, fmt4).build()
        right = SortedIndex(machine, rf, fmt4).build()
        result = indexmap_join(left, right)
        assert result.matches == 0
        assert result.left_records.shape[0] == 0

    def test_selective_join_gathers_only_matches(self, pmem, fmt4):
        machine = Machine(profile=pmem)
        n = 2_000
        lf, _ = build_relation(
            machine, "L", [make_key(i) for i in range(n)], fmt4, seed=5
        )
        rf, _ = build_relation(
            machine, "R", [make_key(i * 100) for i in range(n // 100)], fmt4, seed=6
        )
        left = SortedIndex(machine, lf, fmt4).build()
        right = SortedIndex(machine, rf, fmt4).build()
        before = machine.stats.tags.get("JOIN gather")
        result = indexmap_join(left, right)
        gathered = machine.stats.tags["JOIN gather"].user_bytes
        # Only matching rows' values moved: 20 matches from each side.
        assert result.matches == n // 100
        assert gathered == 2 * result.matches * fmt4.record_size

    def test_mismatched_key_width_rejected(self, pmem, fmt4):
        machine = Machine(profile=pmem)
        other = RecordFormat(key_size=8, value_size=8, pointer_size=4)
        lf, _ = build_relation(machine, "L", [make_key(1)], fmt4)
        rf = machine.fs.create("R")
        rf.poke(0, np.zeros(other.record_size, dtype=np.uint8))
        left = SortedIndex(machine, lf, fmt4).build()
        right = SortedIndex(machine, rf, other).build()
        with pytest.raises(ConfigError):
            indexmap_join(left, right)

    def test_different_machines_rejected(self, pmem, fmt4):
        m1, m2 = Machine(profile=pmem), Machine(profile=pmem)
        lf, _ = build_relation(m1, "L", [make_key(1)], fmt4)
        rf, _ = build_relation(m2, "R", [make_key(1)], fmt4)
        left = SortedIndex(m1, lf, fmt4).build()
        right = SortedIndex(m2, rf, fmt4).build()
        with pytest.raises(ConfigError):
            indexmap_join(left, right)
