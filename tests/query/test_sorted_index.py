"""Tests for late-materialization queries over a SortedIndex."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.query.sorted_index import SortedIndex
from repro.records.format import RecordFormat, record_sort_indices
from repro.records.gensort import generate_dataset


@pytest.fixture
def indexed(pmem):
    fmt = RecordFormat()
    machine = Machine(profile=pmem)
    relation = generate_dataset(machine, "relation", 5_000, fmt, seed=21)
    index = SortedIndex(machine, relation, fmt).build()
    records = relation.peek().reshape(-1, fmt.record_size)
    expected = records[record_sort_indices(records, fmt.key_size)]
    return machine, index, expected, fmt


class TestBuild:
    def test_build_produces_sorted_imap(self, indexed):
        _, index, expected, fmt = indexed
        assert np.array_equal(index.imap.keys, expected[:, : fmt.key_size])

    def test_build_persists_indexmap_file(self, indexed):
        machine, index, _, _ = indexed
        f = machine.fs.open("relation.indexmap")
        assert f.size == len(index.imap) * index.imap.entry_size

    def test_build_time_recorded(self, indexed):
        _, index, _, _ = indexed
        assert index.build_time > 0

    def test_query_before_build_rejected(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        relation = generate_dataset(machine, "r", 100, fmt, seed=1)
        index = SortedIndex(machine, relation, fmt)
        with pytest.raises(ConfigError):
            index.top_k(5)

    def test_misaligned_relation_rejected(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("r")
        f.poke(0, np.zeros(150, dtype=np.uint8))
        with pytest.raises(ConfigError):
            SortedIndex(machine, f, RecordFormat())


class TestTopK:
    def test_returns_k_smallest_in_order(self, indexed):
        _, index, expected, _ = indexed
        result = index.top_k(25)
        assert np.array_equal(result.records, expected[:25])

    def test_k_larger_than_relation(self, indexed):
        _, index, expected, _ = indexed
        result = index.top_k(10_000)
        assert result.records.shape[0] == 5_000
        assert np.array_equal(result.records, expected)

    def test_k_zero(self, indexed):
        _, index, _, _ = indexed
        assert index.top_k(0).records.shape[0] == 0

    def test_negative_k_rejected(self, indexed):
        _, index, _, _ = indexed
        with pytest.raises(ConfigError):
            index.top_k(-1)

    def test_cost_scales_with_k(self, indexed):
        _, index, _, _ = indexed
        small = index.top_k(10)
        large = index.top_k(2_000)
        assert large.elapsed > small.elapsed
        assert large.bytes_gathered == 200 * small.bytes_gathered

    def test_topk_much_cheaper_than_full_sort(self, pmem):
        # The paper's motivation: TOP-K need not sort+rewrite everything.
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        relation = generate_dataset(machine, "r", 20_000, fmt, seed=3)
        index = SortedIndex(machine, relation, fmt).build()
        query = index.top_k(100)
        machine2 = Machine(profile=pmem)
        relation2 = generate_dataset(machine2, "r", 20_000, fmt, seed=3)
        full = WiscSort(fmt).run(machine2, relation2, validate=False)
        assert index.build_time + query.elapsed < full.total_time / 2


class TestRangeScan:
    def test_matches_python_filter(self, indexed):
        _, index, expected, fmt = indexed
        low = bytes(expected[100, : fmt.key_size])
        high = bytes(expected[400, : fmt.key_size])
        result = index.range_scan(low, high)
        keys = [bytes(r[: fmt.key_size]) for r in expected]
        want = [r for r, k in zip(expected, keys) if low <= k <= high]
        assert result.records.shape[0] == len(want)
        assert np.array_equal(result.records, np.array(want))

    def test_range_is_inclusive(self, indexed):
        _, index, expected, fmt = indexed
        key = bytes(expected[7, : fmt.key_size])
        result = index.range_scan(key, key)
        assert result.records.shape[0] >= 1
        assert all(bytes(r[: fmt.key_size]) == key for r in result.records)

    def test_empty_range(self, indexed):
        _, index, _, fmt = indexed
        lo = b"\x00" * fmt.key_size
        result = index.range_scan(lo, lo)
        # (chance of an all-zero 10-byte key is negligible)
        assert result.records.shape[0] == 0
        assert result.elapsed >= 0

    def test_full_range(self, indexed):
        _, index, expected, fmt = indexed
        result = index.range_scan(b"\x00" * fmt.key_size, b"\xff" * fmt.key_size)
        assert np.array_equal(result.records, expected)

    def test_inverted_range_rejected(self, indexed):
        _, index, _, fmt = indexed
        with pytest.raises(ConfigError):
            index.range_scan(b"\xff" * fmt.key_size, b"\x00" * fmt.key_size)

    def test_wrong_key_width_rejected(self, indexed):
        _, index, _, _ = indexed
        with pytest.raises(ConfigError):
            index.range_scan(b"ab", b"cd")
