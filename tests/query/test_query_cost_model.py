"""Cost-model assertions for the late-materialization layer.

Beyond correctness (covered elsewhere), the queries must exhibit the
economics the paper's Sec 5 sketch promises: build cost resembles a
WiscSort RUN phase, query cost scales with the *result*, not the
relation, and joins move only matching values.
"""

from __future__ import annotations

import pytest

from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.query.sorted_index import SortedIndex
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


@pytest.fixture
def big_index(pmem):
    fmt = RecordFormat()
    machine = Machine(profile=pmem)
    relation = generate_dataset(machine, "rel", 50_000, fmt, seed=31)
    index = SortedIndex(machine, relation, fmt).build()
    return machine, index, fmt


class TestBuildEconomics:
    def test_build_resembles_run_phase(self, big_index, pmem):
        machine, index, fmt = big_index
        # Build = strided key gather + sort + IndexMap write; a full
        # WiscSort additionally gathers and rewrites every value, so the
        # index build must be several times cheaper.
        machine2 = Machine(profile=pmem)
        relation2 = generate_dataset(machine2, "rel", 50_000, fmt, seed=31)
        full = WiscSort(fmt).run(machine2, relation2, validate=False)
        assert index.build_time < full.total_time / 2

    def test_build_write_traffic_is_indexmap_only(self, big_index):
        machine, index, fmt = big_index
        written = machine.stats.tags["INDEX build write"].user_bytes
        assert written == pytest.approx(50_000 * fmt.index_entry_size)


class TestQueryEconomics:
    def test_query_cost_tracks_result_size(self, big_index):
        _, index, _ = big_index
        q1 = index.top_k(100)
        q2 = index.top_k(10_000)
        assert q2.bytes_gathered == 100 * q1.bytes_gathered
        assert q2.elapsed > 10 * q1.elapsed

    def test_range_scan_gathers_only_range(self, big_index):
        machine, index, fmt = big_index
        before = machine.stats.tags.get("QUERY range")
        assert before is None
        keys = index.imap.keys
        low = bytes(keys[1_000])
        high = bytes(keys[2_000])
        result = index.range_scan(low, high)
        gathered = machine.stats.tags["QUERY range"].user_bytes
        assert gathered == result.bytes_gathered
        assert result.records.shape[0] == pytest.approx(1_001, abs=5)

    def test_queries_do_not_write_to_the_device(self, big_index):
        machine, index, _ = big_index
        written_before = machine.stats.bytes_written_internal
        index.top_k(1_000)
        index.range_scan(b"\x00" * 10, b"\x7f" + b"\xff" * 9)
        assert machine.stats.bytes_written_internal == written_before
