"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.device.host import HostModel
from repro.device.profiles import (
    bard_device_profile,
    bd_device_profile,
    brd_device_profile,
    dram_profile,
    pmem_profile,
)
from repro.machine import Machine
from repro.records.format import RecordFormat

# Profiles are shared across the whole test session so the calibration
# cache (keyed by object identity) is hit instead of re-probed.
_PMEM = pmem_profile()
_DRAM = dram_profile()
_BD = bd_device_profile()
_BRD = brd_device_profile()
_BARD = bard_device_profile()


@pytest.fixture(scope="session")
def pmem():
    return _PMEM


@pytest.fixture(scope="session")
def dram():
    return _DRAM


@pytest.fixture(scope="session")
def emulated_profiles():
    return {"bd": _BD, "brd": _BRD, "bard": _BARD}


@pytest.fixture
def machine(pmem):
    return Machine(profile=pmem)


@pytest.fixture
def host():
    return HostModel()


@pytest.fixture
def fmt():
    return RecordFormat()
