"""Scalar/vector kernel equivalence: fingerprints must be bit-identical.

The vectorized fluid kernel (and the batched merge-frontier index) are
pure performance work: with ``REPRO_SIM_VECTOR=0`` and ``=1`` every
simulated result -- output bytes, simulated times, per-tag device
accounting, tracer op records and counter tracks, sanitizer charge
audits -- must match bit for bit, float for float.  These tests run the
paper workload shapes under both paths and compare exactly (``==`` on
floats, never ``approx``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ShardedWiscSort, generate_cluster_dataset
from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.faults import parse_fault_spec, run_with_faults
from repro.machine import Machine
from repro.perf import collect_counters
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import KiB
from repro.workloads.background import BackgroundClients

FMT = RecordFormat()

#: Counters that must agree between kernel paths.  Path-reporting
#: counters (vector_solves, scalar_fallbacks, batch sizes) and the
#: BRAID LRU hit rate differ between paths *by design* -- the vector
#: path memoizes per group instead of hitting the model's LRU -- and
#: are excluded.
INVARIANT_COUNTERS = (
    "sim_seconds",
    "engine_steps",
    "clock_advances",
    "timer_events",
    "ops_added",
    "ops_completed",
    "rerate_calls",
    "ops_rerated",
    "rate_changes",
    "intervals_observed",
)


def set_path(monkeypatch, vector: bool) -> None:
    monkeypatch.setenv("REPRO_SIM_VECTOR", "1" if vector else "0")


def machine_fingerprint(machine, result) -> dict:
    stats = machine.stats
    counters = collect_counters(machine)
    return {
        "total_time": result.total_time,
        "phases": tuple(sorted(result.phases.items())),
        "read_internal": stats.bytes_read_internal,
        "written_internal": stats.bytes_written_internal,
        "tags": {
            tag: (t.busy_time, t.internal_bytes, t.user_bytes, t.op_count)
            for tag, t in stats.tags.items()
        },
        "counters": {k: counters[k] for k in INVARIANT_COUNTERS},
    }


def tracer_fingerprint(tracer) -> dict:
    return {
        "ops": tracer.ops,
        "spans": [(s.name, s.cat, s.t0, s.t1) for s in tracer.spans],
        "counters": tracer.counters,
    }


class TestOnepassEquivalence:
    def run_path(self, monkeypatch, vector):
        set_path(monkeypatch, vector)
        machine = Machine()
        sanitizer = machine.install_sanitizer()
        tracer = machine.install_tracer()
        data = generate_dataset(machine, "input", 8_000, FMT, seed=21)
        result = WiscSort(FMT).run(machine, data, validate=False)
        sanitizer.check()
        out = machine.fs.open(result.output_name).peek().tobytes()
        return machine_fingerprint(machine, result), tracer_fingerprint(tracer), out

    def test_paths_bit_identical(self, monkeypatch):
        fp_s, tr_s, out_s = self.run_path(monkeypatch, vector=False)
        fp_v, tr_v, out_v = self.run_path(monkeypatch, vector=True)
        assert fp_s == fp_v
        assert tr_s == tr_v
        assert out_s == out_v


class TestMergePassEquivalence:
    def run_path(self, monkeypatch, vector):
        set_path(monkeypatch, vector)
        machine = Machine()
        sanitizer = machine.install_sanitizer()
        tracer = machine.install_tracer()
        data = generate_dataset(machine, "input", 15_000, FMT, seed=33)
        BackgroundClients(machine, 2, "write").start()
        system = WiscSort(
            FMT,
            config=SortConfig(read_buffer=16 * KiB, write_buffer=8 * KiB),
            force_merge_pass=True,
            merge_chunk_entries=1_000,
        )
        result = system.run(machine, data, validate=False)
        sanitizer.check()
        counters = collect_counters(machine)
        out = machine.fs.open(result.output_name).peek().tobytes()
        return (
            machine_fingerprint(machine, result),
            tracer_fingerprint(tracer),
            out,
            counters,
        )

    def test_paths_bit_identical(self, monkeypatch):
        fp_s, tr_s, out_s, c_s = self.run_path(monkeypatch, vector=False)
        fp_v, tr_v, out_v, c_v = self.run_path(monkeypatch, vector=True)
        assert fp_s == fp_v
        assert tr_s == tr_v
        assert out_s == out_v
        # Sanity: the switch actually selected different kernels.
        assert c_s["vector_solves"] == 0
        assert c_v["vector_solves"] > 0


class TestFaultRunEquivalence:
    """A seeded crash-and-recover run must replay identically."""

    def run_path(self, monkeypatch, vector, at_op):
        set_path(monkeypatch, vector)
        machine = Machine()
        data = generate_dataset(machine, "input", 12_000, FMT, seed=11)
        system = WiscSort(
            FMT,
            SortConfig(read_buffer=16 * KiB, write_buffer=8 * KiB),
            output_name="out",
            checkpoint=True,
            force_merge_pass=True,
            merge_chunk_entries=1_000,
        )
        plan = parse_fault_spec(f"crash@op:{at_op}", seed=101)
        result, report = run_with_faults(system, machine, data, plan=plan)
        out = bytes(bytearray(machine.fs.open("out").peek()))
        fault_counters = {
            k: v
            for k, v in collect_counters(machine).items()
            if k.startswith("fault_")
        }
        return (
            machine_fingerprint(machine, result),
            out,
            report.crashes,
            report.recoveries,
            fault_counters,
        )

    def test_crash_recovery_bit_identical(self, monkeypatch):
        # The workload issues ~617 machine ops; op 300 lands mid-merge.
        res_s = self.run_path(monkeypatch, vector=False, at_op=300)
        res_v = self.run_path(monkeypatch, vector=True, at_op=300)
        assert res_s[2] == res_v[2] == 1  # the crash fired on both paths
        assert res_s == res_v


class TestClusterEquivalence:
    """4-shard sorted cluster: one engine, four promoted domains."""

    def run_path(self, monkeypatch, vector):
        set_path(monkeypatch, vector)
        cluster = Cluster(shards=4)
        sharded = generate_cluster_dataset(cluster, "input", 6_000, FMT, seed=9)
        system = ShardedWiscSort(FMT)
        result = system.run(cluster, sharded)
        parts = [
            cluster.shards[d].fs.open(f"{system.output_name}.shard{d}").peek()
            for d in range(4)
        ]
        merged = np.concatenate([p for p in parts if p.size])
        return result.total_time, tuple(sorted(result.phases.items())), merged

    def test_paths_bit_identical(self, monkeypatch):
        t_s, ph_s, out_s = self.run_path(monkeypatch, vector=False)
        t_v, ph_v, out_v = self.run_path(monkeypatch, vector=True)
        assert t_s == t_v
        assert ph_s == ph_v
        assert np.array_equal(out_s, out_v)
